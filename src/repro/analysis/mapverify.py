"""Static mapping verifier (pass 1 of ``repro-facil analyze``).

Every FACIL mapping claims to be a bit *permutation* with PIM placement
invariants (paper §IV-B).  This pass proves those claims without running
a single simulated access:

* the mapping is lifted into a GF(2) bit matrix (output DA bit x input PA
  bit) and bijectivity is established by rank over GF(2) — a dropped or
  duplicated bit is a rank deficiency, exactly how silent locality-loss
  bugs in address mappings manifest;
* field widths are checked against the :class:`DramOrganization`;
* PIM placements are checked structurally: one chunk row must be
  contiguous inside one bank, a multi-row chunk must keep its rows in one
  DRAM row, and the PU-changing bits must sit above the whole chunk;
* every selector-reachable MapID must fit the spare PTE bits
  :mod:`repro.os.page_table` encodes it in.

Rule IDs are ``MV001``-``MV009``; see ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.findings import (
    LEVEL_ERROR,
    Finding,
    register_rules,
)
from repro.core.bitfield import ilog2
from repro.core.mapping import AddressMapping, max_map_id
from repro.core.selector import MatrixConfig, pu_order_for, select_mapping
from repro.core.mapping import pim_optimized_mapping
from repro.dram.address import FIELDS, Field
from repro.dram.config import DramOrganization
from repro.os.page_table import MAP_ID_BITS
from repro.pim.config import PimConfig

__all__ = [
    "MAPVERIFY_RULES",
    "mapping_matrix",
    "gf2_rank",
    "unsafe_mapping",
    "chunk_max_map_id",
    "verify_mapping",
    "verify_pim_mapping",
    "verify_selection",
    "verify_kv_blocks",
    "verify_platform",
    "DEFAULT_MATRIX_BATTERY",
    "KV_BLOCK_BATTERY",
]

MAPVERIFY_RULES: Dict[str, str] = {
    "MV001": "mapping is not bijective over GF(2): a PA bit is dropped or "
             "duplicated",
    "MV002": "mapping is not a pure bit permutation: an output bit mixes "
             "several PA bits (not realizable as a mux array)",
    "MV003": "mapping field widths disagree with the DRAM organization",
    "MV004": "a PIM chunk row straddles processing units: a PU-changing "
             "bit lies inside the chunk span",
    "MV005": "a PIM chunk row is not contiguous inside its bank",
    "MV006": "a multi-row chunk crosses DRAM rows: its row-select bits "
             "are not column bits directly below the PU bits",
    "MV007": "selected MapID does not fit the spare PTE bits",
    "MV008": "selector chose a mapping the builder rejects (selector/"
             "builder inconsistency)",
    "MV009": "selected MapID exceeds the theoretical maximum for the "
             "organization",
    "MV010": "a KV-cache block is not aligned to the PIM chunk row: its "
             "base or size is not a whole number of chunk rows",
    "MV011": "a chunk-row window of a KV-cache block straddles a DRAM "
             "row or processing unit (decoded placement is not one "
             "contiguous run in one bank row)",
}
register_rules(MAPVERIFY_RULES)

#: KV block shapes (block_tokens, kv_dim) the platform sweep exercises —
#: a small chat-model slab and a large one (see repro.kvcache.KvSpec).
KV_BLOCK_BATTERY: Tuple[Tuple[int, int], ...] = (
    (16, 1024),
    (32, 4096),
)

#: Matrix shapes the selector is exercised with per platform: the padded
#: column counts cover sub-chunk rows, one-chunk rows, typical LLM layer
#: widths, and rows so large they must be partitioned (Fig. 10).
DEFAULT_MATRIX_BATTERY: Tuple[Tuple[int, int], ...] = (
    (1, 64),
    (64, 512),
    (256, 1024),
    (4096, 4096),
    (4096, 11008),
    (1024, 16384),
    (8, 65536),
    (4, 262144),
)


def unsafe_mapping(
    name: str, n_bits: int, fields: Dict[str, Tuple[int, ...]]
) -> AddressMapping:
    """Construct an :class:`AddressMapping` bypassing its permutation
    validation — for seeded-bug fixtures only.  The verifier must catch
    what the constructor would have rejected."""
    mapping = AddressMapping.__new__(AddressMapping)
    object.__setattr__(mapping, "name", name)
    object.__setattr__(mapping, "n_bits", n_bits)
    object.__setattr__(mapping, "fields", dict(fields))
    return mapping


# ---------------------------------------------------------------------------
# GF(2) machinery
# ---------------------------------------------------------------------------


def mapping_matrix(mapping: AddressMapping) -> np.ndarray:
    """Lift *mapping* into its GF(2) bit matrix.

    Row *i* is output (DA) bit *i* — fields concatenated in
    :data:`FIELDS` order, LSB first within each field — and column *j* is
    PA bit *j*.  A well-formed mapping yields a permutation matrix; this
    builder faithfully transcribes whatever the mapping declares, so
    malformed mappings yield rank-deficient or multi-entry rows.
    """
    rows: List[np.ndarray] = []
    for fname in FIELDS:
        for pa_pos in mapping.fields.get(fname, ()):
            row = np.zeros(mapping.n_bits, dtype=np.uint8)
            if 0 <= pa_pos < mapping.n_bits:
                row[pa_pos] = 1
            rows.append(row)
    if not rows:
        return np.zeros((0, mapping.n_bits), dtype=np.uint8)
    return np.vstack(rows)


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a 0/1 matrix over GF(2) (Gaussian elimination with XOR)."""
    m = (np.array(matrix, dtype=np.uint8) & 1).copy()
    n_rows, n_cols = m.shape
    rank = 0
    for col in range(n_cols):
        pivot = None
        for r in range(rank, n_rows):
            if m[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        eliminate = m[:, col].astype(bool)
        eliminate[rank] = False
        m[eliminate] ^= m[rank]
        rank += 1
        if rank == n_rows:
            break
    return rank


# ---------------------------------------------------------------------------
# Verification passes
# ---------------------------------------------------------------------------


def _linear_findings(mapping: AddressMapping) -> List[Finding]:
    findings: List[Finding] = []
    matrix = mapping_matrix(mapping)
    n = mapping.n_bits
    if matrix.shape[0] != n:
        findings.append(
            Finding(
                "MV001",
                LEVEL_ERROR,
                f"mapping declares {matrix.shape[0]} output bits for "
                f"{n} PA bits",
                location=mapping.name,
            )
        )
    rank = gf2_rank(matrix)
    if rank != n:
        missing = [j for j in range(n) if not matrix[:, j].any()]
        findings.append(
            Finding(
                "MV001",
                LEVEL_ERROR,
                f"GF(2) rank {rank} != {n}: the map is not bijective",
                location=mapping.name,
                detail=f"PA bits never read: {missing}" if missing else
                       "some PA bit feeds two output bits",
            )
        )
    bad_rows = [int(i) for i in range(matrix.shape[0]) if matrix[i].sum() != 1]
    if bad_rows:
        findings.append(
            Finding(
                "MV002",
                LEVEL_ERROR,
                f"{len(bad_rows)} output bit(s) are not driven by exactly "
                "one PA bit",
                location=mapping.name,
                detail=f"output rows {bad_rows[:8]}",
            )
        )
    return findings


def _org_findings(mapping: AddressMapping, org: DramOrganization) -> List[Finding]:
    findings: List[Finding] = []
    expected = {
        Field.CHANNEL: org.channel_bits,
        Field.RANK: org.rank_bits,
        Field.BANK: org.bank_bits,
        Field.COL: org.col_bits,
        Field.OFFSET: org.offset_bits,
    }
    mismatches = {
        fname: (mapping.field_width(fname), width)
        for fname, width in expected.items()
        if mapping.field_width(fname) != width
    }
    fixed = sum(expected.values())
    row_width = mapping.n_bits - fixed
    if mapping.field_width(Field.ROW) != row_width and not mismatches:
        mismatches[Field.ROW] = (mapping.field_width(Field.ROW), row_width)
    if mismatches:
        detail = ", ".join(
            f"{fname}: got {got}, want {want}"
            for fname, (got, want) in sorted(mismatches.items())
        )
        findings.append(
            Finding(
                "MV003",
                LEVEL_ERROR,
                "field widths disagree with the organization",
                location=mapping.name,
                detail=detail,
            )
        )
    return findings


def _pim_placement_findings(
    mapping: AddressMapping, org: DramOrganization, pim: PimConfig
) -> List[Finding]:
    findings: List[Finding] = []
    chunk_span_bits = org.offset_bits + ilog2(
        max(pim.chunk_row_bytes // org.transfer_bytes, 1)
    )
    pu_positions = (
        mapping.positions(Field.CHANNEL)
        + mapping.positions(Field.RANK)
        + mapping.positions(Field.BANK)
    )
    inside = sorted(p for p in pu_positions if p < chunk_span_bits)
    if inside:
        findings.append(
            Finding(
                "MV004",
                LEVEL_ERROR,
                "PU-changing bits inside the chunk span: one chunk row "
                "would straddle processing units",
                location=mapping.name,
                detail=f"PU bits at PA positions {inside} < chunk span "
                       f"{chunk_span_bits}",
            )
        )
        return findings  # contiguity below is meaningless past this point

    # Contiguity: walking one chunk row in PA order must walk consecutive
    # transfer slots of one bank.
    step = org.transfer_bytes
    span = min(pim.chunk_row_bytes, 1 << mapping.n_bits)
    byte_indices: List[int] = []
    for pa in range(0, span, step):
        coord = mapping.decode(pa)
        byte_indices.append(
            coord.row * org.row_bytes + coord.col * org.transfer_bytes
        )
    expected_indices = list(range(0, span, step))
    if byte_indices != expected_indices:
        first_bad = next(
            i for i, (a, b) in enumerate(zip(byte_indices, expected_indices))
            if a != b
        )
        findings.append(
            Finding(
                "MV005",
                LEVEL_ERROR,
                "chunk row is not contiguous inside its bank",
                location=mapping.name,
                detail=f"transfer {first_bad}: bank byte index "
                       f"{byte_indices[first_bad]}, expected "
                       f"{expected_indices[first_bad]}",
            )
        )

    if pim.chunk_rows > 1:
        # The chunk's row-select bits sit directly below the lowest
        # PU-changing bit and must be column bits (all chunk rows in one
        # DRAM row of one bank).
        lowest_pu = min(pu_positions) if pu_positions else mapping.n_bits
        select_bits = range(lowest_pu - ilog2(pim.chunk_rows), lowest_pu)
        col_positions = set(mapping.positions(Field.COL))
        outside = [p for p in select_bits if p not in col_positions]
        if outside:
            findings.append(
                Finding(
                    "MV006",
                    LEVEL_ERROR,
                    "multi-row chunk crosses DRAM rows",
                    location=mapping.name,
                    detail=f"PA bits {outside} below the PU bits select "
                           "the chunk's rows but are not column bits",
                )
            )
    return findings


def verify_mapping(
    mapping: AddressMapping,
    org: Optional[DramOrganization] = None,
) -> List[Finding]:
    """Linear (bijectivity/permutation) and organization checks."""
    findings = _linear_findings(mapping)
    if org is not None:
        findings.extend(_org_findings(mapping, org))
    return findings


def verify_pim_mapping(
    mapping: AddressMapping,
    org: DramOrganization,
    pim: PimConfig,
) -> List[Finding]:
    """Full verification of a PIM-optimized mapping: linearity, widths,
    and the placement invariants."""
    findings = verify_mapping(mapping, org)
    if not findings:
        # Placement decoding assumes a well-formed permutation.
        findings.extend(_pim_placement_findings(mapping, org, pim))
    return findings


# ---------------------------------------------------------------------------
# Selector-reachable sweep
# ---------------------------------------------------------------------------


def chunk_max_map_id(
    org: DramOrganization, pim: PimConfig, n_bits: int
) -> int:
    """Largest MapID the chunk-constrained layout admits for this
    organization — the builder's bound, always <= :func:`max_map_id`."""
    chunk_bits = ilog2(max(pim.chunk_bytes // org.transfer_bytes, 1))
    return n_bits - org.offset_bits - org.interleave_bits() - chunk_bits


def verify_selection(
    matrix: MatrixConfig,
    org: DramOrganization,
    pim: PimConfig,
    huge_page_bytes: int = 2 << 20,
    pte_map_id_bits: int = MAP_ID_BITS,
) -> List[Finding]:
    """Run the selector for *matrix* and verify everything it implies:
    PTE encodability, theoretical bounds, and the built mapping."""
    findings: List[Finding] = []
    location = f"{matrix.rows}x{matrix.cols}@{org.total_banks}banks"
    try:
        selection = select_mapping(matrix, org, pim, huge_page_bytes)
    except ValueError:
        return findings  # incompatible config rejected up front: not a bug
    if selection.map_id >= (1 << pte_map_id_bits):
        findings.append(
            Finding(
                "MV007",
                LEVEL_ERROR,
                f"MapID {selection.map_id} needs more than "
                f"{pte_map_id_bits} PTE spare bits",
                location=location,
            )
        )
    theoretical = max_map_id(org, huge_page_bytes)
    if selection.map_id > theoretical:
        findings.append(
            Finding(
                "MV009",
                LEVEL_ERROR,
                f"MapID {selection.map_id} exceeds the theoretical "
                f"maximum {theoretical}",
                location=location,
            )
        )
    try:
        mapping = pim_optimized_mapping(
            org=org,
            chunk_rows=pim.chunk_rows,
            chunk_cols=pim.chunk_cols,
            dtype_bytes=pim.dtype_bytes,
            map_id=selection.map_id,
            n_bits=ilog2(huge_page_bytes),
            pu_order=pu_order_for(selection),
        )
    except ValueError as exc:
        findings.append(
            Finding(
                "MV008",
                LEVEL_ERROR,
                f"builder rejects the selector's MapID "
                f"{selection.map_id}: {exc}",
                location=location,
            )
        )
        return findings
    findings.extend(verify_pim_mapping(mapping, org, pim))
    return findings


def verify_kv_blocks(
    mapping: AddressMapping,
    org: DramOrganization,
    pim: PimConfig,
    block_bytes: int,
    n_blocks: int = 2,
    base_offset: int = 0,
    location: str = "",
) -> List[Finding]:
    """KV placement rules MV010/MV011 for a block pool arena.

    A KV block is read by the PIM attention sweep one chunk row at a
    time, so every block must start on a chunk-row boundary and be a
    whole number of chunk rows (MV010), and each chunk-row-sized window
    inside each block must decode — through the *actual* mapping — to a
    single contiguous run of transfers inside one bank row (MV011).
    Huge pages of one arena share a MapID, so placement is periodic in
    the page and checking the first *n_blocks* blocks covers the pool.
    """
    findings: List[Finding] = []
    loc = location or f"kv-blocks@{mapping.name}"
    crb = pim.chunk_row_bytes
    if block_bytes <= 0:
        raise ValueError("block_bytes must be positive")
    if block_bytes % crb != 0 or base_offset % crb != 0:
        findings.append(
            Finding(
                "MV010",
                LEVEL_ERROR,
                f"KV block geometry is not chunk-row aligned: base offset "
                f"{base_offset}, block {block_bytes} B, chunk row {crb} B",
                location=loc,
            )
        )
        return findings  # window walks below assume alignment
    pa_mask = (1 << mapping.n_bits) - 1
    step = org.transfer_bytes
    for block in range(n_blocks):
        base = base_offset + block * block_bytes
        for window in range(base, base + block_bytes, crb):
            coords = [
                mapping.decode((window + off) & pa_mask)
                for off in range(0, crb, step)
            ]
            units = {(c.channel, c.rank, c.bank, c.row) for c in coords}
            cols = [c.col for c in coords]
            contiguous = cols == list(range(cols[0], cols[0] + len(cols)))
            if len(units) != 1 or not contiguous:
                reason = (
                    f"window at +{window - base} of block {block} touches "
                    f"{len(units)} (ch,rank,bank,row) unit(s)"
                    if len(units) != 1
                    else f"window at +{window - base} of block {block} has "
                    f"non-contiguous columns {cols[:4]}..."
                )
                findings.append(
                    Finding(
                        "MV011",
                        LEVEL_ERROR,
                        "KV chunk-row window is not one contiguous run in "
                        "one bank row",
                        location=loc,
                        detail=reason,
                    )
                )
                break  # one finding per block is enough signal
    return findings


def verify_platform(
    name: str,
    org: DramOrganization,
    pim: PimConfig,
    conventional: AddressMapping,
    huge_page_bytes: int = 2 << 20,
    matrices: Optional[Sequence[Tuple[int, int]]] = None,
    pte_map_id_bits: int = MAP_ID_BITS,
) -> Tuple[List[Finding], int]:
    """Verify everything reachable on one platform.

    Checks the conventional mapping, every chunk-admissible MapID under
    both PU-bit orders, and the selector across a matrix battery.
    Returns ``(findings, mappings_checked)``.
    """
    findings: List[Finding] = []
    checked = 0
    n_bits = ilog2(huge_page_bytes)

    findings.extend(
        _tagged(verify_mapping(conventional, org), name)
    )
    checked += 1

    ceiling = chunk_max_map_id(org, pim, n_bits)
    budget_ceiling = max_map_id(org, huge_page_bytes)
    if budget_ceiling >= (1 << pte_map_id_bits):
        findings.append(
            Finding(
                "MV007",
                LEVEL_ERROR,
                f"theoretical MapID maximum {budget_ceiling} does not fit "
                f"the {pte_map_id_bits} spare PTE bits",
                location=name,
            )
        )
    pu_orders: Tuple[Tuple[str, str, str], ...] = (
        (Field.BANK, Field.RANK, Field.CHANNEL),
        (Field.CHANNEL, Field.RANK, Field.BANK),
    )
    for map_id in range(max(ceiling, -1) + 1):
        for pu_order in pu_orders:
            try:
                mapping = pim_optimized_mapping(
                    org=org,
                    chunk_rows=pim.chunk_rows,
                    chunk_cols=pim.chunk_cols,
                    dtype_bytes=pim.dtype_bytes,
                    map_id=map_id,
                    n_bits=n_bits,
                    pu_order=pu_order,
                )
            except ValueError as exc:
                findings.append(
                    Finding(
                        "MV008",
                        LEVEL_ERROR,
                        f"builder rejects chunk-admissible MapID "
                        f"{map_id} ({'/'.join(pu_order)}): {exc}",
                        location=name,
                    )
                )
                continue
            findings.extend(
                _tagged(verify_pim_mapping(mapping, org, pim), name)
            )
            checked += 1

    for rows, cols in matrices if matrices is not None else DEFAULT_MATRIX_BATTERY:
        findings.extend(
            _tagged(
                verify_selection(
                    MatrixConfig(rows=rows, cols=cols),
                    org,
                    pim,
                    huge_page_bytes,
                    pte_map_id_bits,
                ),
                name,
            )
        )
        checked += 1

    # KV block pool arenas: the exact shapes repro.kvcache.KvSpec builds
    for block_tokens, kv_dim in KV_BLOCK_BATTERY:
        kv_matrix = MatrixConfig(rows=64 * block_tokens, cols=kv_dim)
        try:
            selection = select_mapping(kv_matrix, org, pim, huge_page_bytes)
        except ValueError:
            continue  # incompatible config rejected up front: not a bug
        kv_location = f"kv{block_tokens}x{kv_dim}"
        try:
            mapping = pim_optimized_mapping(
                org=org,
                chunk_rows=pim.chunk_rows,
                chunk_cols=pim.chunk_cols,
                dtype_bytes=pim.dtype_bytes,
                map_id=selection.map_id,
                n_bits=n_bits,
                pu_order=pu_order_for(selection),
            )
        except ValueError as exc:
            findings.append(
                Finding(
                    "MV008",
                    LEVEL_ERROR,
                    f"builder rejects the KV arena's MapID "
                    f"{selection.map_id}: {exc}",
                    location=f"{name}:{kv_location}",
                )
            )
            continue
        block_bytes = block_tokens * selection.padded_row_bytes
        findings.extend(
            _tagged(
                verify_kv_blocks(
                    mapping, org, pim, block_bytes, location=kv_location
                ),
                name,
            )
        )
        checked += 1
    return findings, checked


def _tagged(findings: Iterable[Finding], platform: str) -> List[Finding]:
    """Prefix finding locations with the platform name."""
    out: List[Finding] = []
    for f in findings:
        location = f"{platform}:{f.location}" if f.location else platform
        out.append(
            Finding(f.rule_id, f.level, f.message, location, f.detail)
        )
    return out
