"""Journal-discipline sanitizer: the JD dataflow rules + determinism lint.

The crash campaigns (PRs 3/4/6) prove *dynamically* that every declared
crash site recovers cleanly — but nothing stops a new mutation of
journaled state from landing outside a transaction, or a declared site
string from drifting away from the code that checkpoints it.  This pass
closes that hole statically: it walks the ASTs of the journaled modules
(:data:`JOURNAL_MODULES`) and checks the write-ahead discipline the
journal's recovery replay depends on.

**What counts as journaled state.**  The mutations recovery must be able
to undo or redo: address-space calls (``.space.mmap`` / ``.munmap`` /
``.set_area_map_id``), mapping-table references (``.table.register`` /
``.release``), the KV free list (``._free.popleft`` / ``.append`` /
``.appendleft`` / ``.remove``), block reclamation (``._reclaim()``), and
attribute writes to ``ref_count`` / ``state`` / ``generation``.

**The rules** (waivable in place with ``# lint: waive[JDxxx]``):

* ``JD001`` — a journaled-state mutation outside any journal
  transaction: recovery cannot see it, so a crash next to it is
  unrecoverable by construction.
* ``JD002`` — a mutation inside a transaction with no journal record
  (``begin`` / ``step`` / ``checkpoint``) since the previous mutation:
  two unrecorded mutations in a row mean recovery cannot tell how far
  the operation got.  A run of consecutive attribute-state writes
  counts as one step (they model one logical activation), and
  ``except``-handler bodies are exempt (synchronous unwind paths).
* ``JD003`` — a checkpoint whose site literal is not declared in any
  ``*_CRASH_SITES`` registry (or a non-literal site outside the
  checkpoint forwarders): the chaos campaign would never schedule a
  crash there.
* ``JD004`` — a declared crash site no scanned module ever checkpoints:
  a dead site string silently shrinks campaign coverage.
* ``JD005`` — a transaction begun but never committed on any path.

Declared sites are parsed from the scanned sources themselves (the
module-level ``*_CRASH_SITES`` tuple assignments), so the pass runs
unchanged on scratch copies — the seeded mutation tests rely on that.

Recovery replay functions mutate state *by design* (they are the redo
log) and are exempt by name per module (:data:`EXEMPT_FUNCTIONS`).

The determinism rules RL007-RL010 (registered by
:mod:`repro.analysis.repolint`) also run under this pass, over the whole
source tree; :func:`run_sanitize` combines both.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import LEVEL_ERROR, Finding, register_rules
from repro.analysis.repolint import (
    _waivers,
    default_source_root,
    lint_determinism_tree,
)

__all__ = [
    "SANITIZE_RULES",
    "JOURNAL_MODULES",
    "EXEMPT_FUNCTIONS",
    "sanitize_sources",
    "sanitize_tree",
    "run_sanitize",
]

SANITIZE_RULES: Dict[str, str] = {
    "JD001": "journaled-state mutation outside any journal transaction",
    "JD002": "mutation inside a transaction with no journal record since "
             "the previous mutation",
    "JD003": "checkpoint site not declared in any *_CRASH_SITES registry "
             "(or non-literal site outside a checkpoint forwarder)",
    "JD004": "declared crash site never checkpointed by any scanned module",
    "JD005": "journal transaction begun but never committed",
}
register_rules(SANITIZE_RULES)

#: The modules whose state the journals govern, relative to ``src/``.
JOURNAL_MODULES: Tuple[str, ...] = (
    "repro/core/journal.py",
    "repro/core/pimalloc.py",
    "repro/adaptive/arena.py",
    "repro/kvcache/block.py",
    "repro/kvcache/manager.py",
    "repro/kvcache/pool.py",
    "repro/kvcache/prefix.py",
    "repro/kvcache/scheduler.py",
)

#: Recovery replay / txn-inlined helpers: they mutate journaled state by
#: design (they *are* the redo log), so JD001/JD002/JD005 skip them.
EXEMPT_FUNCTIONS: Dict[str, Tuple[str, ...]] = {
    "repro/core/journal.py": (
        "_undo_alloc", "_redo_free", "_redo_switch", "_resolve_migrate",
        "recover",
    ),
    "repro/kvcache/pool.py": ("recover_pool", "_reclaim"),
}

#: Functions that forward a *parameter* to ``journal.checkpoint`` — the
#: one place a non-literal site argument is legitimate (JD003).
_CHECKPOINT_FORWARDERS = frozenset({"checkpoint", "_jcheckpoint", "_checkpoint"})

#: ``(receiver-attr, method)`` tails whose calls mutate journaled state.
_MUTATOR_TAILS = frozenset({
    ("space", "mmap"),
    ("space", "munmap"),
    ("space", "set_area_map_id"),
    ("table", "register"),
    ("table", "release"),
    ("_free", "popleft"),
    ("_free", "append"),
    ("_free", "appendleft"),
    ("_free", "remove"),
})

#: Attribute writes that mutate journaled block state.
_MUTATOR_ATTRS = frozenset({"ref_count", "state", "generation"})


def _attr_tail(node: ast.expr) -> Tuple[str, ...]:
    """Dotted names of an attribute chain (``self.space.mmap`` ->
    ``('self', 'space', 'mmap')``); empty when not a plain chain base."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


@dataclass
class _StmtEvents:
    """Journal-relevant events inside one simple statement."""

    begins: int = 0
    commits: int = 0
    records: int = 0
    #: ``(line, site-literal-or-None)`` per checkpoint call
    checkpoints: List[Tuple[int, Optional[str]]] = field(default_factory=list)
    #: ``(line, description, is-attr-write)`` per mutation
    mutations: List[Tuple[int, str, bool]] = field(default_factory=list)


def _classify(stmt: ast.stmt) -> _StmtEvents:
    events = _StmtEvents()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            tail = _attr_tail(func)
            if not tail:
                continue
            last = tail[-1]
            if last == "_reclaim":
                events.mutations.append((node.lineno, "._reclaim()", False))
            elif len(tail) >= 2 and (tail[-2], last) in _MUTATOR_TAILS:
                events.mutations.append(
                    (node.lineno, f".{tail[-2]}.{last}()", False)
                )
            elif last in _CHECKPOINT_FORWARDERS:
                site: Optional[str] = None
                if node.args and isinstance(node.args[0], ast.Constant) and \
                        isinstance(node.args[0].value, str):
                    site = node.args[0].value
                events.checkpoints.append((node.lineno, site))
                events.records += 1
            elif last == "_jstep":
                events.records += 1
            elif len(tail) >= 2 and tail[-2] == "journal":
                if last == "begin":
                    events.begins += 1
                elif last == "commit":
                    events.commits += 1
                elif last == "step":
                    events.records += 1
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets: Sequence[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            else:
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and \
                        target.attr in _MUTATOR_ATTRS:
                    events.mutations.append(
                        (node.lineno, f".{target.attr} write", True)
                    )
    return events


def _linearize(
    body: Sequence[ast.stmt],
    in_handler: bool,
    out: List[Tuple[ast.stmt, bool]],
) -> None:
    """Flatten a function body into ``(simple statement, in-handler)``
    pairs in source order.  Compound statements contribute their nested
    bodies (a branch is analyzed as if taken); ``except`` handlers are
    marked; nested function/class definitions are analyzed separately."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(stmt, ast.Try):
            _linearize(stmt.body, in_handler, out)
            for handler in stmt.handlers:
                _linearize(handler.body, True, out)
            _linearize(stmt.orelse, in_handler, out)
            _linearize(stmt.finalbody, in_handler, out)
        elif isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor)):
            _linearize(stmt.body, in_handler, out)
            _linearize(stmt.orelse, in_handler, out)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            _linearize(stmt.body, in_handler, out)
        else:
            out.append((stmt, in_handler))


def _declared_sites(tree: ast.Module) -> List[Tuple[str, int, str]]:
    """``(site, line, registry-name)`` for every string in a module-level
    ``*_CRASH_SITES`` tuple assignment."""
    out: List[Tuple[str, int, str]] = []
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name)
                and (target.id == "CRASH_SITES"
                     or target.id.endswith("_CRASH_SITES"))):
            continue
        if isinstance(stmt.value, ast.Tuple):
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    out.append((elt.value, elt.lineno, target.id))
    return out


def sanitize_sources(sources: Dict[str, str]) -> List[Finding]:
    """Run JD001-JD005 over *sources* (``relative path -> text``).

    Pass the full journaled-module set together: site declarations and
    the checkpoints that discharge them live in different files
    (``CRASH_SITES`` in journal.py, its checkpoints in pimalloc.py), so
    JD004 only means something over the whole set.
    """
    findings: List[Finding] = []
    declared: Dict[str, Tuple[str, int, str]] = {}
    checkpointed: Dict[str, str] = {}
    parsed: List[Tuple[str, ast.Module, Dict[int, Tuple[str, ...]]]] = []

    for rel in sorted(sources):
        source = sources[rel]
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            findings.append(Finding(
                "JD001", LEVEL_ERROR,
                f"file does not parse: {exc.msg}",
                location=f"{rel}:{exc.lineno or 0}",
            ))
            continue
        parsed.append((rel, tree, _waivers(source.splitlines())))
        for site, line, registry in _declared_sites(tree):
            declared.setdefault(site, (rel, line, registry))

    for rel, tree, waivers in parsed:
        exempt = set(EXEMPT_FUNCTIONS.get(rel, ()))

        def emit(rule_id: str, message: str, line: int,
                 detail: str = "") -> None:
            if rule_id in waivers.get(line, ()):
                return
            findings.append(Finding(
                rule_id, LEVEL_ERROR, message,
                location=f"{rel}:{line}", detail=detail,
            ))

        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            flat: List[Tuple[ast.stmt, bool]] = []
            _linearize(func.body, False, flat)
            is_exempt = func.name in exempt
            is_forwarder = func.name in _CHECKPOINT_FORWARDERS
            in_txn = False
            covered = False
            attr_run = False
            begins = 0
            commits = 0
            for stmt, in_handler in flat:
                events = _classify(stmt)
                for line, site in events.checkpoints:
                    if site is None:
                        if not is_forwarder:
                            emit(
                                "JD003",
                                "checkpoint with a non-literal site "
                                "outside a checkpoint forwarder",
                                line,
                                detail=f"in {func.name}()",
                            )
                    else:
                        checkpointed.setdefault(site, f"{rel}:{line}")
                        if site not in declared:
                            emit(
                                "JD003",
                                f"checkpoint site {site!r} is not declared "
                                "in any *_CRASH_SITES registry",
                                line,
                                detail=f"in {func.name}()",
                            )
                for line, what, is_attr in events.mutations:
                    if in_handler or is_exempt:
                        continue
                    if not in_txn:
                        emit(
                            "JD001",
                            f"{what} mutates journaled state outside any "
                            "journal transaction",
                            line,
                            detail=f"in {func.name}()",
                        )
                    elif covered:
                        covered = False
                        attr_run = is_attr
                    elif attr_run and is_attr:
                        pass  # one logical activation step
                    else:
                        emit(
                            "JD002",
                            f"{what} follows another mutation with no "
                            "journal record in between",
                            line,
                            detail=f"in {func.name}()",
                        )
                if events.begins and not in_handler:
                    in_txn = True
                    covered = True
                    attr_run = False
                    begins += events.begins
                if events.records and not in_handler:
                    covered = True
                    attr_run = False
                if events.commits:
                    commits += events.commits
                    if not in_handler:
                        in_txn = False
            if begins > 0 and commits == 0 and not is_exempt:
                emit(
                    "JD005",
                    f"{func.name}() begins a journal transaction but never "
                    "commits it",
                    func.lineno,
                )

    for site in sorted(declared):
        if site in checkpointed:
            continue
        rel, line, registry = declared[site]
        waivers = next((w for r, _, w in parsed if r == rel), {})
        if "JD004" in waivers.get(line, ()):
            continue
        findings.append(Finding(
            "JD004", LEVEL_ERROR,
            f"declared crash site {site!r} ({registry}) is never "
            "checkpointed by any scanned module",
            location=f"{rel}:{line}",
        ))
    return findings


def sanitize_tree(source_root: Path | None = None) -> Tuple[List[Finding], int]:
    """Run the JD rules over the journaled modules under *source_root*
    (default: the live ``src/`` tree)."""
    root = source_root if source_root is not None else default_source_root()
    sources: Dict[str, str] = {}
    for rel in JOURNAL_MODULES:
        path = root / rel
        if path.exists():
            sources[rel] = path.read_text(encoding="utf-8")
    return sanitize_sources(sources), len(sources)


def run_sanitize(source_root: Path | None = None) -> Tuple[List[Finding], int]:
    """The full sanitize pass: JD001-JD005 over the journaled modules
    plus RL007-RL010 over the whole tree.  Returns ``(findings,
    files_checked)`` where the count is the determinism sweep's (a
    superset of the journaled modules)."""
    jd_findings, _ = sanitize_tree(source_root)
    rl_findings, checked = lint_determinism_tree(source_root)
    return jd_findings + rl_findings, checked
