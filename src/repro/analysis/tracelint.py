"""DRAM trace linter (pass 2 of ``repro-facil analyze``).

Two input shapes are linted:

* **device-command logs** (:class:`repro.dram.command.DramCommand`
  sequences recorded by ``ChannelScheduler(log_commands=True)``): the
  linter replays the protocol state machine per bank and flags illegal
  ACT/PRE ordering, column commands to closed rows, and time going
  backwards on a channel's command bus;
* **request streams** (:class:`repro.dram.command.Request` sequences, or
  trace files in the :mod:`repro.dram.trace` format): the linter checks
  coordinate ranges against the :class:`DramOrganization`, reads to rows
  no write ever touched, and ECC-scrub reentrancy (a scrub pass — any
  request whose tag starts with ``"scrub"`` — must visit each row at
  most once, or corrected words could be folded twice);
* **telemetry span files** (Chrome-trace JSON or JSONL written by
  :class:`repro.telemetry.tracer.Tracer`): the linter checks span
  well-formedness against the layer catalog, interval nesting (a child
  span must lie inside its parent), and parent references.

Rule IDs are ``TL001``-``TL011``; see ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.analysis.findings import (
    LEVEL_ERROR,
    LEVEL_WARNING,
    Finding,
    register_rules,
)
from repro.dram.command import CMD_OPS, DramCommand, Request
from repro.dram.config import DramOrganization
from repro.dram.trace import load_trace
from repro.telemetry.tracer import LAYERS

__all__ = [
    "TRACELINT_RULES",
    "lint_commands",
    "lint_requests",
    "lint_trace_file",
    "lint_spans",
    "lint_span_file",
]

TRACELINT_RULES: Dict[str, str] = {
    "TL001": "ACT issued to a bank whose row buffers are all occupied "
             "(no PRE freed a slot first)",
    "TL002": "PRE issued for a row that is not open",
    "TL003": "RD/WR issued to a row that is not open in its bank",
    "TL004": "command or request coordinate outside the DRAM organization",
    "TL005": "read targets a row no write in the trace ever touched",
    "TL006": "ECC scrub pass re-enters a row it already scrubbed",
    "TL007": "command time goes backwards within one bank",
    "TL008": "redundant ACT: the target row is already open",
    "TL009": "malformed telemetry span (missing field, unknown layer, "
             "or negative duration)",
    "TL010": "child span escapes its parent's time interval",
    "TL011": "span references a parent that is absent or in another trace",
}
register_rules(TRACELINT_RULES)

_MAX_PER_RULE = 16  # cap repeated findings so huge traces stay readable


class _RuleBucket:
    """Collects findings, truncating each rule after ``_MAX_PER_RULE``."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self._counts: Dict[str, int] = {}

    def add(self, rule_id: str, level: str, message: str,
            location: str = "", detail: str = "") -> None:
        count = self._counts.get(rule_id, 0) + 1
        self._counts[rule_id] = count
        if count == _MAX_PER_RULE + 1:
            self.findings.append(
                Finding(rule_id, level,
                        "further findings of this rule suppressed",
                        location=location)
            )
        if count <= _MAX_PER_RULE:
            self.findings.append(
                Finding(rule_id, level, message, location, detail)
            )


def _coord_in_range(
    org: DramOrganization, channel: int, rank: int, bank: int,
    row: int, col: int,
) -> str:
    """Empty string when in range, else a description of the violation."""
    checks = (
        ("channel", channel, org.n_channels),
        ("rank", rank, org.ranks_per_channel),
        ("bank", bank, org.banks_per_rank),
        ("row", row, org.rows_per_bank),
        ("col", col, org.cols_per_row),
    )
    bad = [
        f"{name}={value} not in [0, {limit})"
        for name, value, limit in checks
        if not 0 <= value < limit
    ]
    return ", ".join(bad)


def lint_commands(
    commands: Sequence[DramCommand],
    org: DramOrganization,
    n_row_buffers: int = 1,
) -> List[Finding]:
    """Replay a device-command log and report protocol violations."""
    bucket = _RuleBucket()
    #: (rank, bank) -> ordered set of open rows (insertion order = LRU)
    open_rows: Dict[Tuple[int, int], List[int]] = {}
    #: the log is in *decision* order (background ACTs are stamped ahead
    #: of column traffic on other banks), so global time may jitter; but
    #: within one bank the protocol forces monotone timestamps.
    last_time: Dict[Tuple[int, int, int], float] = {}

    for index, cmd in enumerate(commands):
        where = f"cmd[{index}]"
        if cmd.op not in CMD_OPS:
            bucket.add("TL004", LEVEL_ERROR,
                       f"unknown opcode {cmd.op!r}", where)
            continue
        if cmd.op != "REF":
            bank_time_key = (cmd.channel, cmd.rank, cmd.bank)
            prev = last_time.get(bank_time_key)
            if prev is not None and cmd.time_ns < prev - 1e-9:
                bucket.add(
                    "TL007", LEVEL_ERROR,
                    f"{cmd.op} at {cmd.time_ns:.2f} ns after a command "
                    f"at {prev:.2f} ns in bank {cmd.rank}/{cmd.bank}",
                    where,
                )
            last_time[bank_time_key] = max(
                cmd.time_ns, prev if prev is not None else cmd.time_ns
            )

        if cmd.op == "REF":
            # All-bank refresh closes every row buffer.
            open_rows.clear()
            continue

        range_error = _coord_in_range(
            org, cmd.channel, cmd.rank, cmd.bank, cmd.row,
            cmd.col if cmd.op in ("RD", "WR") else 0,
        )
        if range_error:
            bucket.add("TL004", LEVEL_ERROR, range_error, where)
            continue

        key = (cmd.rank, cmd.bank)
        rows = open_rows.setdefault(key, [])
        if cmd.op == "ACT":
            if cmd.row in rows:
                bucket.add(
                    "TL008", LEVEL_WARNING,
                    f"row {cmd.row} already open in bank "
                    f"{cmd.rank}/{cmd.bank}",
                    where,
                )
            elif len(rows) >= n_row_buffers:
                bucket.add(
                    "TL001", LEVEL_ERROR,
                    f"bank {cmd.rank}/{cmd.bank} has {len(rows)} row(s) "
                    f"open with {n_row_buffers} buffer(s); ACT row "
                    f"{cmd.row} without a PRE",
                    where,
                )
            else:
                rows.append(cmd.row)
        elif cmd.op == "PRE":
            if cmd.row not in rows:
                bucket.add(
                    "TL002", LEVEL_ERROR,
                    f"PRE row {cmd.row} in bank {cmd.rank}/{cmd.bank} "
                    f"but open rows are {rows}",
                    where,
                )
            else:
                rows.remove(cmd.row)
        else:  # RD / WR
            if cmd.row not in rows:
                bucket.add(
                    "TL003", LEVEL_ERROR,
                    f"{cmd.op} row {cmd.row} in bank {cmd.rank}/"
                    f"{cmd.bank} but open rows are {rows}",
                    where,
                )
    return bucket.findings


def lint_requests(
    requests: Iterable[Request],
    org: DramOrganization,
    require_writes: bool = False,
) -> List[Finding]:
    """Lint a request stream: coordinate ranges, reads to rows nothing
    wrote, and scrub-pass reentrancy.

    ``require_writes=True`` raises never-written reads to errors; the
    default keeps them warnings, since traces often read memory a
    previous phase (outside the trace) initialized.
    """
    bucket = _RuleBucket()
    written: Set[Tuple[int, int, int, int]] = set()
    scrubbed: Set[Tuple[int, int, int, int]] = set()
    scrub_cursor: Dict[Tuple[int, int, int], int] = {}

    for index, request in enumerate(requests):
        where = f"req[{index}]"
        coord = request.coord
        range_error = _coord_in_range(
            org, coord.channel, coord.rank, coord.bank, coord.row, coord.col
        )
        if range_error:
            bucket.add("TL004", LEVEL_ERROR, range_error, where)
            continue
        row_key = (coord.channel, coord.rank, coord.bank, coord.row)
        if request.is_write:
            written.add(row_key)
        else:
            if row_key not in written:
                bucket.add(
                    "TL005",
                    LEVEL_ERROR if require_writes else LEVEL_WARNING,
                    f"read of ch{coord.channel}/rk{coord.rank}/"
                    f"bk{coord.bank}/row{coord.row} but no prior write "
                    "in this trace",
                    where,
                )
            if request.tag.startswith("scrub"):
                bank_key = row_key[:3]
                if (
                    row_key in scrubbed
                    and scrub_cursor.get(bank_key) != coord.row
                ):
                    bucket.add(
                        "TL006", LEVEL_ERROR,
                        f"scrub re-enters row {coord.row} of bank "
                        f"{coord.rank}/{coord.bank} after moving on",
                        where,
                    )
                scrubbed.add(row_key)
                scrub_cursor[bank_key] = coord.row
    return bucket.findings


def lint_trace_file(
    path: str,
    org: DramOrganization,
    require_writes: bool = False,
) -> List[Finding]:
    """Lint a trace file in the :mod:`repro.dram.trace` text format."""
    return lint_requests(load_trace(path), org, require_writes=require_writes)


# -- telemetry span linting (TL009-TL011) ----------------------------------

_SPAN_FIELDS = ("trace_id", "span_id", "name", "layer", "start_ns")

#: tolerance for float round-tripping through the Chrome exporter's
#: microsecond units (1 ns of slack on each interval edge)
_NEST_SLACK_NS = 1.0


def _normalize_chrome_event(event: Mapping[str, Any]) -> Dict[str, Any]:
    """A Chrome ``ph: "X"`` event as a span dict (ts/dur are in us)."""
    args = event.get("args") or {}
    ts = float(event.get("ts", 0.0))
    dur = float(event.get("dur", 0.0))
    return {
        "trace_id": args.get("trace_id"),
        "span_id": args.get("span_id"),
        "parent_id": args.get("parent_id"),
        "name": event.get("name"),
        "layer": event.get("cat"),
        "start_ns": ts * 1000.0,
        "end_ns": (ts + dur) * 1000.0,
        "args": dict(args),
    }


def lint_spans(spans: Iterable[Mapping[str, Any]]) -> List[Finding]:
    """Lint telemetry span dicts (the :meth:`Span.to_dict` shape).

    Checks each span for well-formedness (TL009), containment inside
    its parent's interval (TL010), and parent resolution (TL011).
    Spans left open by :meth:`Tracer.close_all` carry a ``force_closed``
    arg and are exempt from containment — their end is synthetic.
    """
    bucket = _RuleBucket()
    ordered = list(spans)
    by_id: Dict[Tuple[Any, Any], Mapping[str, Any]] = {}
    for span in ordered:
        by_id[(span.get("trace_id"), span.get("span_id"))] = span

    for index, span in enumerate(ordered):
        where = f"span[{index}]"
        missing = [f for f in _SPAN_FIELDS if span.get(f) is None]
        if missing:
            bucket.add(
                "TL009", LEVEL_ERROR,
                f"span is missing field(s) {', '.join(missing)}", where,
            )
            continue
        layer = span["layer"]
        if layer not in LAYERS:
            bucket.add(
                "TL009", LEVEL_ERROR,
                f"unknown layer {layer!r}; known: {LAYERS}", where,
            )
            continue
        start = float(span["start_ns"])
        end = span.get("end_ns")
        if end is not None and float(end) < start:
            bucket.add(
                "TL009", LEVEL_ERROR,
                f"span {span['name']!r} ends at {float(end):.1f} ns "
                f"before it starts at {start:.1f} ns",
                where,
            )
            continue
        parent_id = span.get("parent_id")
        if parent_id is None:
            continue
        parent = by_id.get((span["trace_id"], parent_id))
        if parent is None:
            bucket.add(
                "TL011", LEVEL_ERROR,
                f"span {span['name']!r} references parent {parent_id} "
                f"absent from trace {span['trace_id']}",
                where,
            )
            continue
        forced = (span.get("args") or {}).get("force_closed") or (
            (parent.get("args") or {}).get("force_closed")
        )
        if forced:
            continue  # synthetic end times: containment is meaningless
        p_start = float(parent.get("start_ns", 0.0))
        p_end = parent.get("end_ns")
        child_end = float(end) if end is not None else None
        escapes = start < p_start - _NEST_SLACK_NS or (
            child_end is not None
            and p_end is not None
            and child_end > float(p_end) + _NEST_SLACK_NS
        )
        if escapes:
            bucket.add(
                "TL010", LEVEL_ERROR,
                f"span {span['name']!r} [{start:.1f}, "
                f"{child_end if child_end is not None else 'open'}] ns "
                f"escapes parent {parent.get('name')!r} "
                f"[{p_start:.1f}, {p_end}] ns",
                where,
            )
    return bucket.findings


def lint_span_file(path: str) -> List[Finding]:
    """Lint a span file written by the tracer's exporters.

    Autodetects the format: a JSON object with ``traceEvents`` is a
    Chrome trace (``ph: "X"`` events are linted, metadata skipped);
    anything else is treated as JSONL with one span dict per line.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        document = json.loads(text)
        events = document.get("traceEvents", [])
        spans = [
            _normalize_chrome_event(event)
            for event in events
            if event.get("ph") == "X"
        ]
        return lint_spans(spans)
    spans = [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]
    return lint_spans(spans)
