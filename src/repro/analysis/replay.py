"""The replay-diff oracle: run twice, hash state at barriers, diff.

Every bench and campaign in this repo leans on byte-identical replays —
"same seed, same report" is the determinism contract the static rules
(RL005-RL010) guard by construction.  This module checks it *by
execution*: run the same workload twice at the same seed, snapshot a
state hash at periodic **barriers** (arena CRC, journal cursor, RNG
stream position, metrics snapshot — whatever the caller assembles), and
report the first barrier where the two runs disagree.  A diverging
barrier localizes the nondeterminism to the work between it and its
predecessor — far tighter than "the final reports differ".

Rules:

* ``RD001`` — two runs at the same seed disagree at a state-hash
  barrier (or produce different barrier sequences).
* ``RD002`` — every barrier matched but the final state hash differs:
  the barriers are too coarse to localize a real divergence.

The oracle is deliberately generic: :func:`replay_diff` takes a
callable that runs the workload against a fresh
:class:`BarrierRecorder` and returns the run's result.  The serving
runtime wires itself in behind ``repro-facil serve --replay-check``
(see :meth:`repro.serving.runtime.ServingRuntime._barrier_state`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.analysis.findings import LEVEL_ERROR, Finding, register_rules

__all__ = [
    "REPLAY_RULES",
    "state_hash",
    "Barrier",
    "BarrierRecorder",
    "ReplayReport",
    "replay_diff",
]

REPLAY_RULES: Dict[str, str] = {
    "RD001": "replay divergence: two runs at the same seed disagree at a "
             "state-hash barrier",
    "RD002": "replay final-state mismatch with every barrier clean "
             "(barriers too coarse to localize the divergence)",
}
register_rules(REPLAY_RULES)


def state_hash(value: Any) -> str:
    """Stable short hash of *value*'s ``repr``.

    ``repr`` is deterministic for the state this repo snapshots —
    ints, floats, strings, tuples/lists of them, and dicts (insertion
    ordered) — and never salted, unlike ``hash()``.
    """
    return hashlib.sha1(repr(value).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Barrier:
    """One state snapshot: per-component hashes at a workload position."""

    index: int
    label: str
    position: int
    #: ``(component name, state hash)`` sorted by name
    components: Tuple[Tuple[str, str], ...]

    def diff(self, other: "Barrier") -> List[str]:
        """Names of the components whose hashes differ from *other*'s
        (plus pseudo-components for label/position mismatches)."""
        problems: List[str] = []
        if self.label != other.label:
            problems.append("label")
        if self.position != other.position:
            problems.append("position")
        mine = dict(self.components)
        theirs = dict(other.components)
        for name in sorted(set(mine) | set(theirs)):
            if mine.get(name) != theirs.get(name):
                problems.append(name)
        return problems


class BarrierRecorder:
    """Collects barriers for one run; ``every`` sets the cadence.

    :meth:`observe` is cheap to call at every loop iteration: it hashes
    state (via the lazy *state_fn*) only when ``position // every``
    enters a new epoch, so a serving loop can call it unconditionally.
    """

    def __init__(self, every: int = 16) -> None:
        if every <= 0:
            raise ValueError("barrier cadence must be positive")
        self.every = every
        self.barriers: List[Barrier] = []
        self._epoch: Optional[int] = None

    def observe(self, position: int,
                state_fn: Callable[[], Mapping[str, Any]]) -> bool:
        """Snap a barrier when *position* crosses into a new epoch.
        Returns True when a barrier was recorded."""
        epoch = position // self.every
        if self._epoch is not None and epoch <= self._epoch:
            return False
        self._epoch = epoch
        self.snap(f"epoch-{epoch}", position, state_fn())
        return True

    def snap(self, label: str, position: int,
             components: Mapping[str, Any]) -> Barrier:
        """Record a barrier unconditionally (e.g. the final snapshot)."""
        barrier = Barrier(
            index=len(self.barriers),
            label=label,
            position=position,
            components=tuple(sorted(
                (name, state_hash(value))
                for name, value in components.items()
            )),
        )
        self.barriers.append(barrier)
        return barrier


@dataclass
class ReplayReport:
    """Outcome of one :func:`replay_diff` double run."""

    #: the FIRST run's result — callers use it as the canonical output
    result: Any = None
    barriers: int = 0
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        if self.ok:
            return f"replay-diff: OK ({self.barriers} barriers identical)"
        lines = [f"replay-diff: DIVERGED ({self.barriers} barriers)"]
        lines.extend(f.render() for f in self.findings)
        return "\n".join(lines)


def replay_diff(
    run: Callable[[BarrierRecorder], Any],
    every: int = 16,
    final_hash: Optional[Callable[[Any], str]] = None,
) -> ReplayReport:
    """Run *run* twice with fresh recorders and diff the barrier streams.

    *run* must build its entire workload from its own seeds — the only
    shared input is the recorder.  *final_hash*, when given, hashes each
    run's result for the RD002 coarseness check.
    """
    recorder_a = BarrierRecorder(every)
    result_a = run(recorder_a)
    recorder_b = BarrierRecorder(every)
    result_b = run(recorder_b)

    findings: List[Finding] = []
    a, b = recorder_a.barriers, recorder_b.barriers
    if len(a) != len(b):
        findings.append(Finding(
            "RD001", LEVEL_ERROR,
            f"runs recorded different barrier counts: {len(a)} vs {len(b)}",
            location="barriers",
        ))
    for barrier_a, barrier_b in zip(a, b):
        diverged = barrier_a.diff(barrier_b)
        if diverged:
            findings.append(Finding(
                "RD001", LEVEL_ERROR,
                f"first divergence at barrier {barrier_a.index} "
                f"({barrier_a.label}, position {barrier_a.position}): "
                f"component(s) {', '.join(diverged)} differ",
                location=f"barrier[{barrier_a.index}]",
                detail=f"a={dict(barrier_a.components)} "
                       f"b={dict(barrier_b.components)}",
            ))
            break
    if not findings and final_hash is not None:
        hash_a, hash_b = final_hash(result_a), final_hash(result_b)
        if hash_a != hash_b:
            findings.append(Finding(
                "RD002", LEVEL_ERROR,
                f"final state hashes differ ({hash_a} vs {hash_b}) though "
                f"all {len(a)} barriers matched",
                location="final",
            ))
    return ReplayReport(result=result_a, barriers=len(a), findings=findings)
