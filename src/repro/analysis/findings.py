"""Findings and reports shared by every static-analysis pass.

A :class:`Finding` is one rule violation with a stable rule ID; an
:class:`AnalysisReport` aggregates the findings of one or more passes and
renders them as text or as a SARIF-style JSON document (the interchange
format CI annotators consume).  Rule IDs are registered in :data:`RULES`
so reports and docs never drift from the implementation.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LEVEL_ERROR",
    "LEVEL_WARNING",
    "LEVEL_NOTE",
    "RULES",
    "Finding",
    "AnalysisReport",
    "register_rules",
]

LEVEL_ERROR = "error"
LEVEL_WARNING = "warning"
LEVEL_NOTE = "note"

_LEVELS = (LEVEL_ERROR, LEVEL_WARNING, LEVEL_NOTE)

#: Registry of every known rule ID -> one-line description.  Passes
#: register their rules at import time via :func:`register_rules`; the
#: SARIF output and ``docs/ANALYSIS.md`` are derived from this table.
RULES: Dict[str, str] = {}


def register_rules(rules: Dict[str, str]) -> None:
    """Add a pass's rules to the registry (idempotent, collision-checked)."""
    for rule_id, description in rules.items():
        existing = RULES.get(rule_id)
        if existing is not None and existing != description:
            raise ValueError(f"rule {rule_id} registered twice with different text")
        RULES[rule_id] = description


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule_id: stable identifier (``MVxxx`` mapping verifier, ``TLxxx``
            trace linter, ``RLxxx`` repo lint, ``GTxxx`` gate).
        level: ``error`` (gate-failing), ``warning``, or ``note``.
        message: human-readable one-liner.
        location: where the violation lives — a ``path:line`` for repo
            lint, a mapping/platform name for the verifier, a trace
            position (``cmd[i]``/``req[i]``) for the linter.
        detail: optional longer context (offending values, expected vs
            observed).
    """

    rule_id: str
    level: str
    message: str
    location: str = ""
    detail: str = ""

    def __post_init__(self) -> None:
        if self.level not in _LEVELS:
            raise ValueError(f"level must be one of {_LEVELS}, got {self.level!r}")
        if self.rule_id not in RULES:
            raise ValueError(f"unregistered rule id {self.rule_id!r}")

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        tail = f"\n      {self.detail}" if self.detail else ""
        return f"{self.rule_id} {self.level}{where}: {self.message}{tail}"


#: ``path:line`` location (the repo-lint / sanitize convention); anything
#: else renders as a SARIF logical location.
_PATH_LINE_RE = re.compile(r"^(?P<path>[^\s:][^:]*\.[A-Za-z0-9_]+):(?P<line>\d+)$")


def _split_location(location: str) -> Tuple[Optional[str], int]:
    """``(path, line)`` when *location* is ``path:line``, else ``(path, 0)``
    when it is a bare file path, else ``(None, 0)``."""
    match = _PATH_LINE_RE.match(location)
    if match:
        return match.group("path"), int(match.group("line"))
    if "/" in location or location.endswith((".py", ".json", ".jsonl")):
        if ":" not in location and " " not in location:
            return location, 0
    return None, 0


@dataclass
class AnalysisReport:
    """Aggregated outcome of one ``repro-facil analyze`` run."""

    findings: List[Finding] = field(default_factory=list)
    #: findings moved aside by :meth:`waive` — kept in the rendered and
    #: SARIF output (as suppressed results) but never gate-failing
    waived: List[Finding] = field(default_factory=list)
    #: pass name -> short status line ("ok", "skipped: ...", "N findings")
    passes: Dict[str, str] = field(default_factory=dict)
    #: number of objects each pass inspected (mappings, commands, files)
    checked: Dict[str, int] = field(default_factory=dict)

    def extend(self, pass_name: str, findings: Iterable[Finding],
               checked: int = 0) -> None:
        added = list(findings)
        self.findings.extend(added)
        self.checked[pass_name] = self.checked.get(pass_name, 0) + checked
        status = "ok" if not added else f"{len(added)} finding(s)"
        self.passes[pass_name] = status

    def skip(self, pass_name: str, reason: str) -> None:
        self.passes[pass_name] = f"skipped: {reason}"

    def waive(self, rule_ids: Sequence[str]) -> None:
        """Move findings of the given rules to :attr:`waived` (CLI
        ``--waive``).  Waived findings stay visible in the text report and
        become suppressed SARIF results, but never contribute to
        :attr:`errors` — and therefore never to a nonzero exit."""
        waived = set(rule_ids)
        self.waived.extend(f for f in self.findings if f.rule_id in waived)
        self.findings = [f for f in self.findings if f.rule_id not in waived]

    @property
    def errors(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.level == LEVEL_ERROR)

    @property
    def ok(self) -> bool:
        return not self.errors

    # -- rendering -------------------------------------------------------

    def render_text(self) -> str:
        lines: List[str] = []
        for name in sorted(self.passes):
            status = self.passes[name]
            count = self.checked.get(name)
            suffix = f" ({count} checked)" if count else ""
            lines.append(f"pass {name:12s}: {status}{suffix}")
        if self.findings:
            lines.append("")
            for finding in self.findings:
                lines.append(finding.render())
        if self.waived:
            lines.append("")
            for finding in self.waived:
                lines.append(f"waived {finding.render()}")
        lines.append("")
        verdict = "PASS" if self.ok else f"FAIL ({len(self.errors)} error(s))"
        if self.waived:
            verdict += f" [{len(self.waived)} waived]"
        lines.append(f"analysis: {verdict}")
        return "\n".join(lines)

    def to_sarif(self) -> Dict[str, Any]:
        """Real SARIF 2.1.0: one run; rule metadata under
        ``tool.driver.rules``; file-located findings become physical
        locations over a deduplicated ``artifacts`` table (URIs relative
        to the ``SRCROOT`` base); everything else becomes a logical
        location.  Waived findings are emitted as suppressed results."""
        everything = list(self.findings) + list(self.waived)
        used = sorted({f.rule_id for f in everything})
        rule_index = {rule_id: i for i, rule_id in enumerate(used)}
        artifact_index: Dict[str, int] = {}

        def result(finding: Finding, suppressed: bool) -> Dict[str, Any]:
            out: Dict[str, Any] = {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": finding.level,
                "message": {"text": finding.message},
            }
            path, line = _split_location(finding.location)
            if path is not None:
                if path not in artifact_index:
                    artifact_index[path] = len(artifact_index)
                physical: Dict[str, Any] = {
                    "artifactLocation": {
                        "uri": path,
                        "uriBaseId": "SRCROOT",
                        "index": artifact_index[path],
                    }
                }
                if line:
                    physical["region"] = {"startLine": line}
                out["locations"] = [{"physicalLocation": physical}]
            elif finding.location:
                out["locations"] = [
                    {"logicalLocations": [{"name": finding.location}]}
                ]
            else:
                out["locations"] = []
            if finding.detail:
                out["properties"] = {"detail": finding.detail}
            if suppressed:
                out["suppressions"] = [
                    {"kind": "external", "justification": "waived via --waive"}
                ]
            return out

        results = [result(f, False) for f in self.findings]
        results += [result(f, True) for f in self.waived]
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-facil-analyze",
                            "rules": [
                                {
                                    "id": rule_id,
                                    "shortDescription": {"text": RULES[rule_id]},
                                    "defaultConfiguration": {"level": "error"},
                                }
                                for rule_id in used
                            ],
                        }
                    },
                    "originalUriBaseIds": {
                        "SRCROOT": {
                            "description": {
                                "text": "the repository's src/ directory "
                                "(bound by the consuming CI annotator)"
                            }
                        }
                    },
                    "artifacts": [
                        {"location": {"uri": uri, "uriBaseId": "SRCROOT"}}
                        for uri in artifact_index
                    ],
                    "results": results,
                    "properties": {
                        "passes": dict(self.passes),
                        "checked": dict(self.checked),
                    },
                }
            ],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_sarif(), indent=2, sort_keys=True)
