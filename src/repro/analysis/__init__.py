"""Static analysis for the FACIL reproduction (``repro-facil analyze``).

The passes:

* :mod:`repro.analysis.mapverify` — proves every reachable address
  mapping is a bijective bit permutation with the paper's PIM placement
  invariants (rules ``MVxxx``);
* :mod:`repro.analysis.tracelint` — replays DRAM command logs and
  request traces against the protocol state machine (rules ``TLxxx``);
* :mod:`repro.analysis.repolint` + :mod:`repro.analysis.gate` — repo
  conventions as AST rules (``RLxxx``) plus ruff/mypy when installed
  (``GTxxx``);
* :mod:`repro.analysis.sanitize` — the journal-discipline dataflow
  rules (``JDxxx``) over the journaled modules plus the determinism
  rules ``RL007``-``RL010`` (the replay-diff oracle ``RDxxx`` lives in
  :mod:`repro.analysis.replay` and runs under ``serve --replay-check``).

:func:`run_all` composes them into one :class:`AnalysisReport`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.analysis.findings import (
    LEVEL_ERROR,
    LEVEL_NOTE,
    LEVEL_WARNING,
    RULES,
    AnalysisReport,
    Finding,
    register_rules,
)
from repro.analysis.gate import run_mypy, run_ruff
from repro.analysis.mapverify import (
    DEFAULT_MATRIX_BATTERY,
    chunk_max_map_id,
    gf2_rank,
    mapping_matrix,
    unsafe_mapping,
    verify_mapping,
    verify_pim_mapping,
    verify_platform,
    verify_selection,
)
from repro.analysis.repolint import lint_determinism_tree, lint_tree
from repro.analysis.replay import (
    BarrierRecorder,
    ReplayReport,
    replay_diff,
    state_hash,
)
from repro.analysis.sanitize import run_sanitize, sanitize_sources, sanitize_tree
from repro.analysis.tracelint import (
    lint_commands,
    lint_requests,
    lint_span_file,
    lint_spans,
    lint_trace_file,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "RULES",
    "register_rules",
    "LEVEL_ERROR",
    "LEVEL_WARNING",
    "LEVEL_NOTE",
    "mapping_matrix",
    "gf2_rank",
    "unsafe_mapping",
    "chunk_max_map_id",
    "verify_mapping",
    "verify_pim_mapping",
    "verify_selection",
    "verify_platform",
    "DEFAULT_MATRIX_BATTERY",
    "lint_commands",
    "lint_requests",
    "lint_span_file",
    "lint_spans",
    "lint_trace_file",
    "lint_tree",
    "lint_determinism_tree",
    "run_sanitize",
    "sanitize_sources",
    "sanitize_tree",
    "BarrierRecorder",
    "ReplayReport",
    "replay_diff",
    "state_hash",
    "run_ruff",
    "run_mypy",
    "run_all",
    "KNOWN_PASSES",
]

#: every pass name ``run_all``/``analyze --pass`` accepts
KNOWN_PASSES: Tuple[str, ...] = (
    "mapverify", "tracelint", "repolint", "gate", "sanitize",
)


def _mapverify_pass(report: AnalysisReport) -> None:
    from repro.core.mapping import conventional_mapping
    from repro.core.bitfield import ilog2
    from repro.platforms.specs import ALL_PLATFORMS

    findings: list[Finding] = []
    checked = 0
    for spec in ALL_PLATFORMS:
        org = spec.dram.org
        huge_page = 2 << 20
        conv = conventional_mapping(org, ilog2(huge_page))
        platform_findings, platform_checked = verify_platform(
            spec.name, org, spec.pim, conv, huge_page_bytes=huge_page
        )
        findings.extend(platform_findings)
        checked += platform_checked
    report.extend("mapverify", findings, checked)


def _tracelint_pass(
    report: AnalysisReport,
    trace_paths: Sequence[str],
    span_paths: Sequence[str] = (),
) -> None:
    from repro.dram.config import TINY_ORG

    findings: list[Finding] = []
    checked = 0
    for path in trace_paths:
        findings.extend(lint_trace_file(path, TINY_ORG))
        checked += 1
    for path in span_paths:
        findings.extend(lint_span_file(path))
        checked += 1
    findings.extend(_simulator_self_check())
    checked += 1
    report.extend("tracelint", findings, checked)


def _simulator_self_check() -> "list[Finding]":
    """Drive the timing simulator over a deterministic mixed workload
    with command logging on, and lint its own command stream — the
    simulator must obey the protocol it models."""
    import random

    from repro.dram.address import DramCoord
    from repro.dram.command import Request
    from repro.dram.config import (
        DramConfig,
        LPDDR5_6400_TIMINGS,
        TINY_ORG,
    )
    from repro.dram.scheduler import ChannelScheduler

    config = DramConfig(TINY_ORG, LPDDR5_6400_TIMINGS)
    rng = random.Random(2025)
    findings: list[Finding] = []
    for n_row_buffers, model_refresh in ((1, False), (2, True)):
        scheduler = ChannelScheduler(
            config,
            channel=0,
            n_row_buffers=n_row_buffers,
            model_refresh=model_refresh,
            log_commands=True,
        )
        for index in range(400):
            coord = DramCoord(
                channel=0,
                rank=0,
                bank=rng.randrange(TINY_ORG.banks_per_rank),
                row=rng.randrange(64),
                col=rng.randrange(TINY_ORG.cols_per_row),
            )
            scheduler.enqueue(
                Request(coord=coord, is_write=index % 3 == 0, tag="soc")
            )
        scheduler.drain()
        findings.extend(
            lint_commands(
                scheduler.command_log or [],
                TINY_ORG,
                n_row_buffers=n_row_buffers,
            )
        )
    return findings


def _repolint_pass(report: AnalysisReport) -> None:
    findings, checked = lint_tree()
    report.extend("repolint", findings, checked)


def _sanitize_pass(report: AnalysisReport) -> None:
    findings, checked = run_sanitize()
    report.extend("sanitize", findings, checked)


def _gate_pass(report: AnalysisReport, repo_root: Path) -> None:
    ruff_findings = run_ruff(repo_root)
    if ruff_findings is None:
        report.skip("ruff", "ruff not installed")
    else:
        report.extend("ruff", ruff_findings, 1)
    mypy_findings = run_mypy(repo_root)
    if mypy_findings is None:
        report.skip("mypy", "mypy not installed")
    else:
        report.extend("mypy", mypy_findings, 1)


def run_all(
    repo_root: Optional[Path] = None,
    trace_paths: Sequence[str] = (),
    span_paths: Sequence[str] = (),
    passes: Tuple[str, ...] = KNOWN_PASSES,
) -> AnalysisReport:
    """Run the requested analysis passes and return the joint report.

    An unknown pass name raises :class:`ValueError` — a typo must never
    silently analyze nothing and exit 0.
    """
    unknown = sorted(set(passes) - set(KNOWN_PASSES))
    if unknown:
        raise ValueError(
            f"unknown analysis pass(es) {', '.join(unknown)}; "
            f"known: {', '.join(KNOWN_PASSES)}"
        )
    root = repo_root if repo_root is not None else Path.cwd()
    report = AnalysisReport()
    if "mapverify" in passes:
        _mapverify_pass(report)
    if "tracelint" in passes:
        _tracelint_pass(report, trace_paths, span_paths)
    if "repolint" in passes:
        _repolint_pass(report)
    if "gate" in passes:
        _gate_pass(report, root)
    if "sanitize" in passes:
        _sanitize_pass(report)
    return report
