"""Circuit breakers and the PIM brown-out controller.

:class:`CircuitBreaker` layers the classic three-state machine on the
reliability stack's :class:`~repro.reliability.degrade.HealthMonitor`
sliding-window fault rate:

    CLOSED --fault rate >= threshold--> OPEN --cooldown--> HALF_OPEN
       ^                                  ^                    |
       +------- probe succeeds -----------+---- probe fails ---+

CLOSED passes traffic and watches the fault rate; OPEN fails fast (the
runtime routes around the component — no request waits on a path that is
currently losing most of its work); HALF_OPEN passes traffic again after
the cooldown as *probes*: one probe failure re-opens the breaker, a full
probe quota of consecutive successes closes it.  ``allow`` is
deliberately side-effect-free apart from the time-driven OPEN ->
HALF_OPEN move (which is idempotent), so the runtime may consult it
speculatively while scheduling.

:class:`BrownoutController` is orthogonal: it watches PIM **backlog**
(queued-but-unexecuted work on the PIM timeline), not faults.  When the
backlog crosses the high watermark the runtime migrates decode to the
SoC; it migrates back only below the low watermark — the hysteresis gap
prevents flapping at the boundary.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.reliability.degrade import HealthMonitor

__all__ = ["BreakerState", "BrownoutController", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Fail-fast wrapper around one component's health signal."""

    def __init__(
        self,
        component: str,
        monitor: Optional[HealthMonitor] = None,
        fault_rate_threshold: float = 0.5,
        min_observations: int = 4,
        cooldown_ns: float = 5e6,
        probe_quota: int = 2,
    ):
        if not 0.0 < fault_rate_threshold <= 1.0:
            raise ValueError("fault_rate_threshold must be in (0, 1]")
        if min_observations <= 0 or probe_quota <= 0:
            raise ValueError("min_observations and probe_quota must be positive")
        if cooldown_ns <= 0:
            raise ValueError("cooldown_ns must be positive")
        self.component = component
        self.monitor = monitor if monitor is not None else HealthMonitor()
        self.fault_rate_threshold = fault_rate_threshold
        self.min_observations = min_observations
        self.cooldown_ns = cooldown_ns
        self.probe_quota = probe_quota
        self.state = BreakerState.CLOSED
        self.opened_at_ns = 0.0
        self._probe_successes = 0
        #: (virtual ns, from, to) — every state change, for the report
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []

    def _move(self, new: BreakerState, now_ns: float) -> None:
        if new is not self.state:
            self.transitions.append((now_ns, self.state, new))
            self.state = new

    # -- gating ---------------------------------------------------------------

    def allow(self, now_ns: float) -> bool:
        """May a request use this component right now?

        OPEN flips to HALF_OPEN once the cooldown elapses (idempotent);
        HALF_OPEN and CLOSED both pass traffic.
        """
        if self.state is BreakerState.OPEN:
            if now_ns - self.opened_at_ns >= self.cooldown_ns:
                self._move(BreakerState.HALF_OPEN, now_ns)
                self._probe_successes = 0
            else:
                return False
        return True

    # -- outcome reporting ----------------------------------------------------

    def record_success(self, now_ns: float) -> None:
        self.monitor.record_success(self.component)
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.probe_quota:
                self._move(BreakerState.CLOSED, now_ns)

    def record_failure(self, now_ns: float) -> None:
        self.monitor.record_fault(self.component)
        if self.state is BreakerState.HALF_OPEN:
            # one failed probe is proof enough: back to OPEN, new cooldown
            self._move(BreakerState.OPEN, now_ns)
            self.opened_at_ns = now_ns
            return
        if (
            self.state is BreakerState.CLOSED
            and self.monitor.observations(self.component) >= self.min_observations
            and self.monitor.fault_rate(self.component) >= self.fault_rate_threshold
        ):
            self._move(BreakerState.OPEN, now_ns)
            self.opened_at_ns = now_ns

    # -- reporting -------------------------------------------------------------

    @property
    def trips(self) -> int:
        """How many times this breaker has moved *to* OPEN."""
        return sum(1 for _, _, to in self.transitions if to is BreakerState.OPEN)

    def snapshot(self) -> dict:
        """Auditable point-in-time view for reports and fleet lanes."""
        return {
            "component": self.component,
            "state": self.state.value,
            "trips": self.trips,
            "transitions": len(self.transitions),
            "last_transition_t_ns": (
                self.transitions[-1][0] if self.transitions else None
            ),
        }


class BrownoutController:
    """Migrate decode off PIM when its backlog saturates; back on recovery."""

    def __init__(self, high_watermark_ns: float, low_watermark_ns: float):
        if not 0 <= low_watermark_ns < high_watermark_ns:
            raise ValueError("need 0 <= low_watermark_ns < high_watermark_ns")
        self.high_watermark_ns = high_watermark_ns
        self.low_watermark_ns = low_watermark_ns
        self.active = False
        self._started_ns = 0.0
        #: closed brown-out windows as (start_ns, end_ns)
        self.intervals: List[Tuple[float, float]] = []

    def observe(self, backlog_ns: float, now_ns: float) -> bool:
        """Feed one backlog sample; returns whether brown-out is active."""
        if not self.active and backlog_ns >= self.high_watermark_ns:
            self.active = True
            self._started_ns = now_ns
        elif self.active and backlog_ns <= self.low_watermark_ns:
            self.active = False
            self.intervals.append((self._started_ns, now_ns))
        return self.active

    def finish(self, now_ns: float) -> None:
        """Close a dangling brown-out window at end of run."""
        if self.active:
            self.active = False
            self.intervals.append((self._started_ns, now_ns))

    @property
    def total_ns(self) -> float:
        return sum(end - start for start, end in self.intervals)
