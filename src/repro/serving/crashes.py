"""Crash-recovery campaign: seeded crash injection over the MapID journal.

Each injection arms the :class:`~repro.reliability.faults.FaultInjector`
with one journal crash site, performs the matching allocator operation
(alloc, free, or phase switch) on a functional :class:`PimSystem`, lets
the :class:`~repro.core.journal.InjectedCrash` rip through it, then runs
:func:`~repro.core.journal.recover` and **audits the recovered state**:

* every live PIM mapping-table entry passes the PR 2 static verifier
  (:func:`~repro.analysis.mapverify.verify_pim_mapping`);
* mapping-table refcounts exactly match the live tensor population —
  no leaked MapID slots, no dangling references;
* the mapped-area set exactly matches the live tensors;
* every live tensor's bytes still CRC-match their ground truth (the
  phase-switch staging copy must survive the crash).

The sweep cycles through all :data:`~repro.core.journal.CRASH_SITES`
evenly, so ``n_injections=500`` hits every site 50 times with varied
shapes, data, and switch states.  One ``random.Random(seed)`` drives all
choices: a failing injection is reproducible from (seed, index).
"""

from __future__ import annotations

import random
import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.mapverify import verify_pim_mapping
from repro.core.journal import (
    CRASH_SITES,
    MIGRATE_CRASH_SITES,
    InjectedCrash,
    MapJournal,
)
from repro.core.pimalloc import PimSystem, PimTensor
from repro.core.selector import MatrixConfig
from repro.dram.config import DramOrganization
from repro.kvcache.block import BlockRef
from repro.kvcache.pool import KV_CRASH_SITES, BlockPool, KvSpec, recover_pool
from repro.pim.config import PimConfig
from repro.reliability.campaign import TINY_CAMPAIGN_ORG
from repro.reliability.faults import FaultInjector

__all__ = ["CrashReport", "run_crash_campaign"]

#: matrix shapes cycled by the campaign (each fits one huge page on the
#: tiny geometry, so two live tensors plus a staging page fit in DRAM)
_SHAPES: Tuple[Tuple[int, int], ...] = ((16, 256), (8, 128), (32, 256))

#: live-tensor pool bound: TINY_CAMPAIGN_ORG holds 4 huge pages and a
#: phase switch needs one spare for its staging copy
_MAX_LIVE = 2


@dataclass
class CrashReport:
    """Aggregate outcome of one crash-recovery campaign."""

    seed: int
    n_injections: int = 0
    crashes_by_site: Dict[str, int] = field(default_factory=dict)
    rolled_back: int = 0
    rolled_forward: int = 0
    no_ops: int = 0
    #: audit failures (each is one injection where the audit tripped)
    verifier_findings: int = 0
    refcount_mismatches: int = 0
    area_mismatches: int = 0
    crc_mismatches: int = 0
    leaked_map_ids: int = 0
    #: did the post-campaign teardown reach the pristine state?
    final_clean: bool = False
    failures: List[str] = field(default_factory=list)
    #: KV block-pool campaign (see repro.kvcache): separate injector,
    #: journal, and counters so the MapID sweep stays byte-identical
    kv_injections: int = 0
    kv_crashes_by_site: Dict[str, int] = field(default_factory=dict)
    kv_rolled_back: int = 0
    kv_rolled_forward: int = 0
    kv_no_ops: int = 0
    kv_leaked_refcounts: int = 0
    kv_audit_failures: int = 0
    kv_final_clean: bool = True
    #: adaptive-migration campaign (two-phase MIGRATE transactions on an
    #: AdaptiveArena): separate injector and system, counters below
    migration_injections: int = 0
    migration_crashes_by_site: Dict[str, int] = field(default_factory=dict)
    migration_rolled_back: int = 0
    migration_rolled_forward: int = 0
    #: recoveries that left a page range half-migrated (the invariant the
    #: two-phase MIGRATE record exists to rule out)
    torn_mappings: int = 0
    migration_audit_failures: int = 0
    migration_final_clean: bool = True

    @property
    def ok(self) -> bool:
        return (
            self.verifier_findings == 0
            and self.refcount_mismatches == 0
            and self.area_mismatches == 0
            and self.crc_mismatches == 0
            and self.leaked_map_ids == 0
            and self.final_clean
            and self.kv_leaked_refcounts == 0
            and self.kv_audit_failures == 0
            and self.kv_final_clean
            and self.torn_mappings == 0
            and self.migration_audit_failures == 0
            and self.migration_final_clean
        )

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "n_injections": self.n_injections,
            "crashes_by_site": dict(sorted(self.crashes_by_site.items())),
            "rolled_back": self.rolled_back,
            "rolled_forward": self.rolled_forward,
            "no_ops": self.no_ops,
            "verifier_findings": self.verifier_findings,
            "refcount_mismatches": self.refcount_mismatches,
            "area_mismatches": self.area_mismatches,
            "crc_mismatches": self.crc_mismatches,
            "leaked_map_ids": self.leaked_map_ids,
            "final_clean": self.final_clean,
            "kv_injections": self.kv_injections,
            "kv_crashes_by_site": dict(sorted(self.kv_crashes_by_site.items())),
            "kv_rolled_back": self.kv_rolled_back,
            "kv_rolled_forward": self.kv_rolled_forward,
            "kv_no_ops": self.kv_no_ops,
            "kv_leaked_refcounts": self.kv_leaked_refcounts,
            "kv_audit_failures": self.kv_audit_failures,
            "kv_final_clean": self.kv_final_clean,
            "migration_injections": self.migration_injections,
            "migration_crashes_by_site": dict(
                sorted(self.migration_crashes_by_site.items())
            ),
            "migration_rolled_back": self.migration_rolled_back,
            "migration_rolled_forward": self.migration_rolled_forward,
            "torn_mappings": self.torn_mappings,
            "migration_audit_failures": self.migration_audit_failures,
            "migration_final_clean": self.migration_final_clean,
            "failures": list(self.failures[:20]),
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            f"crash campaign: seed={self.seed} injections={self.n_injections}",
            "crashes by site : "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.crashes_by_site.items())),
            f"rolled back     : {self.rolled_back}",
            f"rolled forward  : {self.rolled_forward}",
            f"no-ops          : {self.no_ops}",
            f"verifier errors : {self.verifier_findings}",
            f"refcount errors : {self.refcount_mismatches}",
            f"area errors     : {self.area_mismatches}",
            f"CRC errors      : {self.crc_mismatches}",
            f"leaked MapIDs   : {self.leaked_map_ids}",
            f"final clean     : {self.final_clean}",
        ]
        if self.kv_injections:
            lines += [
                f"kv injections   : {self.kv_injections} ("
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.kv_crashes_by_site.items())
                )
                + ")",
                f"kv recovery     : {self.kv_rolled_back} rolled back, "
                f"{self.kv_rolled_forward} rolled forward, "
                f"{self.kv_no_ops} no-ops",
                f"kv leaked refs  : {self.kv_leaked_refcounts}",
                f"kv audit errors : {self.kv_audit_failures}",
                f"kv final clean  : {self.kv_final_clean}",
            ]
        if self.migration_injections:
            lines += [
                f"mig injections  : {self.migration_injections} ("
                + ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(self.migration_crashes_by_site.items())
                )
                + ")",
                f"mig recovery    : {self.migration_rolled_back} rolled back, "
                f"{self.migration_rolled_forward} rolled forward",
                f"torn mappings   : {self.torn_mappings}",
                f"mig audit errors: {self.migration_audit_failures}",
                f"mig final clean : {self.migration_final_clean}",
            ]
        lines.append(f"verdict         : {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


@dataclass
class _Live:
    tensor: PimTensor
    data: np.ndarray
    crc: int


def _audit(
    system: PimSystem,
    live: List[_Live],
    pim: PimConfig,
    report: CrashReport,
    label: str,
) -> None:
    """Check the recovered state against the live-tensor ground truth."""
    table = system.controller.table

    for entry in live:
        findings = verify_pim_mapping(entry.tensor.mapping, system.org, pim)
        if findings:
            report.verifier_findings += 1
            report.failures.append(
                f"{label}: verifier found {len(findings)} issue(s) on "
                f"map_id {entry.tensor.map_id}"
            )

    expected = Counter(entry.tensor.map_id for entry in live)
    expected[0] += 1  # the conventional mapping's baseline reference
    actual = table.refcounts()
    if dict(expected) != dict(actual):
        report.refcount_mismatches += 1
        report.failures.append(f"{label}: refcounts {actual} != expected {dict(expected)}")
    leaked = set(table.live_ids()) - {entry.tensor.map_id for entry in live} - {0}
    if leaked:
        report.leaked_map_ids += len(leaked)
        report.failures.append(f"{label}: leaked MapIDs {sorted(leaked)}")

    expected_vas = {entry.tensor.va for entry in live}
    actual_vas = set(system.space.areas.keys())
    if expected_vas != actual_vas:
        report.area_mismatches += 1
        report.failures.append(
            f"{label}: mapped areas {sorted(actual_vas)} != {sorted(expected_vas)}"
        )

    for entry in live:
        loaded = entry.tensor.load(entry.data.dtype)
        if zlib.crc32(loaded.tobytes()) != entry.crc:
            report.crc_mismatches += 1
            report.failures.append(
                f"{label}: data CRC mismatch on map_id {entry.tensor.map_id}"
            )


def _run_kv_campaign(report: CrashReport, kv_injections: int, seed: int) -> None:
    """Seeded crash sweep over the KV block pool's journal.

    Uses its own :class:`MapJournal` and :class:`FaultInjector` (seeded
    ``seed + 1``) so the MapID campaign above reproduces byte-identically
    whether or not this runs.  After every recovery the pool is audited
    and its refcounts reconciled against the held refs — any block alive
    without a holder is a leaked refcount."""
    journal = MapJournal()
    injector = FaultInjector(seed + 1)
    journal.fault_hook = injector
    pool = BlockPool(8, KvSpec(block_tokens=4, kv_dim=128), journal=journal)
    rng = random.Random(seed + 1)
    held: List[BlockRef] = []

    def kv_audit(label: str) -> None:
        violations = pool.audit()
        if violations:
            report.kv_audit_failures += 1
            report.failures.append(f"{label}: pool audit: {violations[0]}")
        expected = {ref.block_id: 1 for ref in held}
        actual = pool.refcounts()
        if expected != actual:
            leaked = [
                bid for bid, n in actual.items() if expected.get(bid, 0) != n
            ]
            report.kv_leaked_refcounts += max(len(leaked), 1)
            report.failures.append(
                f"{label}: live refcounts {actual} != held {expected}"
            )

    for index in range(kv_injections):
        site = KV_CRASH_SITES[index % len(KV_CRASH_SITES)]
        op = site.split(":", 1)[0]
        label = f"kv injection {index} site {site}"

        # stage the pool for the op (no crash armed yet)
        if op == "kvalloc" and pool.free_blocks == 0:
            pool.free(held.pop(rng.randrange(len(held))))
        if op == "kvfree" and not held:
            held.append(pool.alloc().ref)

        injector.schedule_crash(site)
        crashed = False
        try:
            if op == "kvalloc":
                held.append(pool.alloc().ref)
            else:  # kvfree: the holder drops its ref before the call, so
                # a crash mid-free must roll forward, never resurrect it
                ref = held.pop(rng.randrange(len(held)))
                pool.free(ref)
        except InjectedCrash:
            crashed = True
        injector._pending_crash = None  # disarm whatever did not fire
        if not crashed:
            report.failures.append(f"{label}: armed crash never fired")
            continue
        report.kv_injections += 1
        report.kv_crashes_by_site[site] = (
            report.kv_crashes_by_site.get(site, 0) + 1
        )

        recovery = recover_pool(pool)
        report.kv_rolled_back += recovery.rolled_back
        report.kv_rolled_forward += recovery.rolled_forward
        report.kv_no_ops += sum(
            1 for a in recovery.actions if a.resolution == "no-op"
        )
        kv_audit(label)
        journal.truncate_committed()

    for ref in held:
        pool.free(ref)
    held.clear()
    report.kv_final_clean = pool.used == 0 and not pool.audit()


def _run_migration_campaign(
    report: CrashReport, migration_injections: int, seed: int
) -> None:
    """Seeded crash sweep over two-phase MIGRATE transactions.

    Runs on its own :class:`~repro.adaptive.arena.AdaptiveArena` with its
    own :class:`FaultInjector` (seeded ``seed + 2``), so the MapID and KV
    campaigns reproduce byte-identically whether or not this runs.  Each
    injection picks a page range, a target MapID, and a crash site —
    varying the ``after=`` depth on the per-page and cleanup sites so the
    crash lands at every stage of the PTE walk — then recovers and audits
    the **never-torn invariant**: every page of the migrated range
    carries either its old mapping or the new one, uniformly, with
    refcounts, areas, and the arena CRC reconciled (the AD003 audit)."""
    from repro.adaptive.arena import AdaptiveArena

    arena = AdaptiveArena(seed=seed + 2, name="chaos/arena")
    injector = FaultInjector(seed + 2).attach(arena.system)
    rng = random.Random(seed + 2)
    n_pages = arena.n_pages

    for index in range(migration_injections):
        site = MIGRATE_CRASH_SITES[index % len(MIGRATE_CRASH_SITES)]
        page_start = rng.randrange(n_pages)
        page_count = rng.randrange(1, n_pages - page_start + 1)
        in_range = set(arena.page_k[page_start:page_start + page_count])
        target_k = rng.choice(
            [k for k in range(arena.max_map_id + 1) if k not in in_range]
        )
        # vary the crash depth on the per-page site, so the PTE walk dies
        # on every possible page (cleanup fires once per release plus a
        # final time, but a range migration may have zero releases, so
        # only depth 0 is always armed safely there)
        after = rng.randrange(page_count) if site == "migrate:page" else 0
        label = (
            f"migration injection {index} site {site} after={after} "
            f"pages [{page_start}, {page_start + page_count}) -> k={target_k}"
        )

        before_slots = arena.system.space.area_page_map_ids(arena.tensor.va)
        injector.schedule_crash(site, after=after)
        crashed = False
        try:
            arena.system.allocator.migrate_pages(
                arena.tensor, target_k,
                page_start=page_start, page_count=page_count,
            )
        except InjectedCrash:
            crashed = True
        injector._pending_crash = None  # disarm whatever did not fire
        if not crashed:
            report.failures.append(f"{label}: armed crash never fired")
            continue
        report.migration_injections += 1
        report.migration_crashes_by_site[site] = (
            report.migration_crashes_by_site.get(site, 0) + 1
        )

        recovery = arena.system.recover()
        action = next((a for a in recovery.actions if a.op == "migrate"), None)
        if action is None:
            report.migration_audit_failures += 1
            report.failures.append(f"{label}: recovery saw no migrate txn")
            continue
        forward = action.resolution == "rolled-forward"
        if forward:
            report.migration_rolled_forward += 1
            for page in range(page_start, page_start + page_count):
                arena.page_k[page] = target_k
        else:
            report.migration_rolled_back += 1

        # never-torn: outside the range nothing moved; inside, either
        # every page kept its old slot or every page carries the one
        # slot the recovery promoted
        after_slots = arena.system.space.area_page_map_ids(arena.tensor.va)
        expected = list(before_slots)
        if forward:
            promoted = action.detail["promoted_map_id"]
            expected[page_start:page_start + page_count] = [promoted] * page_count
        if after_slots != expected:
            report.torn_mappings += 1
            report.failures.append(
                f"{label}: torn mapping after "
                f"{action.resolution}: slots {after_slots} != {expected}"
            )
        problems = arena.verify(
            pages=range(page_start, page_start + page_count)
        )
        if problems:
            report.migration_audit_failures += 1
            report.failures.append(f"{label}: {problems[0]}")
        arena.system.journal.truncate_committed()

    report.migration_final_clean = not arena.verify()
    injector.detach()


def run_crash_campaign(
    n_injections: int = 500,
    seed: int = 0,
    org: Optional[DramOrganization] = None,
    pim: Optional[PimConfig] = None,
    kv_injections: int = 0,
    migration_injections: int = 0,
) -> CrashReport:
    """Run *n_injections* seeded crash injections; see the module docstring.

    With ``kv_injections > 0`` an independent sweep over the KV block
    pool's :data:`~repro.kvcache.pool.KV_CRASH_SITES` runs afterwards
    (see :func:`_run_kv_campaign`); with ``migration_injections > 0``, a
    sweep over the adaptive arena's two-phase MIGRATE transactions
    (:data:`~repro.core.journal.MIGRATE_CRASH_SITES`; see
    :func:`_run_migration_campaign`)."""
    if n_injections < 0:
        raise ValueError("n_injections must be >= 0")
    if kv_injections < 0:
        raise ValueError("kv_injections must be >= 0")
    if migration_injections < 0:
        raise ValueError("migration_injections must be >= 0")
    if n_injections == 0 and kv_injections == 0 and migration_injections == 0:
        raise ValueError("at least one injection count must be positive")
    campaign_org = org if org is not None else TINY_CAMPAIGN_ORG
    if pim is None:
        from repro.pim.config import aim_config_for

        pim = aim_config_for(campaign_org)
    system = PimSystem.build(campaign_org, pim, functional=True, journal=True)
    injector = FaultInjector(seed).attach(system)
    rng = random.Random(seed)
    data_rng = np.random.default_rng(seed)

    report = CrashReport(seed=seed)
    live: List[_Live] = []

    def fresh_tensor() -> _Live:
        rows, cols = _SHAPES[rng.randrange(len(_SHAPES))]
        tensor = system.pimalloc(MatrixConfig(rows=rows, cols=cols, dtype_bytes=2))
        data = data_rng.integers(0, 1 << 16, size=(rows, cols), dtype=np.uint16)
        tensor.store(data)
        return _Live(tensor=tensor, data=data, crc=zlib.crc32(data.tobytes()))

    for index in range(n_injections):
        site = CRASH_SITES[index % len(CRASH_SITES)]
        op = site.split(":", 1)[0]
        label = f"injection {index} site {site}"

        # stage the pool for the op (no crashes armed yet)
        if op == "alloc" and len(live) >= _MAX_LIVE:
            victim = live.pop(rng.randrange(len(live)))
            victim.tensor.free()
        if op in ("free", "switch") and not live:
            live.append(fresh_tensor())

        injector.schedule_crash(site)
        crashed = False
        try:
            if op == "alloc":
                rows, cols = _SHAPES[rng.randrange(len(_SHAPES))]
                system.pimalloc(MatrixConfig(rows=rows, cols=cols, dtype_bytes=2))
            elif op == "free":
                live[-1].tensor.free()
            else:  # switch
                system.allocator.switch_mapping(live[-1].tensor)
        except InjectedCrash:
            crashed = True
        if not crashed:
            report.failures.append(f"{label}: armed crash never fired")
            continue
        report.n_injections += 1
        report.crashes_by_site[site] = report.crashes_by_site.get(site, 0) + 1

        recovery = system.recover()
        report.rolled_back += recovery.rolled_back
        report.rolled_forward += recovery.rolled_forward
        report.no_ops += sum(1 for a in recovery.actions if a.resolution == "no-op")

        # reconcile the live pool with what recovery decided
        if op == "free":
            # frees roll forward: the tensor is gone either way
            live.pop()
        elif op == "switch":
            entry = live[-1]
            action = next(
                (a for a in recovery.actions if a.op == "switch"), None
            )
            if action is not None and action.resolution == "rolled-forward":
                new_map_id = action.detail["new_map_id"]
                entry.tensor.map_id = new_map_id
                entry.tensor.mapping = system.controller.table[new_map_id]
            # rolled-back: the old handle is still accurate
        # alloc rolled back: nothing to add

        _audit(system, live, pim, report, label)
        if system.journal is not None:
            system.journal.truncate_committed()  # log compaction each round

    # teardown must reach the pristine state: no areas, only the
    # conventional mapping left with its baseline reference
    for entry in live:
        entry.tensor.free()
    live.clear()
    table = system.controller.table
    report.final_clean = (
        not system.space.areas
        and table.refcounts() == {0: 1}
    )
    injector.detach()

    if kv_injections:
        _run_kv_campaign(report, kv_injections, seed)
    if migration_injections:
        _run_migration_campaign(report, migration_injections, seed)
    return report
