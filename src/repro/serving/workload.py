"""Multi-tenant request streams for the serving runtime.

A workload is a time-ordered list of :class:`Request`: each belongs to a
tenant (an app sharing the device NPU/PIM — assistant chat, keyboard
autocompletion, ...), carries its token counts sampled from the tenant's
dataset model, and a per-request **deadline budget** on TTFT.

Arrivals are Poisson per tenant (exponential inter-arrival times).  All
randomness — arrival jitter and length sampling — flows through **one**
``random.Random(seed)``, the same discipline as
:class:`~repro.reliability.faults.FaultInjector`: one seed reproduces a
whole serving run, byte for byte.

Tenants with ``mean_turns > 1`` emit **multi-turn conversations**: each
arrival seeds a conversation whose follow-up turns (geometric count,
exponential think-time gaps) accumulate context — turn *k* prefills the
whole history plus the new user tokens, which is exactly the traffic
the paged KV cache's prefix sharing is for (see repro.kvcache).  The
default ``mean_turns = 1.0`` takes none of the extra draws, so existing
seeded workloads reproduce byte-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine.policies import POLICIES
from repro.llm.datasets import ALPACA_LIKE, DatasetSpec, QueryTrace

__all__ = ["Request", "TenantSpec", "poisson_workload", "trace_workload"]

#: hard cap on the geometric turn count, so a pathological stream cannot
#: emit an unbounded conversation
MAX_TURNS = 32


@dataclass(frozen=True)
class TenantSpec:
    """One request source sharing the serving stack."""

    name: str
    dataset: DatasetSpec = ALPACA_LIKE
    policy: str = "facil"
    qps: float = 50.0  # mean arrival rate (requests per second)
    deadline_ms: float = 250.0  # TTFT budget per request
    #: mean turns per conversation (geometric); 1.0 = single-query
    #: tenant, which draws nothing extra from the stream
    mean_turns: float = 1.0
    #: mean think time between a response and the next user turn
    think_time_ms: float = 2000.0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; known: {POLICIES}")
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.mean_turns < 1.0:
            raise ValueError("mean_turns must be >= 1")
        if self.think_time_ms <= 0:
            raise ValueError("think_time_ms must be positive")


@dataclass(frozen=True)
class Request:
    """One request as seen by the admission queue."""

    req_id: int
    tenant: str
    policy: str
    arrival_ns: float
    prefill_tokens: int
    decode_tokens: int
    deadline_ns: float  # TTFT budget, relative to arrival
    #: conversation identity (dense per workload) for multi-turn tenants;
    #: None for single-query requests.  The KV scheduler keys prefix
    #: sharing on this.
    conversation_id: Optional[int] = None
    #: which turn of the conversation this is (0 = opening turn)
    turn_index: int = 0
    #: tokens of conversation history included in ``prefill_tokens``
    context_tokens: int = 0

    @property
    def deadline_abs_ns(self) -> float:
        return self.arrival_ns + self.deadline_ns


def poisson_workload(
    tenants: Sequence[TenantSpec],
    duration_ms: float,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Request]:
    """Sample a merged multi-tenant Poisson arrival stream.

    Tenants are drawn in the given order from a single stream, so the
    result is fully determined by (*tenants*, *duration_ms*, *seed*).
    Conversations whose opening turn arrives inside the horizon keep
    their follow-up turns even past it (truncating mid-conversation
    would bias the turn-count distribution toward the horizon edge).

    A tenant dataset exposing ``sample_at(rng, t_ns)`` (e.g.
    :class:`~repro.llm.datasets.DriftingDatasetSpec`) is sampled at each
    request's arrival time, so non-stationary workloads drift along the
    trace; plain :class:`~repro.llm.datasets.DatasetSpec` tenants are
    unaffected.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    stream = rng if rng is not None else random.Random(seed)
    horizon_ns = duration_ms * 1e6
    requests: List[Request] = []
    conversation_id = 0
    for tenant in tenants:
        rate_per_ns = tenant.qps / 1e9
        multi_turn = tenant.mean_turns > 1.0
        # geometric continuation probability with the given mean
        p_more = 1.0 - 1.0 / tenant.mean_turns if multi_turn else 0.0
        think_rate_per_ns = 1.0 / (tenant.think_time_ms * 1e6)
        sample_at = getattr(tenant.dataset, "sample_at", None)

        def draw(at_ns: float) -> QueryTrace:
            if sample_at is not None:
                return sample_at(stream, at_ns)
            return tenant.dataset.sample_one(stream)

        t = stream.expovariate(rate_per_ns)
        while t < horizon_ns:
            trace = draw(t)
            if not multi_turn:
                requests.append(
                    Request(
                        req_id=-1,  # assigned after the merge sort below
                        tenant=tenant.name,
                        policy=tenant.policy,
                        arrival_ns=t,
                        prefill_tokens=trace.prefill_tokens,
                        decode_tokens=trace.decode_tokens,
                        deadline_ns=tenant.deadline_ms * 1e6,
                    )
                )
            else:
                conv = conversation_id
                conversation_id += 1
                turn_t = t
                context = 0
                turn = 0
                while True:
                    requests.append(
                        Request(
                            req_id=-1,
                            tenant=tenant.name,
                            policy=tenant.policy,
                            arrival_ns=turn_t,
                            prefill_tokens=context + trace.prefill_tokens,
                            decode_tokens=trace.decode_tokens,
                            deadline_ns=tenant.deadline_ms * 1e6,
                            conversation_id=conv,
                            turn_index=turn,
                            context_tokens=context,
                        )
                    )
                    context += trace.prefill_tokens + trace.decode_tokens
                    turn += 1
                    if turn >= MAX_TURNS or stream.random() >= p_more:
                        break
                    # think time to the next user turn, then a fresh draw
                    turn_t += stream.expovariate(think_rate_per_ns)
                    trace = draw(turn_t)
            t += stream.expovariate(rate_per_ns)
    requests.sort(key=lambda r: (r.arrival_ns, r.tenant))
    return [
        Request(
            req_id=i,
            tenant=r.tenant,
            policy=r.policy,
            arrival_ns=r.arrival_ns,
            prefill_tokens=r.prefill_tokens,
            decode_tokens=r.decode_tokens,
            deadline_ns=r.deadline_ns,
            conversation_id=r.conversation_id,
            turn_index=r.turn_index,
            context_tokens=r.context_tokens,
        )
        for i, r in enumerate(requests)
    ]


def trace_workload(
    traces: Sequence[QueryTrace],
    tenant: TenantSpec,
    qps: Optional[float] = None,
) -> List[Request]:
    """Replay a fixed length trace at uniform spacing (no randomness) —
    for experiments that want the queueing behaviour isolated from
    arrival jitter."""
    if not traces:
        raise ValueError("need at least one trace")
    rate = qps if qps is not None else tenant.qps
    if rate <= 0:
        raise ValueError("qps must be positive")
    gap_ns = 1e9 / rate
    return [
        Request(
            req_id=i,
            tenant=tenant.name,
            policy=tenant.policy,
            arrival_ns=i * gap_ns,
            prefill_tokens=trace.prefill_tokens,
            decode_tokens=trace.decode_tokens,
            deadline_ns=tenant.deadline_ms * 1e6,
        )
        for i, trace in enumerate(traces)
    ]
