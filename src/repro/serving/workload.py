"""Multi-tenant request streams for the serving runtime.

A workload is a time-ordered list of :class:`Request`: each belongs to a
tenant (an app sharing the device NPU/PIM — assistant chat, keyboard
autocompletion, ...), carries its token counts sampled from the tenant's
dataset model, and a per-request **deadline budget** on TTFT.

Arrivals are Poisson per tenant (exponential inter-arrival times).  All
randomness — arrival jitter and length sampling — flows through **one**
``random.Random(seed)``, the same discipline as
:class:`~repro.reliability.faults.FaultInjector`: one seed reproduces a
whole serving run, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine.policies import POLICIES
from repro.llm.datasets import ALPACA_LIKE, DatasetSpec, QueryTrace

__all__ = ["Request", "TenantSpec", "poisson_workload", "trace_workload"]


@dataclass(frozen=True)
class TenantSpec:
    """One request source sharing the serving stack."""

    name: str
    dataset: DatasetSpec = ALPACA_LIKE
    policy: str = "facil"
    qps: float = 50.0  # mean arrival rate (requests per second)
    deadline_ms: float = 250.0  # TTFT budget per request

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; known: {POLICIES}")
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")


@dataclass(frozen=True)
class Request:
    """One request as seen by the admission queue."""

    req_id: int
    tenant: str
    policy: str
    arrival_ns: float
    prefill_tokens: int
    decode_tokens: int
    deadline_ns: float  # TTFT budget, relative to arrival

    @property
    def deadline_abs_ns(self) -> float:
        return self.arrival_ns + self.deadline_ns


def poisson_workload(
    tenants: Sequence[TenantSpec],
    duration_ms: float,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Request]:
    """Sample a merged multi-tenant Poisson arrival stream.

    Tenants are drawn in the given order from a single stream, so the
    result is fully determined by (*tenants*, *duration_ms*, *seed*).
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    stream = rng if rng is not None else random.Random(seed)
    horizon_ns = duration_ms * 1e6
    requests: List[Request] = []
    for tenant in tenants:
        rate_per_ns = tenant.qps / 1e9
        t = stream.expovariate(rate_per_ns)
        while t < horizon_ns:
            trace = tenant.dataset.sample_one(stream)
            requests.append(
                Request(
                    req_id=-1,  # assigned after the merge sort below
                    tenant=tenant.name,
                    policy=tenant.policy,
                    arrival_ns=t,
                    prefill_tokens=trace.prefill_tokens,
                    decode_tokens=trace.decode_tokens,
                    deadline_ns=tenant.deadline_ms * 1e6,
                )
            )
            t += stream.expovariate(rate_per_ns)
    requests.sort(key=lambda r: (r.arrival_ns, r.tenant))
    return [
        Request(
            req_id=i,
            tenant=r.tenant,
            policy=r.policy,
            arrival_ns=r.arrival_ns,
            prefill_tokens=r.prefill_tokens,
            decode_tokens=r.decode_tokens,
            deadline_ns=r.deadline_ns,
        )
        for i, r in enumerate(requests)
    ]


def trace_workload(
    traces: Sequence[QueryTrace],
    tenant: TenantSpec,
    qps: Optional[float] = None,
) -> List[Request]:
    """Replay a fixed length trace at uniform spacing (no randomness) —
    for experiments that want the queueing behaviour isolated from
    arrival jitter."""
    if not traces:
        raise ValueError("need at least one trace")
    rate = qps if qps is not None else tenant.qps
    if rate <= 0:
        raise ValueError("qps must be positive")
    gap_ns = 1e9 / rate
    return [
        Request(
            req_id=i,
            tenant=tenant.name,
            policy=tenant.policy,
            arrival_ns=i * gap_ns,
            prefill_tokens=trace.prefill_tokens,
            decode_tokens=trace.decode_tokens,
            deadline_ns=tenant.deadline_ms * 1e6,
        )
        for i, trace in enumerate(traces)
    ]
