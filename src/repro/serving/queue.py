"""Bounded admission queue with pluggable load-shedding policies.

The queue sits between arrivals and the engine; its capacity is the
system's backpressure bound — occupancy can never exceed it, whatever
the offered load.  Three shedding policies:

* ``reject`` — a full queue turns the arrival away immediately (fail
  fast; the client sees the rejection at arrival time, not after a
  hopeless wait);
* ``degrade`` — occupancy at or above the *degrade watermark* admits the
  request flagged for **degraded service** (the runtime clips its decode
  budget), and a full queue still rejects — latency is shed before
  requests are;
* ``drop-oldest`` — a full queue evicts its oldest waiter to admit the
  newcomer (freshness-first: half-served staleness is worth less than a
  fresh request; the evicted waiter has also burned the most deadline).

Occupancy is accounted **time-weighted**: every mutation first advances
an occupancy integral, so ``mean_occupancy`` is exact over virtual time,
not a sample average.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.serving.workload import Request

__all__ = ["AdmissionQueue", "QueueStats", "SHED_POLICIES"]

SHED_POLICIES = ("reject", "degrade", "drop-oldest")

#: admission verdicts returned by :meth:`AdmissionQueue.offer`
ADMITTED = "admitted"
ADMITTED_DEGRADED = "admitted-degraded"
REJECTED = "rejected"


@dataclass
class QueueStats:
    """Backpressure accounting (all counters cumulative)."""

    offered: int = 0
    admitted: int = 0
    admitted_degraded: int = 0
    rejected: int = 0
    dropped: int = 0  # drop-oldest evictions
    peak_occupancy: int = 0
    #: integral of occupancy over virtual time (requests * ns)
    occupancy_ns: float = 0.0
    #: total waiting time accumulated by popped requests
    wait_ns: float = 0.0

    @property
    def shed(self) -> int:
        return self.rejected + self.dropped

    def mean_occupancy(self, elapsed_ns: float) -> float:
        return self.occupancy_ns / elapsed_ns if elapsed_ns > 0 else 0.0


class AdmissionQueue:
    """FIFO admission queue bounded at *capacity*."""

    def __init__(
        self,
        capacity: int,
        policy: str = "reject",
        degrade_watermark: Optional[int] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if policy not in SHED_POLICIES:
            raise ValueError(f"unknown shed policy {policy!r}; known: {SHED_POLICIES}")
        if policy == "degrade":
            watermark = (
                degrade_watermark if degrade_watermark is not None else capacity // 2
            )
            if not 0 < watermark <= capacity:
                raise ValueError("need 0 < degrade_watermark <= capacity")
            self.degrade_watermark: Optional[int] = watermark
        else:
            self.degrade_watermark = None
        self.capacity = capacity
        self.policy = policy
        self.stats = QueueStats()
        self._waiting: Deque[Tuple[Request, float]] = deque()  # (request, enq_ns)
        self._clock_ns = 0.0

    # -- occupancy accounting ------------------------------------------------

    def _advance(self, now_ns: float) -> None:
        if now_ns > self._clock_ns:
            self.stats.occupancy_ns += len(self._waiting) * (now_ns - self._clock_ns)
            self._clock_ns = now_ns

    def __len__(self) -> int:
        return len(self._waiting)

    def peek(self) -> Optional[Request]:
        return self._waiting[0][0] if self._waiting else None

    # -- admission -----------------------------------------------------------

    def offer(
        self, request: Request, now_ns: Optional[float] = None
    ) -> Tuple[str, Optional[Request]]:
        """Offer one arrival; returns ``(verdict, evicted)``.

        *verdict* is ``"admitted"``, ``"admitted-degraded"``, or
        ``"rejected"``; *evicted* is the waiter displaced under
        ``drop-oldest`` (None otherwise).
        """
        now = request.arrival_ns if now_ns is None else now_ns
        self._advance(now)
        self.stats.offered += 1
        evicted: Optional[Request] = None
        occupancy = len(self._waiting)

        if occupancy >= self.capacity:
            if self.policy == "drop-oldest":
                evicted = self._waiting.popleft()[0]
                self.stats.dropped += 1
            else:  # reject / degrade both refuse when full
                self.stats.rejected += 1
                return REJECTED, None

        verdict = ADMITTED
        if (
            self.policy == "degrade"
            and self.degrade_watermark is not None
            and len(self._waiting) >= self.degrade_watermark
        ):
            verdict = ADMITTED_DEGRADED
            self.stats.admitted_degraded += 1
        self._waiting.append((request, now))
        self.stats.admitted += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._waiting))
        return verdict, evicted

    def pop(self, now_ns: float) -> Optional[Request]:
        """Dequeue the oldest waiter at virtual time *now_ns*."""
        self._advance(now_ns)
        if not self._waiting:
            return None
        request, enqueued_ns = self._waiting.popleft()
        self.stats.wait_ns += max(0.0, now_ns - enqueued_ns)
        return request

    def drain(self, now_ns: float) -> List[Request]:
        """Remove and return every waiter (end-of-run cleanup)."""
        self._advance(now_ns)
        remaining = [r for r, _ in self._waiting]
        self._waiting.clear()
        return remaining
