"""Serving-grade robustness on top of the engine stack (extension).

The paper prices single queries; an on-device assistant is a *service*:
multi-tenant request streams, bounded queues, deadlines, and partial
failures.  This package adds a discrete-event serving runtime over the
:class:`~repro.engine.policies.InferenceEngine` phase costs:

* :mod:`repro.serving.workload` — seeded Poisson / trace request streams;
* :mod:`repro.serving.queue` — bounded admission queue with pluggable
  load-shedding policies and backpressure accounting;
* :mod:`repro.serving.breaker` — circuit breakers over the reliability
  health monitor, plus a brown-out controller for PIM saturation;
* :mod:`repro.serving.runtime` — the event loop, deadline enforcement at
  phase boundaries, retry pricing, and the SLO report;
* :mod:`repro.serving.crashes` — the crash-recovery campaign exercising
  the write-ahead MapID journal (and, with ``kv_injections``, the KV
  block pool's journal).

With ``ServingConfig.kv_blocks > 0`` the runtime delegates to the
KV-aware continuous-batching scheduler in
:mod:`repro.kvcache.scheduler`, which admits against a bounded paged
KV block pool with prefix sharing (see docs/KVCACHE.md).

See docs/SERVING.md for the queueing model and the recovery protocol.
"""

from repro.serving.breaker import BreakerState, BrownoutController, CircuitBreaker
from repro.serving.crashes import CrashReport, run_crash_campaign
from repro.serving.queue import SHED_POLICIES, AdmissionQueue, QueueStats
from repro.serving.runtime import (
    RequestOutcome,
    ServingConfig,
    ServingReport,
    ServingRuntime,
    sustainable_qps,
)
from repro.serving.workload import Request, TenantSpec, poisson_workload, trace_workload

__all__ = [
    "AdmissionQueue",
    "BreakerState",
    "BrownoutController",
    "CircuitBreaker",
    "CrashReport",
    "QueueStats",
    "Request",
    "RequestOutcome",
    "SHED_POLICIES",
    "ServingConfig",
    "ServingReport",
    "ServingRuntime",
    "TenantSpec",
    "poisson_workload",
    "run_crash_campaign",
    "sustainable_qps",
    "trace_workload",
]
