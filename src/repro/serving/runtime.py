"""The discrete-event serving runtime and its SLO report.

The simulation runs in virtual nanoseconds over **two resources** — the
SoC processor and the PIM units — each a single-server timeline
(``free_at``).  A request's life:

    arrival --offer--> [admission queue] --pop--> prefill --> decode

with the deadline (a TTFT budget) enforced at the two phase boundaries:

* **admission -> prefill**: a request whose service would only start
  after its deadline is shed untouched (no resource is burned on it);
* **prefill -> decode**: a request whose first token lands past the
  deadline stops there — the client has given up, decode is not run.

Transient faults hit phase attempts at per-component configured rates
(seeded through the run's single ``random.Random``).  A faulted attempt
burns its full phase on the resource (worst case: the fault surfaces at
the end), then the request backs off ``base * 2^attempt`` scaled by
seeded jitter and retries, up to ``max_retries`` — beyond that it is
aborted.  Every outcome feeds the circuit breakers; the brown-out
controller watches the PIM backlog and migrates decode to the SoC while
saturated (and back under the low watermark).

The :class:`ServingReport` aggregates the run: per-status counts, TTFT /
TTLT percentiles of served requests, goodput, shed rate, SLO attainment,
queue backpressure accounting, breaker transitions, and brown-out
windows.  ``to_dict`` is the machine-readable form the CLI writes to
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.replay import BarrierRecorder
    from repro.telemetry import Telemetry

from repro.engine.metrics import LatencyStats
from repro.engine.policies import InferenceEngine, decode_on_pim
from repro.reliability.degrade import RETRY_BASE_BACKOFF_NS, HealthMonitor
from repro.serving.breaker import BrownoutController, CircuitBreaker
from repro.serving.queue import AdmissionQueue, QueueStats
from repro.serving.workload import Request, TenantSpec

__all__ = [
    "RequestOutcome",
    "ServingConfig",
    "ServingReport",
    "ServingRuntime",
    "sustainable_qps",
]

#: terminal request statuses
SERVED = "served"
SERVED_DEGRADED = "served-degraded"
REJECTED = "rejected"
DROPPED = "dropped"
TIMED_OUT = "timed-out"
ABORTED = "aborted"


@dataclass(frozen=True)
class ServingConfig:
    """Everything that shapes a serving run except the workload itself."""

    seed: int = 0
    queue_capacity: int = 8
    shed_policy: str = "reject"
    degrade_watermark: Optional[int] = None
    #: decode budget for degraded admissions (tokens)
    degraded_decode_tokens: int = 8
    max_retries: int = 3
    base_backoff_ns: float = RETRY_BASE_BACKOFF_NS
    #: backoff jitter amplitude in [0, 1): each wait is scaled by
    #: ``1 + jitter * uniform(-1, 1)`` from the run's seeded stream
    jitter: float = 0.0
    #: transient fault probability per phase attempt, by component
    pim_fault_rate: float = 0.0
    mapping_fault_rate: float = 0.0
    soc_fault_rate: float = 0.0
    #: circuit breaker tuning (see repro.serving.breaker)
    breaker_threshold: float = 0.5
    breaker_min_observations: int = 4
    breaker_cooldown_ns: float = 5e6
    breaker_probe_quota: int = 2
    #: brown-out watermarks on the PIM backlog (ns of queued work; decode
    #: phases run seconds, so saturation means several queued)
    brownout_high_ns: float = 5e9
    brownout_low_ns: float = 1e9
    #: paged KV cache: a positive ``kv_blocks`` switches :meth:`run` to
    #: the continuous-batching scheduler over a bounded block pool
    #: (see repro.kvcache.scheduler); 0 keeps the legacy loop
    kv_blocks: int = 0
    block_tokens: int = 16
    prefix_sharing: bool = True
    #: KV pressure governor watermarks (fraction of the pool that is
    #: live and unreclaimable; admissions degrade while above)
    kv_pressure_high: float = 0.9
    kv_pressure_low: float = 0.7
    #: adaptive remapping (see repro.adaptive): ``off`` keeps the run
    #: byte-identical to before the feature existed; ``static`` prices
    #: the MapID/workload mismatch penalty but never migrates (the
    #: static-selector baseline); ``active`` closes the loop — canary
    #: migrations, promotion, rollback.  Legacy loop only (kv_blocks=0).
    adaptive: str = "off"
    adaptive_window: int = 32
    adaptive_canary_window: int = 16
    adaptive_cooldown: int = 64
    adaptive_hysteresis: float = 2.0
    adaptive_canary_fraction: float = 0.25
    adaptive_max_migrations: int = 8
    adaptive_penalty_coeff: float = 0.05
    adaptive_slo_margin: float = 0.10
    #: forced-bad-advisor knob: pin the recommendation to this MapID
    #: (bypasses the cost/benefit gate; the canary must catch it)
    adaptive_pinned_map_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for rate in (self.pim_fault_rate, self.mapping_fault_rate, self.soc_fault_rate):
            if not 0.0 <= rate < 1.0:
                raise ValueError("fault rates must be in [0, 1)")
        if self.degraded_decode_tokens <= 0:
            raise ValueError("degraded_decode_tokens must be positive")
        if self.kv_blocks < 0:
            raise ValueError("kv_blocks must be >= 0")
        if self.block_tokens <= 0:
            raise ValueError("block_tokens must be positive")
        if not 0.0 <= self.kv_pressure_low < self.kv_pressure_high <= 1.0:
            raise ValueError(
                "kv pressure watermarks must satisfy 0 <= low < high <= 1"
            )
        if self.adaptive not in ("off", "static", "active"):
            raise ValueError(
                f"adaptive must be 'off', 'static', or 'active', "
                f"got {self.adaptive!r}"
            )
        if self.adaptive != "off" and self.kv_blocks > 0:
            raise ValueError(
                "adaptive remapping runs on the legacy loop only; "
                "it cannot be combined with kv_blocks > 0"
            )


@dataclass(frozen=True)
class RequestOutcome:
    """Terminal disposition of one request."""

    req_id: int
    tenant: str
    status: str
    policy_requested: str
    policy_served: str = ""
    wait_ns: float = 0.0
    ttft_ns: float = 0.0  # 0 when no first token was produced
    ttlt_ns: float = 0.0  # 0 when the request did not complete
    decode_tokens_served: int = 0
    retries: int = 0
    backoff_ns: float = 0.0
    fallbacks: Tuple[str, ...] = ()

    @property
    def served(self) -> bool:
        return self.status in (SERVED, SERVED_DEGRADED)


@dataclass(frozen=True)
class _Route:
    """Resource plan for one request, fixed at pop time.

    Decode placement is finalized later, at the prefill -> decode
    boundary, where both resource timelines are known (see
    :meth:`ServingRuntime.run`)."""

    policy: str
    prefill_ns: float
    prefill_resource: str
    prefill_component: str
    pim_allowed: bool  # breaker verdict for this request
    brownout_active: bool
    fallbacks: Tuple[str, ...]


@dataclass
class ServingReport:
    """Aggregate outcome of one serving run."""

    config: ServingConfig
    outcomes: List[RequestOutcome] = field(default_factory=list)
    queue_stats: QueueStats = field(default_factory=QueueStats)
    duration_ns: float = 0.0
    breaker_transitions: Dict[str, List[Tuple[float, str, str]]] = field(
        default_factory=dict
    )
    #: per-breaker :meth:`CircuitBreaker.snapshot` at end of run — the
    #: auditable state/trip-count view fleet routing decisions rest on
    breaker_snapshots: Dict[str, Dict] = field(default_factory=dict)
    brownout_intervals: List[Tuple[float, float]] = field(default_factory=list)
    health: Dict[str, str] = field(default_factory=dict)
    #: KV-cache counters (block occupancy, evictions, preemptions,
    #: prefix hits, ...) when the run used the paged-KV scheduler
    kv: Optional[Dict] = None
    #: adaptive-remapping controller summary (state, migrations, events,
    #: final arena MapIDs) when the run had adaptive != "off"
    adaptive: Optional[Dict] = None
    #: per-workload accounting (speculative rounds, expert placement,
    #: co-residency interference) when the run was dispatched through
    #: ``repro.workloads``; None — and absent from :meth:`to_dict`, so
    #: chat reports stay byte-identical — otherwise
    workload: Optional[Dict] = None

    def _count(self, *statuses: str) -> int:
        return sum(1 for o in self.outcomes if o.status in statuses)

    @property
    def offered(self) -> int:
        return len(self.outcomes)

    @property
    def served(self) -> int:
        return self._count(SERVED, SERVED_DEGRADED)

    @property
    def served_degraded(self) -> int:
        return self._count(SERVED_DEGRADED)

    @property
    def rejected(self) -> int:
        return self._count(REJECTED)

    @property
    def dropped(self) -> int:
        return self._count(DROPPED)

    @property
    def timed_out(self) -> int:
        return self._count(TIMED_OUT)

    @property
    def aborted(self) -> int:
        return self._count(ABORTED)

    @property
    def unserved(self) -> int:
        """Admitted requests that never completed — the failure count the
        CLI gates its exit status on (shed requests are *decisions*, not
        failures; these are broken promises)."""
        return self.timed_out + self.aborted

    @property
    def shed_rate(self) -> float:
        return (self.rejected + self.dropped) / self.offered if self.offered else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of offered requests fully served within deadline (a
        served request met its TTFT budget by construction — the
        boundary check stops any that would not)."""
        return self.served / self.offered if self.offered else 0.0

    @property
    def goodput_qps(self) -> float:
        return self.served / (self.duration_ns / 1e9) if self.duration_ns else 0.0

    @property
    def ttft(self) -> LatencyStats:
        return LatencyStats.from_values([o.ttft_ns for o in self.outcomes if o.served])

    @property
    def ttlt(self) -> LatencyStats:
        return LatencyStats.from_values([o.ttlt_ns for o in self.outcomes if o.served])

    @property
    def ok(self) -> bool:
        return self.unserved == 0

    def to_dict(self) -> Dict:
        out: Dict = {
            "seed": self.config.seed,
            "shed_policy": self.config.shed_policy,
            "queue_capacity": self.config.queue_capacity,
            "duration_ms": self.duration_ns / 1e6,
            "offered": self.offered,
            "served": self.served,
            "served_degraded": self.served_degraded,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "timed_out": self.timed_out,
            "aborted": self.aborted,
            "unserved": self.unserved,
            "shed_rate": self.shed_rate,
            "slo_attainment": self.slo_attainment,
            "goodput_qps": self.goodput_qps,
            "ttft": self.ttft.to_dict(),
            "ttlt": self.ttlt.to_dict(),
            "queue": {
                "peak_occupancy": self.queue_stats.peak_occupancy,
                "mean_occupancy": self.queue_stats.mean_occupancy(self.duration_ns),
                "mean_wait_ms": (
                    self.queue_stats.wait_ns / self.queue_stats.admitted / 1e6
                    if self.queue_stats.admitted
                    else 0.0
                ),
            },
            "breakers": {
                name: [(t, a, b) for t, a, b in trans]
                for name, trans in self.breaker_transitions.items()
            },
            "breaker_snapshots": {
                name: dict(snap) for name, snap in self.breaker_snapshots.items()
            },
            "brownout": {
                "windows": len(self.brownout_intervals),
                "total_ms": sum(e - s for s, e in self.brownout_intervals) / 1e6,
            },
            "health": dict(self.health),
            "kv": dict(self.kv) if self.kv is not None else None,
            "adaptive": dict(self.adaptive) if self.adaptive is not None else None,
            "ok": self.ok,
        }
        if self.workload is not None:
            # Keyed only when present: a chat run's report must serialize
            # byte-identically whether or not repro.workloads is loaded.
            out["workload"] = dict(self.workload)
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        from repro.telemetry.render import render_text

        d = self.to_dict()
        header = (
            f"serving run: seed={d['seed']} shed={d['shed_policy']} "
            f"capacity={d['queue_capacity']} duration={d['duration_ms']:.1f} ms"
        )
        pairs = [
            ("offered", d["offered"]),
            ("served", f"{d['served']} ({d['served_degraded']} degraded)"),
            (
                "shed",
                f"{d['rejected']} rejected, {d['dropped']} dropped "
                f"(rate {d['shed_rate']:.3f})",
            ),
            (
                "unserved",
                f"{d['timed_out']} timed-out, {d['aborted']} aborted",
            ),
            ("SLO attainment", f"{d['slo_attainment']:.3f}"),
            ("goodput", f"{d['goodput_qps']:.1f} qps"),
            (
                "TTFT p50/p99",
                f"{d['ttft']['p50_ms']:.3f} / {d['ttft']['p99_ms']:.3f} ms",
            ),
            (
                "TTLT p50/p99",
                f"{d['ttlt']['p50_ms']:.3f} / {d['ttlt']['p99_ms']:.3f} ms",
            ),
            (
                "queue occupancy",
                f"peak {d['queue']['peak_occupancy']}, "
                f"mean {d['queue']['mean_occupancy']:.2f}, "
                f"mean wait {d['queue']['mean_wait_ms']:.3f} ms",
            ),
            (
                "brown-out",
                f"{d['brownout']['windows']} window(s), "
                f"{d['brownout']['total_ms']:.1f} ms total",
            ),
            (
                "breaker events",
                "; ".join(
                    f"{name}: " + ", ".join(f"{a}->{b}" for _, a, b in trans)
                    for name, trans in d["breakers"].items()
                    if trans
                )
                or "none",
            ),
        ]
        kv = d.get("kv")
        if kv:
            pairs += [
                (
                    "kv pool",
                    f"{kv['num_blocks']} blocks x "
                    f"{kv['block_tokens']} tokens, occupancy peak "
                    f"{kv['occupancy_peak']} / p99 {kv['occupancy_p99']:.1f}",
                ),
                (
                    "kv churn",
                    f"{kv['evictions']} evicted, "
                    f"{kv['preemptions']} preempted, {kv['cow_copies']} CoW, "
                    f"{kv['kv_rejections']} rejected, "
                    f"{kv['kv_clipped']} clipped, "
                    f"{kv['kv_degraded']} degraded",
                ),
                (
                    "prefix sharing",
                    f"hit rate {kv['prefix_hit_rate']:.3f} "
                    f"({kv['prefill_tokens_saved']} prefill tokens saved)"
                    if kv["prefix_sharing"]
                    else "disabled",
                ),
                (
                    "kv pressure",
                    f"{kv['pressure_windows']} window(s), "
                    f"{kv['pressure_total_ms']:.1f} ms total",
                ),
            ]
        workload = d.get("workload")
        if workload:
            shown = [
                f"{key} {value}"
                for key, value in workload.items()
                if key != "name" and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ]
            pairs.append(
                (f"workload [{workload.get('name', '?')}]", ", ".join(shown))
            )
        adaptive = d.get("adaptive")
        if adaptive:
            pairs += [
                (
                    "adaptive",
                    f"mode {adaptive['mode']}, state {adaptive['state']}, "
                    f"{adaptive['migrations_started']}/{adaptive['budget']} "
                    f"migration(s): {adaptive['promotions']} promoted, "
                    f"{adaptive['rollbacks']} rolled back",
                ),
                (
                    "arena MapIDs",
                    " ".join(str(k) for k in adaptive["page_map_ids"])
                    + (
                        f" (audit findings: {adaptive['audit_findings']})"
                        if adaptive["audit_findings"]
                        else ""
                    ),
                ),
            ]
        return render_text(header, pairs)


class ServingRuntime:
    """Push a workload through the engine under one :class:`ServingConfig`."""

    def __init__(
        self,
        engine: InferenceEngine,
        config: Optional[ServingConfig] = None,
        monitor: Optional[HealthMonitor] = None,
        telemetry: Optional["Telemetry"] = None,
        barriers: Optional["BarrierRecorder"] = None,
        workload: Optional[object] = None,
    ):
        self.engine = engine
        self.config = config if config is not None else ServingConfig()
        #: optional workload spec (repro.workloads): a SpeculativeSpec /
        #: ExpertPlacementSpec / CoResidencySpec switches :meth:`run` to
        #: that workload's loop; None keeps the chat paths untouched
        self.workload = workload
        #: optional observability bundle; spans ride simulated time and
        #: counters are pure derivations, so results are byte-identical
        #: with telemetry on or off
        self.telemetry = telemetry
        #: optional replay-diff barrier recorder (``serve --replay-check``);
        #: observing state never mutates it, so results are byte-identical
        #: with the recorder on or off
        self.barriers = barriers
        cfg = self.config
        self.monitor = monitor if monitor is not None else HealthMonitor()
        breaker_args = dict(
            monitor=self.monitor,
            fault_rate_threshold=cfg.breaker_threshold,
            min_observations=cfg.breaker_min_observations,
            cooldown_ns=cfg.breaker_cooldown_ns,
            probe_quota=cfg.breaker_probe_quota,
        )
        self.pim_breaker = CircuitBreaker("pim", **breaker_args)
        self.mapping_breaker = CircuitBreaker("mapping", **breaker_args)
        self.brownout = BrownoutController(cfg.brownout_high_ns, cfg.brownout_low_ns)
        self._breakers = {"pim": self.pim_breaker, "mapping": self.mapping_breaker}
        #: adaptive remapping controller (None when cfg.adaptive == "off";
        #: the import is lazy so the base serving stack stays free of the
        #: functional-system dependency)
        self.adaptive = None
        if cfg.adaptive != "off":
            from repro.adaptive import AdaptiveConfig, AdaptiveController

            self.adaptive = AdaptiveController(
                AdaptiveConfig(
                    mode=cfg.adaptive,
                    window_requests=cfg.adaptive_window,
                    canary_window=cfg.adaptive_canary_window,
                    cooldown_requests=cfg.adaptive_cooldown,
                    hysteresis=cfg.adaptive_hysteresis,
                    canary_fraction=cfg.adaptive_canary_fraction,
                    max_migrations=cfg.adaptive_max_migrations,
                    penalty_coeff=cfg.adaptive_penalty_coeff,
                    slo_margin=cfg.adaptive_slo_margin,
                    pinned_map_id=cfg.adaptive_pinned_map_id,
                ),
                telemetry=telemetry,
                seed=cfg.seed,
            )

    # -- routing ---------------------------------------------------------------

    def _price_prefill(
        self,
        policy: str,
        prefill_len: int,
        allow_pim: bool,
        engine: Optional[InferenceEngine] = None,
    ) -> Tuple[float, str]:
        engine = engine if engine is not None else self.engine
        if allow_pim:
            return engine.prefill_ns(policy, prefill_len)
        if policy == "facil":
            return engine.prefill_ns(policy, prefill_len, dynamic_offload=False)
        if policy == "hybrid-dynamic":
            ns = engine.relayout_total_ns() + engine.soc_prefill_ns(
                prefill_len
            )
            return ns, "soc"
        return engine.prefill_ns(policy, prefill_len)

    def _route(
        self,
        request: Request,
        now_ns: float,
        pim_backlog_ns: float,
        prefill_tokens: Optional[int] = None,
        engine: Optional[InferenceEngine] = None,
    ) -> _Route:
        """Plan one request's resources.  *prefill_tokens* overrides the
        request's own count — the KV scheduler prices only the tokens a
        prefix-cache hit did not cover.  *engine* overrides the pricing
        engine — the co-residency workload routes each tenant through
        its own model's engine."""
        policy = request.policy
        priced_tokens = (
            prefill_tokens if prefill_tokens is not None else request.prefill_tokens
        )
        fallbacks: List[str] = []
        if policy == "facil" and not self.mapping_breaker.allow(now_ns):
            policy = "hybrid-static"
            fallbacks.append("facil->hybrid-static (mapping breaker open)")

        pim_allowed = True
        brownout_active = False
        if policy != "soc-only":
            pim_allowed = self.pim_breaker.allow(now_ns)
            if not pim_allowed:
                fallbacks.append("pim->soc (pim breaker open)")
            brownout_active = self.brownout.observe(pim_backlog_ns, now_ns)

        # prefill goes to PIM only when it is both healthy and not
        # saturated; decode placement is settled at the phase boundary
        prefill_pim_ok = pim_allowed and not brownout_active
        prefill_ns, prefill_resource = self._price_prefill(
            policy, priced_tokens, allow_pim=prefill_pim_ok, engine=engine
        )
        if prefill_resource == "pim":
            prefill_component = "pim"
        elif policy == "facil":
            # SoC GEMM straight on the PIM layout: the flexible-mapping path
            prefill_component = "mapping"
        else:
            prefill_component = "soc"
        return _Route(
            policy=policy,
            prefill_ns=prefill_ns,
            prefill_resource=prefill_resource,
            prefill_component=prefill_component,
            pim_allowed=pim_allowed,
            brownout_active=brownout_active,
            fallbacks=tuple(fallbacks),
        )

    # -- phase execution -------------------------------------------------------

    def _fault_rate(self, component: str) -> float:
        cfg = self.config
        return {
            "pim": cfg.pim_fault_rate,
            "mapping": cfg.mapping_fault_rate,
            "soc": cfg.soc_fault_rate,
        }[component]

    def _run_phase(
        self, start_ns: float, work_ns: float, component: str, rng: random.Random
    ) -> Tuple[float, bool, int, float]:
        """Execute one phase with retry-on-transient-fault pricing.

        Returns ``(end_ns, ok, retries, backoff_ns)``.  A faulted attempt
        burns the full phase on the resource, then waits the jittered
        exponential backoff before retrying.
        """
        cfg = self.config
        rate = self._fault_rate(component)
        breaker = self._breakers.get(component)
        t = start_ns
        retries = 0
        backoff_total = 0.0
        while True:
            t += work_ns
            if rate <= 0.0 or rng.random() >= rate:
                if breaker is not None:
                    breaker.record_success(t)
                else:
                    self.monitor.record_success(component)
                return t, True, retries, backoff_total
            if breaker is not None:
                breaker.record_failure(t)
            else:
                self.monitor.record_fault(component)
            if retries >= cfg.max_retries:
                return t, False, retries, backoff_total
            wait = cfg.base_backoff_ns * (2**retries)
            if cfg.jitter:
                wait *= 1.0 + cfg.jitter * rng.uniform(-1.0, 1.0)
            backoff_total += wait
            t += wait
            retries += 1

    # -- replay barriers -------------------------------------------------------

    def _barrier_state(
        self,
        rng: random.Random,
        free: Dict[str, float],
        outcomes: List["RequestOutcome"],
        full: bool = False,
    ) -> Dict[str, object]:
        """State components for one replay-diff barrier: the RNG stream
        position, both resource timelines, outcome progress, the
        adaptive arena (PTEs + journal cursor; whole-arena CRC when
        *full*), and the metrics snapshot hash when telemetry rides
        along.  Reads only — a barrier must never perturb the run."""
        state: Dict[str, object] = {
            "rng": rng.getstate(),
            "free_soc": free["soc"],
            "free_pim": free["pim"],
            "outcomes": len(outcomes),
            "last_outcome": outcomes[-1].req_id if outcomes else -1,
        }
        if self.adaptive is not None:
            state.update(self.adaptive.arena.barrier_state(full=full))
        if self.telemetry is not None:
            state["metrics"] = self.telemetry.metrics.snapshot()
        return state

    # -- the event loop --------------------------------------------------------

    def run(self, requests: Sequence[Request]) -> ServingReport:
        if self.workload is not None:
            from repro.workloads import run_workload_serving

            return run_workload_serving(self, list(requests))
        if self.config.kv_blocks > 0:
            from repro.kvcache.scheduler import run_kv_serving

            return run_kv_serving(self, list(requests))
        cfg = self.config
        tel = self.telemetry
        if tel is not None:
            # probe once per bundle: grounds controller/DRAM span
            # durations and the advisor counters without touching the
            # run's RNG or timelines
            tel.ensure_calibrated(self.engine)
        rng = random.Random(cfg.seed)
        queue = AdmissionQueue(
            cfg.queue_capacity, cfg.shed_policy, cfg.degrade_watermark
        )
        free = {"soc": 0.0, "pim": 0.0}
        pending = sorted(requests, key=lambda r: (r.arrival_ns, r.req_id))
        next_arrival = 0
        degraded: Dict[int, bool] = {}
        outcomes: List[RequestOutcome] = []
        clock = 0.0
        last_event = 0.0

        def admit(request: Request) -> None:
            verdict, evicted = queue.offer(request)
            if evicted is not None:
                outcomes.append(
                    RequestOutcome(
                        req_id=evicted.req_id,
                        tenant=evicted.tenant,
                        status=DROPPED,
                        policy_requested=evicted.policy,
                        wait_ns=request.arrival_ns - evicted.arrival_ns,
                    )
                )
                degraded.pop(evicted.req_id, None)
                if tel is not None:
                    tel.trace_query(
                        evicted.req_id, evicted.tenant, evicted.arrival_ns,
                        DROPPED, evicted.policy,
                        start_ns=request.arrival_ns,
                    )
            if verdict == "rejected":
                outcomes.append(
                    RequestOutcome(
                        req_id=request.req_id,
                        tenant=request.tenant,
                        status=REJECTED,
                        policy_requested=request.policy,
                    )
                )
                if tel is not None:
                    tel.trace_query(
                        request.req_id, request.tenant, request.arrival_ns,
                        REJECTED, request.policy,
                    )
            else:
                degraded[request.req_id] = verdict == "admitted-degraded"

        bar = self.barriers
        while next_arrival < len(pending) or len(queue):
            if bar is not None:
                bar.observe(
                    len(outcomes),
                    lambda: self._barrier_state(rng, free, outcomes),
                )
            if not len(queue):
                admit(pending[next_arrival])
                next_arrival += 1
                continue
            head = queue.peek()
            if head is None:  # unreachable: guarded by len(queue) above
                raise RuntimeError("admission queue reported non-empty but has no head")
            est = max(head.arrival_ns, clock)
            # arrivals strictly before the earliest possible service come first
            if (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_ns <= est
            ):
                admit(pending[next_arrival])
                next_arrival += 1
                continue
            route = self._route(head, est, max(0.0, free["pim"] - est))
            start = max(est, free[route.prefill_resource])
            # ... and arrivals while the head waits for its resource may
            # still evict it (drop-oldest) or shed themselves: ingest, redo
            if (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_ns <= start
            ):
                admit(pending[next_arrival])
                next_arrival += 1
                continue

            queue.pop(start)
            clock = start
            was_degraded = degraded.pop(head.req_id, False)
            wait_ns = start - head.arrival_ns

            # adaptive remapping: price the request's MapID/arena mismatch
            # on its PIM phases, and let the controller observe the round
            # (possibly migrating between rounds on the PIM timeline).
            # With adaptive off the multiplier is exactly 1.0 and the tick
            # is a no-op, so the run stays byte-identical.
            ada = self.adaptive
            k_req = ada.ideal_map_id(head.prefill_tokens) if ada is not None else 0
            pim_mult = ada.pim_multiplier(k_req) if ada is not None else 1.0

            def adaptive_tick(
                served: bool, ttft: float, pim_base_ns: float,
                route=route, head=head, k_req=k_req, pim_mult=pim_mult,
            ) -> None:
                nonlocal last_event
                if ada is None:
                    return
                migration_ns = ada.tick(
                    head.req_id,
                    last_event,
                    k_req,
                    served,
                    ttft,
                    pim_base_ns,
                    pim_obs_ns=pim_base_ns * pim_mult,
                    pim_ok=route.pim_allowed,
                    brownout=route.brownout_active,
                )
                if migration_ns > 0.0:
                    free["pim"] = max(free["pim"], last_event) + migration_ns
                    last_event = free["pim"]

            # boundary 1: admission -> prefill
            if start > head.deadline_abs_ns:
                outcomes.append(
                    RequestOutcome(
                        req_id=head.req_id,
                        tenant=head.tenant,
                        status=TIMED_OUT,
                        policy_requested=head.policy,
                        policy_served=route.policy,
                        wait_ns=wait_ns,
                        fallbacks=route.fallbacks,
                    )
                )
                if tel is not None:
                    tel.trace_query(
                        head.req_id, head.tenant, head.arrival_ns,
                        TIMED_OUT, route.policy, start_ns=start,
                    )
                last_event = max(last_event, start)
                adaptive_tick(False, 0.0, 0.0)
                continue

            prefill_base_ns = route.prefill_ns
            prefill_pim = route.prefill_resource == "pim"
            prefill_end, ok, retries_p, backoff_p = self._run_phase(
                start,
                prefill_base_ns * pim_mult if prefill_pim else prefill_base_ns,
                route.prefill_component,
                rng,
            )
            free[route.prefill_resource] = prefill_end
            last_event = max(last_event, prefill_end)
            if not ok:
                outcomes.append(
                    RequestOutcome(
                        req_id=head.req_id,
                        tenant=head.tenant,
                        status=ABORTED,
                        policy_requested=head.policy,
                        policy_served=route.policy,
                        wait_ns=wait_ns,
                        retries=retries_p,
                        backoff_ns=backoff_p,
                        fallbacks=route.fallbacks,
                    )
                )
                if tel is not None:
                    tel.trace_query(
                        head.req_id, head.tenant, head.arrival_ns,
                        ABORTED, route.policy,
                        start_ns=start, prefill_end_ns=prefill_end,
                        prefill_resource=route.prefill_resource,
                        retries=retries_p,
                    )
                adaptive_tick(False, 0.0, prefill_base_ns if prefill_pim else 0.0)
                continue
            ttft_ns = prefill_end - head.arrival_ns

            # boundary 2: prefill -> decode (first token must be in budget)
            if prefill_end > head.deadline_abs_ns:
                outcomes.append(
                    RequestOutcome(
                        req_id=head.req_id,
                        tenant=head.tenant,
                        status=TIMED_OUT,
                        policy_requested=head.policy,
                        policy_served=route.policy,
                        wait_ns=wait_ns,
                        ttft_ns=ttft_ns,
                        retries=retries_p,
                        backoff_ns=backoff_p,
                        fallbacks=route.fallbacks,
                    )
                )
                if tel is not None:
                    tel.trace_query(
                        head.req_id, head.tenant, head.arrival_ns,
                        TIMED_OUT, route.policy,
                        start_ns=start, prefill_end_ns=prefill_end,
                        prefill_resource=route.prefill_resource,
                    )
                adaptive_tick(False, 0.0, prefill_base_ns if prefill_pim else 0.0)
                continue

            decode_tokens = head.decode_tokens
            if was_degraded:
                decode_tokens = max(1, min(decode_tokens, cfg.degraded_decode_tokens))

            # decode placement: policy resource unless the breaker forbids
            # PIM; under brown-out, migrate to the SoC only when that
            # finishes *sooner* (a blind migration would park a monster
            # decode on the SoC and starve every following prefill)
            fallbacks = route.fallbacks
            decode_pim = decode_on_pim(route.policy) and route.pim_allowed
            if decode_pim and route.brownout_active:
                pim_ns = (
                    self.engine.decode_total_ns(
                        head.prefill_tokens, decode_tokens, True
                    )
                    * pim_mult
                )
                soc_ns = self.engine.decode_total_ns(
                    head.prefill_tokens, decode_tokens, False
                )
                pim_done = max(prefill_end, free["pim"]) + pim_ns
                soc_done = max(prefill_end, free["soc"]) + soc_ns
                if soc_done < pim_done:
                    decode_pim = False
                    fallbacks = fallbacks + ("pim->soc (brown-out)",)
            decode_base_ns = self.engine.decode_total_ns(
                head.prefill_tokens, decode_tokens, decode_pim
            )
            decode_ns = decode_base_ns * pim_mult if decode_pim else decode_base_ns
            decode_resource = "pim" if decode_pim else "soc"
            decode_start = max(prefill_end, free[decode_resource])
            decode_end, ok, retries_d, backoff_d = self._run_phase(
                decode_start, decode_ns, decode_resource, rng
            )
            free[decode_resource] = decode_end
            last_event = max(last_event, decode_end)
            if not ok:
                outcomes.append(
                    RequestOutcome(
                        req_id=head.req_id,
                        tenant=head.tenant,
                        status=ABORTED,
                        policy_requested=head.policy,
                        policy_served=route.policy,
                        wait_ns=wait_ns,
                        ttft_ns=ttft_ns,
                        retries=retries_p + retries_d,
                        backoff_ns=backoff_p + backoff_d,
                        fallbacks=fallbacks,
                    )
                )
                if tel is not None:
                    tel.trace_query(
                        head.req_id, head.tenant, head.arrival_ns,
                        ABORTED, route.policy,
                        start_ns=start, prefill_end_ns=prefill_end,
                        decode_start_ns=decode_start, end_ns=decode_end,
                        prefill_resource=route.prefill_resource,
                        decode_resource=decode_resource,
                        context_tokens=head.prefill_tokens,
                    )
                adaptive_tick(
                    False,
                    0.0,
                    (prefill_base_ns if prefill_pim else 0.0)
                    + (decode_base_ns if decode_pim else 0.0),
                )
                continue

            outcomes.append(
                RequestOutcome(
                    req_id=head.req_id,
                    tenant=head.tenant,
                    status=SERVED_DEGRADED if was_degraded else SERVED,
                    policy_requested=head.policy,
                    policy_served=route.policy,
                    wait_ns=wait_ns,
                    ttft_ns=ttft_ns,
                    ttlt_ns=decode_end - head.arrival_ns,
                    decode_tokens_served=decode_tokens,
                    retries=retries_p + retries_d,
                    backoff_ns=backoff_p + backoff_d,
                    fallbacks=fallbacks,
                )
            )
            if tel is not None:
                tel.trace_query(
                    head.req_id, head.tenant, head.arrival_ns,
                    SERVED_DEGRADED if was_degraded else SERVED,
                    route.policy,
                    start_ns=start, prefill_end_ns=prefill_end,
                    decode_start_ns=decode_start, end_ns=decode_end,
                    prefill_resource=route.prefill_resource,
                    decode_resource=decode_resource,
                    context_tokens=head.prefill_tokens,
                    decode_tokens=decode_tokens,
                )
            # the controller sees *service* TTFT (queue wait excluded):
            # its canary judges the mapping, not the admission backlog
            adaptive_tick(
                True,
                ttft_ns - wait_ns,
                (prefill_base_ns if prefill_pim else 0.0)
                + (decode_base_ns if decode_pim else 0.0),
            )

        end_ns = max(
            last_event, pending[-1].arrival_ns if pending else 0.0, clock
        )
        self.brownout.finish(end_ns)
        if bar is not None:
            final = self._barrier_state(rng, free, outcomes, full=True)
            final["duration_ns"] = end_ns
            bar.snap("final", len(outcomes), final)
        outcomes.sort(key=lambda o: o.req_id)
        report = ServingReport(
            config=cfg,
            outcomes=outcomes,
            queue_stats=queue.stats,
            duration_ns=end_ns,
            breaker_transitions={
                name: [(t, a.value, b.value) for t, a, b in brk.transitions]
                for name, brk in self._breakers.items()
            },
            breaker_snapshots={
                name: brk.snapshot() for name, brk in self._breakers.items()
            },
            brownout_intervals=list(self.brownout.intervals),
            health=self.monitor.summary(),
            adaptive=self.adaptive.report() if self.adaptive is not None else None,
        )
        if tel is not None:
            tel.record_serving_report(report)
            tel.tracer.close_all(end_ns)
        return report


def sustainable_qps(
    engine: InferenceEngine, tenant: TenantSpec, n: int = 200, seed: int = 0
) -> float:
    """Estimate the highest arrival rate the two-resource pipeline can
    sustain for *tenant*'s traffic: the reciprocal of the mean work on the
    **bottleneck** resource (prefill and decode pipeline across requests,
    so the slower timeline sets the ceiling)."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    work = {"soc": 0.0, "pim": 0.0}
    on_pim = decode_on_pim(tenant.policy)
    for _ in range(n):
        trace = tenant.dataset.sample_one(rng)
        prefill_ns, resource = engine.prefill_ns(tenant.policy, trace.prefill_tokens)
        work[resource] += prefill_ns
        work["pim" if on_pim else "soc"] += engine.decode_total_ns(
            trace.prefill_tokens, trace.decode_tokens, on_pim
        )
    bottleneck_ns = max(work.values()) / n
    return 1e9 / bottleneck_ns
