"""Per-query energy accounting across execution policies (extension).

Prices the DRAM-side energy of each policy's data movement:

* SoC GEMM/GEMV: every weight/activation byte pays array access *and*
  external I/O energy;
* re-layout (hybrid baseline): a full read + write of every matrix —
  pure waste FACIL eliminates;
* PIM GEMV: weight bytes stay inside the die (array + MAC energy only);
  only inputs/outputs cross the bus.

SoC compute energy is included with a per-FLOP constant so the numbers
are end-to-end comparable, but the interesting deltas are DRAM-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dram.energy import DramEnergyModel, LPDDR5_ENERGY, gemv_energy_pj
from repro.engine.policies import InferenceEngine
from repro.llm.inference import decode_step_plan, prefill_plan

__all__ = ["EnergyModel", "QueryEnergy", "query_energy"]

#: FP16 MAC energy on a mobile GPU/NPU, pJ per FLOP (ballpark).
SOC_PJ_PER_FLOP = 0.6


@dataclass(frozen=True)
class EnergyModel:
    dram: DramEnergyModel = LPDDR5_ENERGY
    soc_pj_per_flop: float = SOC_PJ_PER_FLOP
    #: activations per byte accessed through the conventional path; the
    #: streams are row-friendly, one ACT per DRAM row.
    row_bytes: int = 2048

    def soc_stream_pj(self, nbytes: float, write_fraction: float = 0.0) -> float:
        acts = nbytes / self.row_bytes
        reads = nbytes * (1.0 - write_fraction)
        writes = nbytes * write_fraction
        return (
            acts * self.dram.act_pj
            + self.dram.read_pj(reads)
            + self.dram.write_pj(writes)
        )


@dataclass(frozen=True)
class QueryEnergy:
    """Millijoule breakdown of one query."""

    policy: str
    prefill_mj: float
    relayout_mj: float
    decode_mj: float

    @property
    def total_mj(self) -> float:
        return self.prefill_mj + self.relayout_mj + self.decode_mj


def _soc_phase_pj(engine: InferenceEngine, plan, batch, model: EnergyModel) -> float:
    total = 0.0
    for spec in plan.linears:
        n = engine._gemm_batch(spec, batch)
        weight = spec.bytes_per_instance
        act_bytes = (spec.in_features + spec.out_features) * n * spec.dtype_bytes
        flops = 2.0 * spec.out_features * n * spec.in_features
        total += spec.count * (
            model.soc_stream_pj(weight + act_bytes)
            + flops * model.soc_pj_per_flop
        )
    total += model.soc_stream_pj(plan.attention.bytes_moved)
    total += plan.attention.flops * model.soc_pj_per_flop
    return total


def _pim_phase_pj(
    engine: InferenceEngine, plan, batch, model: EnergyModel
) -> float:
    org = engine.platform.dram.org
    total = 0.0
    for spec in plan.linears:
        cost = engine._costs[spec.name]
        n = engine._gemm_batch(spec, batch)
        input_bytes = spec.in_features * spec.dtype_bytes
        output_bytes = spec.out_features * 4  # FP32 partials
        total += spec.count * n * gemv_energy_pj(
            cost.pim_gemv, org.total_banks, input_bytes, output_bytes, model.dram
        )
    total += model.soc_stream_pj(plan.attention.bytes_moved)
    total += plan.attention.flops * model.soc_pj_per_flop
    return total


def query_energy(
    engine: InferenceEngine,
    policy: str,
    prefill_len: int,
    decode_len: int,
    model: Optional[EnergyModel] = None,
) -> QueryEnergy:
    """Energy of one query under *policy* (same semantics as
    :meth:`InferenceEngine.run_query`, with FACIL's prefill on the SoC)."""
    model = model if model is not None else EnergyModel()
    pre_plan = prefill_plan(engine.model, prefill_len)

    relayout_pj = 0.0
    if policy in ("hybrid-static", "hybrid-dynamic"):
        for cost in engine._costs.values():
            nbytes = cost.spec.bytes_per_instance
            relayout_pj += cost.spec.count * (
                model.soc_stream_pj(nbytes)  # read the PIM layout
                + model.soc_stream_pj(nbytes, write_fraction=1.0)  # write copy
            )

    prefill_pj = _soc_phase_pj(engine, pre_plan, prefill_len, model)

    decode_pj = 0.0
    on_pim = policy != "soc-only"
    for step in range(1, decode_len):
        plan = decode_step_plan(engine.model, prefill_len + step)
        if on_pim:
            decode_pj += _pim_phase_pj(engine, plan, 1, model)
        else:
            decode_pj += _soc_phase_pj(engine, plan, 1, model)

    return QueryEnergy(
        policy=policy,
        prefill_mj=prefill_pj / 1e9,
        relayout_mj=relayout_pj / 1e9,
        decode_mj=decode_pj / 1e9,
    )
