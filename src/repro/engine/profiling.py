"""Workload profiling helpers (paper Figs. 2 and 3).

* :func:`decode_time_breakdown` — Fig. 2a: share of a decode step spent
  in linear (GEMV) operations vs attention/other, on the SoC.
* :func:`gemv_utilization` — Fig. 2b: compute and memory-bandwidth
  utilization of the four GEMV shapes of the model.
* :func:`pim_offload_speedup` — Fig. 3: end-to-end decode speedup from
  offloading GEMV to PIM, including the ideal-NPU comparator (infinite
  FLOPS, 100 % of peak bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.policies import InferenceEngine
from repro.llm.layers import LinearSpec, linear_specs
from repro.llm.model_config import LlmConfig
from repro.platforms.specs import PlatformSpec
from repro.soc.processor import SocProcessor, ideal_npu

__all__ = [
    "DecodeBreakdown",
    "UtilizationPoint",
    "OffloadSpeedup",
    "decode_time_breakdown",
    "gemv_utilization",
    "pim_offload_speedup",
]


@dataclass(frozen=True)
class DecodeBreakdown:
    """Fractions of one SoC decode step (Fig. 2a)."""

    linear_ns: float
    other_ns: float

    @property
    def total_ns(self) -> float:
        return self.linear_ns + self.other_ns

    @property
    def linear_fraction(self) -> float:
        return self.linear_ns / self.total_ns if self.total_ns else 0.0


@dataclass(frozen=True)
class UtilizationPoint:
    """One GEMV shape's roofline utilization (Fig. 2b)."""

    name: str
    m: int
    k: int
    compute_utilization: float
    memory_utilization: float


@dataclass(frozen=True)
class OffloadSpeedup:
    """Decode-phase speedups of Fig. 3."""

    soc_step_ns: float
    pim_step_ns: float
    ideal_npu_step_ns: float

    @property
    def pim_vs_soc(self) -> float:
        return self.soc_step_ns / self.pim_step_ns

    @property
    def npu_vs_soc(self) -> float:
        return self.soc_step_ns / self.ideal_npu_step_ns

    @property
    def pim_vs_ideal_npu(self) -> float:
        """The paper's headline 3.32x (Jetson, Llama3-8B)."""
        return self.ideal_npu_step_ns / self.pim_step_ns


def decode_time_breakdown(
    engine: InferenceEngine, context_len: int = 64
) -> DecodeBreakdown:
    """Split one SoC decode step into linear vs everything else."""
    total = engine.soc_decode_step_ns(context_len)
    linear = 0.0
    for spec in linear_specs(engine.model):
        linear += spec.count * engine.soc.gemv_time_ns(
            spec.out_features, spec.in_features, spec.dtype_bytes
        )
    return DecodeBreakdown(linear_ns=linear, other_ns=max(0.0, total - linear))


def gemv_utilization(
    soc: SocProcessor, model: LlmConfig
) -> List[UtilizationPoint]:
    """Compute/memory utilization of each distinct GEMV shape (Fig. 2b).

    Utilization is achieved-rate over peak: GEMV arithmetic intensity is
    ~1 MAC/element, so compute utilization lands well under 1 % while the
    memory system saturates to its measured ceiling.
    """
    points: List[UtilizationPoint] = []
    seen: set = set()
    for spec in linear_specs(model, include_head=False):
        shape = (spec.out_features, spec.in_features)
        if shape in seen:
            continue
        seen.add(shape)
        time_ns = soc.gemv_time_ns(spec.out_features, spec.in_features)
        flops = 2.0 * spec.out_features * spec.in_features
        bytes_moved = spec.bytes_per_instance + (
            spec.in_features + spec.out_features
        ) * spec.dtype_bytes
        compute_util = (flops / time_ns) / (soc.peak_tflops_fp16 * 1e3)
        memory_util = (bytes_moved / time_ns) / soc.peak_bw_gbps
        points.append(
            UtilizationPoint(
                name=spec.name,
                m=spec.out_features,
                k=spec.in_features,
                compute_utilization=compute_util,
                memory_utilization=memory_util,
            )
        )
    return points


def pim_offload_speedup(
    platform: PlatformSpec,
    model: Optional[LlmConfig] = None,
    context_len: int = 64,
) -> OffloadSpeedup:
    """Fig. 3: decode-step latency on the SoC, on SoC+PIM, and on the
    hypothetical ideal NPU."""
    engine = InferenceEngine(platform, model)
    npu_engine = InferenceEngine(
        platform, model, soc_override=ideal_npu(platform.peak_bw_gbps)
    )
    return OffloadSpeedup(
        soc_step_ns=engine.soc_decode_step_ns(context_len),
        pim_step_ns=engine.pim_decode_step_ns(context_len),
        ideal_npu_step_ns=npu_engine.soc_decode_step_ns(context_len),
    )
