"""Multi-turn chat sessions (extension).

The paper evaluates single queries; real assistants hold conversations
where the KV cache persists across turns.  The consequence for the
baselines is stark: the hybrid-static baseline pays the **full re-layout
on every turn** (each turn has a prefill), while FACIL pays it never —
the gap grows linearly with conversation length.

:class:`ChatSession` prices successive turns with cumulative context:
turn *k*'s prefill GEMMs cover only the new user tokens, but attention
spans the whole conversation so far.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.engine.metrics import QueryLatency
from repro.engine.policies import POLICIES, InferenceEngine, decode_on_pim
from repro.llm.inference import attention_cost
from repro.llm.layers import linear_specs

__all__ = ["ChatSession", "TurnLatency"]


@dataclass(frozen=True)
class TurnLatency:
    """Latency of one conversation turn."""

    turn: int
    context_before: int
    user_tokens: int
    response_tokens: int
    ttft_ns: float
    ttlt_ns: float

    @property
    def ttft_ms(self) -> float:
        return self.ttft_ns / 1e6

    @property
    def ttlt_ms(self) -> float:
        return self.ttlt_ns / 1e6


class ChatSession:
    """Prices a conversation under one policy, with persistent KV cache."""

    def __init__(self, engine: InferenceEngine, policy: str):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        self.engine = engine
        self.policy = policy
        self.context = 0
        self.turns: List[TurnLatency] = []

    def set_policy(self, policy: str) -> None:
        """Switch the execution policy mid-conversation (the serving
        runtime does this when a circuit breaker or brownout forces
        decode off the PIM units).  The KV context carries over."""
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        self.policy = policy

    # -- pricing helpers ------------------------------------------------------

    def _incremental_prefill_ns(self, n_new: int, pim_layout: bool) -> float:
        """Prefill over *n_new* tokens attending to the whole context."""
        engine = self.engine
        gemm_ns = 0.0
        for spec in linear_specs(engine.model):
            n = engine._gemm_batch(spec, n_new)
            gemm_ns += spec.count * engine.soc.gemm_time_ns(
                spec.out_features, n, spec.in_features, spec.dtype_bytes
            )
        if pim_layout:
            gemm_ns *= 1.0 + engine.platform.gemm_layout_slowdown
        attention = attention_cost(
            engine.model, n_new, self.context + n_new
        )
        return gemm_ns + engine._attention_ns(attention)

    def _prefill_ns(self, n_new: int) -> float:
        engine = self.engine
        if self.policy == "soc-only":
            return self._incremental_prefill_ns(n_new, pim_layout=False)
        if self.policy == "hybrid-static":
            return engine.relayout_total_ns() + self._incremental_prefill_ns(
                n_new, pim_layout=False
            )
        if self.policy == "hybrid-dynamic":
            soc_path = engine.relayout_total_ns() + self._incremental_prefill_ns(
                n_new, pim_layout=False
            )
            return min(soc_path, engine.pim_prefill_ns(n_new))
        # facil (dynamic offload on, as in the dataset experiments)
        soc_path = self._incremental_prefill_ns(n_new, pim_layout=True)
        return min(soc_path, engine.pim_prefill_ns(n_new))

    # -- public API ------------------------------------------------------------

    def turn(self, user_tokens: int, response_tokens: int) -> TurnLatency:
        """Process one turn; the KV context persists into the next."""
        if user_tokens <= 0 or response_tokens <= 0:
            raise ValueError("token counts must be positive")
        engine = self.engine
        ttft = self._prefill_ns(user_tokens)
        on_pim = decode_on_pim(self.policy)
        step = engine.pim_decode_step_ns if on_pim else engine.soc_decode_step_ns
        decode = 0.0
        base = self.context + user_tokens
        for t in range(1, response_tokens):
            decode += step(base + t)
        result = TurnLatency(
            turn=len(self.turns) + 1,
            context_before=self.context,
            user_tokens=user_tokens,
            response_tokens=response_tokens,
            ttft_ns=ttft,
            ttlt_ns=ttft + decode,
        )
        self.turns.append(result)
        self.context += user_tokens + response_tokens
        return result

    @property
    def total_ns(self) -> float:
        return sum(t.ttlt_ns for t in self.turns)

    @property
    def total_relayout_ns(self) -> float:
        """Cumulative re-layout cost paid so far (static baseline only)."""
        if self.policy != "hybrid-static":
            return 0.0
        return len(self.turns) * self.engine.relayout_total_ns()
