"""Multi-turn chat sessions (extension).

The paper evaluates single queries; real assistants hold conversations
where the KV cache persists across turns.  The consequence for the
baselines is stark: the hybrid-static baseline pays the **full re-layout
on every turn** (each turn has a prefill), while FACIL pays it never —
the gap grows linearly with conversation length.

:class:`ChatSession` prices successive turns with cumulative context:
turn *k*'s prefill GEMMs cover only the new user tokens, but attention
spans the whole conversation so far.  Each turn records the re-layout
cost it actually paid (:attr:`TurnLatency.relayout_ns`), so
:attr:`ChatSession.total_relayout_ns` stays correct across a mid-
conversation :meth:`set_policy` switch.

With a :class:`~repro.kvcache.manager.KvCacheManager` attached, the
session prices turns against the *managed* cache instead of assuming
perfect persistence: each turn admits a sequence keyed on the
conversation, the prefix-tree hit covers the full blocks of earlier
turns, and only the remainder (the new tokens plus the partial tail
block) is recomputed — the block-granular reality of paged KV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.engine.policies import POLICIES, InferenceEngine, decode_on_pim
from repro.llm.inference import attention_cost
from repro.llm.layers import linear_specs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kvcache.manager import KvCacheManager
    from repro.telemetry.tracer import Tracer

__all__ = ["ChatSession", "TurnLatency"]


@dataclass(frozen=True)
class TurnLatency:
    """Latency of one conversation turn."""

    turn: int
    context_before: int
    user_tokens: int
    response_tokens: int
    ttft_ns: float
    ttlt_ns: float
    #: re-layout cost this turn actually paid (0 unless the policy
    #: serving *this turn* re-laid out the weights)
    relayout_ns: float = 0.0
    #: prefix-cache split of this turn's prefill (managed-KV mode only;
    #: without a manager, ``recomputed_tokens == user_tokens``)
    cached_tokens: int = 0
    recomputed_tokens: int = 0

    @property
    def ttft_ms(self) -> float:
        return self.ttft_ns / 1e6

    @property
    def ttlt_ms(self) -> float:
        return self.ttlt_ns / 1e6


class ChatSession:
    """Prices a conversation under one policy, with persistent KV cache."""

    def __init__(
        self,
        engine: InferenceEngine,
        policy: str,
        kv: Optional["KvCacheManager"] = None,
        conversation_id: int = 0,
        tracer: Optional["Tracer"] = None,
    ):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        self.engine = engine
        self.policy = policy
        self.context = 0
        self.turns: List[TurnLatency] = []
        self.kv = kv
        self.conversation_id = conversation_id
        #: optional span sink: each turn lands on the session's own
        #: back-to-back simulated timeline, trace id = conversation id
        self.tracer = tracer

    def set_policy(self, policy: str) -> None:
        """Switch the execution policy mid-conversation (the serving
        runtime does this when a circuit breaker or brownout forces
        decode off the PIM units).  The KV context carries over."""
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        self.policy = policy

    # -- pricing helpers ------------------------------------------------------

    def _incremental_prefill_ns(
        self, n_new: int, pim_layout: bool, context: Optional[int] = None
    ) -> float:
        """Prefill over *n_new* tokens attending to the whole context
        (*context* tokens of reusable KV ahead of them; defaults to the
        session's committed context)."""
        engine = self.engine
        prior = self.context if context is None else context
        gemm_ns = 0.0
        for spec in linear_specs(engine.model):
            n = engine._gemm_batch(spec, n_new)
            gemm_ns += spec.count * engine.soc.gemm_time_ns(
                spec.out_features, n, spec.in_features, spec.dtype_bytes
            )
        if pim_layout:
            gemm_ns *= 1.0 + engine.platform.gemm_layout_slowdown
        attention = attention_cost(engine.model, n_new, prior + n_new)
        return gemm_ns + engine._attention_ns(attention)

    def _prefill_cost(
        self, n_new: int, context: Optional[int] = None
    ) -> "tuple[float, float]":
        """Price this turn's prefill under the current policy.

        Returns ``(prefill_ns, relayout_ns)`` where the second term is
        the re-layout share actually paid (contained in the first)."""
        engine = self.engine
        if self.policy == "soc-only":
            return self._incremental_prefill_ns(n_new, False, context), 0.0
        if self.policy == "hybrid-static":
            relayout = engine.relayout_total_ns()
            return (
                relayout + self._incremental_prefill_ns(n_new, False, context),
                relayout,
            )
        if self.policy == "hybrid-dynamic":
            relayout = engine.relayout_total_ns()
            soc_path = relayout + self._incremental_prefill_ns(n_new, False, context)
            pim_path = engine.pim_prefill_ns(n_new)
            if pim_path < soc_path:
                return pim_path, 0.0
            return soc_path, relayout
        # facil (dynamic offload on, as in the dataset experiments)
        soc_path = self._incremental_prefill_ns(n_new, True, context)
        return min(soc_path, engine.pim_prefill_ns(n_new)), 0.0

    # -- public API ------------------------------------------------------------

    def turn(self, user_tokens: int, response_tokens: int) -> TurnLatency:
        """Process one turn; the KV context persists into the next."""
        if user_tokens <= 0 or response_tokens <= 0:
            raise ValueError("token counts must be positive")
        engine = self.engine
        total = self.context + user_tokens
        cached = 0
        recompute = user_tokens
        seq_id = None
        now = float(len(self.turns))
        if self.kv is not None:
            seq_id = (self.conversation_id << 16) | len(self.turns)
            admission = self.kv.begin(seq_id, self.conversation_id, total, now)
            cached = admission.cached_tokens
            recompute = admission.recompute_tokens
        ttft, relayout = self._prefill_cost(recompute, context=cached)
        on_pim = decode_on_pim(self.policy)
        step = engine.pim_decode_step_ns if on_pim else engine.soc_decode_step_ns
        decode = 0.0
        base = total
        for t in range(1, response_tokens):
            decode += step(base + t)
        if self.kv is not None and seq_id is not None:
            self.kv.commit(seq_id, recompute, now)
            self.kv.ensure_capacity(seq_id, response_tokens, now)
            self.kv.commit(seq_id, response_tokens, now)
            self.kv.release(seq_id, now, retain=True)
        result = TurnLatency(
            turn=len(self.turns) + 1,
            context_before=self.context,
            user_tokens=user_tokens,
            response_tokens=response_tokens,
            ttft_ns=ttft,
            ttlt_ns=ttft + decode,
            relayout_ns=relayout,
            cached_tokens=cached,
            recomputed_tokens=recompute,
        )
        if self.tracer is not None:
            start_ns = self.total_ns
            root = self.tracer.begin(
                self.conversation_id,
                f"turn.{result.turn}",
                "engine",
                start_ns,
                policy=self.policy,
                context_before=self.context,
                cached_tokens=cached,
            )
            if root is not None:
                root.record("turn.prefill", "engine", start_ns, start_ns + ttft)
                if decode > 0.0:
                    root.record(
                        "turn.decode", "engine",
                        start_ns + ttft, start_ns + ttft + decode,
                    )
                root.close(start_ns + result.ttlt_ns)
        self.turns.append(result)
        self.context += user_tokens + response_tokens
        return result

    @property
    def total_ns(self) -> float:
        return sum(t.ttlt_ns for t in self.turns)

    @property
    def total_relayout_ns(self) -> float:
        """Cumulative re-layout cost actually paid so far.

        Summed from the per-turn records, so turns priced before a
        :meth:`set_policy` switch keep the cost of the policy that
        served them (the previous implementation re-priced history
        against the *current* policy)."""
        return sum(t.relayout_ns for t in self.turns)
