"""Execution policies for SoC-PIM cooperative inference (paper §VI).

Four policies are modeled:

* ``soc-only`` — everything on the SoC processor (no PIM).
* ``hybrid-static`` — the paper's baseline: weights live in the PIM
  layout; every prefill re-layouts each matrix on demand to run GEMM on
  the SoC; decode GEMVs run on PIM.
* ``hybrid-dynamic`` — the paper's optimized baseline: prefill GEMMs go
  to SoC *or* PIM depending on a profiled prefill-length threshold
  (tall-and-skinny GEMMs are faster on PIM than SoC-plus-re-layout).
* ``facil`` — the proposal: the SoC runs GEMM directly on the
  PIM-optimized layout through FACIL's flexible mapping (no re-layout; a
  conservative Table III slowdown is applied), decode runs on PIM.  The
  dataset experiments additionally enable the same dynamic offload.

All latencies come from the substrate models: the SoC roofline, the PIM
command-level GEMV model, and the re-layout cost model.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.relayout import relayout_cost_ns
from repro.core.selector import MatrixConfig, select_mapping
from repro.engine.metrics import QueryLatency
from repro.llm.inference import AttentionCost, decode_step_plan, prefill_plan
from repro.llm.layers import LinearSpec, linear_specs
from repro.llm.model_config import LlmConfig, model_by_name
from repro.pim.gemv import GemvLatency, gemv_latency
from repro.platforms.specs import PlatformSpec
from repro.soc.processor import SocProcessor

__all__ = ["InferenceEngine", "POLICIES", "decode_on_pim"]

POLICIES = ("soc-only", "hybrid-static", "hybrid-dynamic", "facil")


def decode_on_pim(policy: str) -> bool:
    """True when *policy* runs its decode GEMVs on the PIM units (i.e. it
    needs healthy PIM hardware for its normal decode path)."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
    return policy != "soc-only"

#: Per-offloaded-op dispatch overhead for PIM command streams.
PIM_DISPATCH_NS = 2_000.0


@dataclass(frozen=True)
class _SpecCosts:
    """Precomputed per-instance costs of one linear spec."""

    spec: LinearSpec
    pim_gemv: GemvLatency
    relayout_ns: float


class InferenceEngine:
    """Prices queries on one platform + model under each policy."""

    def __init__(
        self,
        platform: PlatformSpec,
        model: Optional[LlmConfig] = None,
        huge_page_bytes: int = 2 << 20,
        relayout_mode: str = "peak-bw",
        soc_override: Optional[SocProcessor] = None,
    ):
        self.platform = platform
        self.model = model if model is not None else model_by_name(platform.model_name)
        self.soc = soc_override if soc_override is not None else platform.soc
        self.huge_page_bytes = huge_page_bytes
        self._costs: Dict[str, _SpecCosts] = {}
        for spec in linear_specs(self.model):
            matrix = spec.matrix_config()
            selection = select_mapping(
                matrix, platform.dram.org, platform.pim, huge_page_bytes
            )
            pim = gemv_latency(
                matrix,
                platform.dram,
                platform.pim,
                huge_page_bytes,
                selection=selection,
            )
            relayout = relayout_cost_ns(
                spec.bytes_per_instance, platform.dram, mode=relayout_mode
            )
            self._costs[spec.name] = _SpecCosts(
                spec=spec, pim_gemv=pim, relayout_ns=relayout.total_ns
            )
        # Decode steps repeat the same context lengths across queries and
        # sweeps; memoize the pure pricing functions per engine instance.
        self.soc_prefill_ns = functools.lru_cache(maxsize=None)(self.soc_prefill_ns)
        self.pim_prefill_ns = functools.lru_cache(maxsize=None)(self.pim_prefill_ns)
        self.soc_decode_step_ns = functools.lru_cache(maxsize=None)(
            self.soc_decode_step_ns
        )
        self.pim_decode_step_ns = functools.lru_cache(maxsize=None)(
            self.pim_decode_step_ns
        )

    # ------------------------------------------------------------------
    # phase primitives
    # ------------------------------------------------------------------

    def _attention_ns(self, attention: AttentionCost) -> float:
        base = self.soc.op_time_ns(attention.flops, attention.bytes_moved)
        return base + (attention.n_kernels - 1) * self.soc.kernel_launch_ns

    def _gemm_batch(self, spec: LinearSpec, batch_tokens: int) -> int:
        """Prefill batch size for a spec (the LM head only needs logits
        for the final position)."""
        return 1 if spec.name == "lm_head" else batch_tokens

    def soc_prefill_ns(self, prefill_len: int, pim_layout: bool = False) -> float:
        """Prefill entirely on the SoC.  With ``pim_layout`` the GEMMs run
        on the PIM-optimized layout (FACIL) and are scaled by the
        platform's conservative Table III slowdown."""
        plan = prefill_plan(self.model, prefill_len)
        gemm_ns = 0.0
        for spec in plan.linears:
            n = self._gemm_batch(spec, plan.batch_tokens)
            gemm_ns += spec.count * self.soc.gemm_time_ns(
                spec.out_features, n, spec.in_features, spec.dtype_bytes
            )
        if pim_layout:
            gemm_ns *= 1.0 + self.platform.gemm_layout_slowdown
        return gemm_ns + self._attention_ns(plan.attention)

    def relayout_total_ns(self) -> float:
        """On-demand re-layout of every weight matrix, paid once per
        prefill by the hybrid baseline."""
        return sum(c.spec.count * c.relayout_ns for c in self._costs.values())

    def pim_prefill_ns(self, prefill_len: int) -> float:
        """Prefill on PIM: the tall-and-skinny GEMM as L back-to-back
        GEMV passes (AiM holds one input vector at a time), attention and
        glue on the SoC."""
        plan = prefill_plan(self.model, prefill_len)
        gemv_ns = 0.0
        reduce_bytes = 0.0
        for spec in plan.linears:
            cost = self._costs[spec.name]
            n = self._gemm_batch(spec, plan.batch_tokens)
            gemv_ns += spec.count * (n * cost.pim_gemv.total_ns + PIM_DISPATCH_NS)
            reduce_bytes += spec.count * n * cost.pim_gemv.soc_reduce_bytes
        reduce_ns = self.soc.stream_time_ns(reduce_bytes)
        return gemv_ns + reduce_ns + self._attention_ns(plan.attention)

    def soc_decode_step_ns(self, context_len: int) -> float:
        plan = decode_step_plan(self.model, context_len)
        gemv_ns = 0.0
        for spec in plan.linears:
            gemv_ns += spec.count * self.soc.gemv_time_ns(
                spec.out_features, spec.in_features, spec.dtype_bytes
            )
        return gemv_ns + self._attention_ns(plan.attention)

    def pim_decode_step_ns(self, context_len: int) -> float:
        """One decode step with linear GEMVs on PIM; attention, glue, and
        partial-sum reduction on the SoC."""
        plan = decode_step_plan(self.model, context_len)
        gemv_ns = 0.0
        reduce_bytes = 0.0
        for spec in plan.linears:
            cost = self._costs[spec.name]
            gemv_ns += spec.count * (cost.pim_gemv.total_ns + PIM_DISPATCH_NS)
            reduce_bytes += spec.count * cost.pim_gemv.soc_reduce_bytes
        reduce_ns = self.soc.stream_time_ns(reduce_bytes)
        return gemv_ns + reduce_ns + self._attention_ns(plan.attention)

    def _decode_total_ns(self, prefill_len: int, decode_len: int, on_pim: bool) -> float:
        """Decode steps 2..D (the first token comes from prefill)."""
        step = self.pim_decode_step_ns if on_pim else self.soc_decode_step_ns
        return sum(
            step(prefill_len + t) for t in range(1, decode_len)
        )

    # ------------------------------------------------------------------
    # phase-level pricing (the serving runtime schedules phases on
    # resources and applies per-phase breaker/brownout decisions)
    # ------------------------------------------------------------------

    def prefill_ns(
        self,
        policy: str,
        prefill_len: int,
        dynamic_offload: Optional[bool] = None,
    ) -> Tuple[float, str]:
        """Price the prefill phase of *policy* alone.

        Returns ``(ns, resource)`` where *resource* is ``"soc"`` or
        ``"pim"`` — the unit whose timeline the phase occupies (the
        serving runtime serializes work per resource).
        """
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        if prefill_len <= 0:
            raise ValueError("prefill length must be positive")
        if policy == "soc-only":
            return self.soc_prefill_ns(prefill_len), "soc"
        if policy == "hybrid-static":
            return self.relayout_total_ns() + self.soc_prefill_ns(prefill_len), "soc"
        if policy == "hybrid-dynamic":
            soc_path = self.relayout_total_ns() + self.soc_prefill_ns(prefill_len)
            pim_path = self.pim_prefill_ns(prefill_len)
            return (pim_path, "pim") if pim_path < soc_path else (soc_path, "soc")
        # facil
        soc_path = self.soc_prefill_ns(prefill_len, pim_layout=True)
        use_dynamic = True if dynamic_offload is None else dynamic_offload
        if use_dynamic:
            pim_path = self.pim_prefill_ns(prefill_len)
            if pim_path < soc_path:
                return pim_path, "pim"
        return soc_path, "soc"

    def decode_total_ns(
        self, prefill_len: int, decode_len: int, on_pim: bool
    ) -> float:
        """Price the decode phase (steps 2..D) on the given unit — the
        public face of :meth:`_decode_total_ns` for serving/reliability
        callers."""
        if prefill_len <= 0 or decode_len <= 0:
            raise ValueError("prefill and decode lengths must be positive")
        return self._decode_total_ns(prefill_len, decode_len, on_pim)

    # ------------------------------------------------------------------
    # dynamic-offload profiling (paper §VI-C)
    # ------------------------------------------------------------------

    def prefill_crossover(self, max_len: int = 1024) -> int:
        """Profiled threshold: smallest prefill length at which the SoC
        path (re-layout + GEMM) beats PIM-executed prefill.  Queries
        shorter than this run their prefill on PIM under the
        hybrid-dynamic baseline."""
        length = 1
        while length <= max_len:
            soc = self.relayout_total_ns() + self.soc_prefill_ns(length)
            pim = self.pim_prefill_ns(length)
            if soc <= pim:
                return length
            length *= 2
        return max_len + 1

    def facil_crossover(self, max_len: int = 1024) -> int:
        """Same profiling for FACIL (no re-layout on the SoC path)."""
        length = 1
        while length <= max_len:
            soc = self.soc_prefill_ns(length, pim_layout=True)
            if soc <= self.pim_prefill_ns(length):
                return length
            length *= 2
        return max_len + 1

    # ------------------------------------------------------------------
    # policies
    # ------------------------------------------------------------------

    def run_query(
        self,
        policy: str,
        prefill_len: int,
        decode_len: int,
        dynamic_offload: Optional[bool] = None,
    ) -> QueryLatency:
        """Price one query under *policy*.

        ``dynamic_offload`` controls whether FACIL also applies the
        prefill-length-based SoC/PIM choice (defaults to True, matching
        the paper's dataset experiments).
        """
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        if prefill_len <= 0 or decode_len <= 0:
            raise ValueError("prefill and decode lengths must be positive")

        breakdown: Dict[str, float] = {}
        if policy == "soc-only":
            ttft = self.soc_prefill_ns(prefill_len)
            breakdown["prefill_soc"] = ttft
            decode = self._decode_total_ns(prefill_len, decode_len, on_pim=False)
            breakdown["decode_soc"] = decode
        elif policy == "hybrid-static":
            relayout = self.relayout_total_ns()
            gemm = self.soc_prefill_ns(prefill_len)
            ttft = relayout + gemm
            breakdown["relayout"] = relayout
            breakdown["prefill_soc"] = gemm
            decode = self._decode_total_ns(prefill_len, decode_len, on_pim=True)
            breakdown["decode_pim"] = decode
        elif policy == "hybrid-dynamic":
            soc_path = self.relayout_total_ns() + self.soc_prefill_ns(prefill_len)
            pim_path = self.pim_prefill_ns(prefill_len)
            if pim_path < soc_path:
                ttft = pim_path
                breakdown["prefill_pim"] = pim_path
            else:
                ttft = soc_path
                breakdown["relayout"] = self.relayout_total_ns()
                breakdown["prefill_soc"] = ttft - breakdown["relayout"]
            decode = self._decode_total_ns(prefill_len, decode_len, on_pim=True)
            breakdown["decode_pim"] = decode
        else:  # facil
            use_dynamic = True if dynamic_offload is None else dynamic_offload
            soc_path = self.soc_prefill_ns(prefill_len, pim_layout=True)
            if use_dynamic:
                pim_path = self.pim_prefill_ns(prefill_len)
                if pim_path < soc_path:
                    ttft = pim_path
                    breakdown["prefill_pim"] = pim_path
                else:
                    ttft = soc_path
                    breakdown["prefill_soc"] = soc_path
            else:
                ttft = soc_path
                breakdown["prefill_soc"] = soc_path
            decode = self._decode_total_ns(prefill_len, decode_len, on_pim=True)
            breakdown["decode_pim"] = decode

        return QueryLatency(
            policy=policy,
            prefill_tokens=prefill_len,
            decode_tokens=decode_len,
            ttft_ns=ttft,
            ttlt_ns=ttft + decode,
            breakdown=breakdown,
        )
