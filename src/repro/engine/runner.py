"""Sweep runners: the experiment loops behind every figure/table.

Each function mirrors one evaluation axis of the paper:

* :func:`ttft_speedup_sweep` — Fig. 13 (TTFT vs prefill length);
* :func:`ttlt_speedup_grid` — Fig. 14 (TTLT vs prefill:decode ratio);
* :func:`dataset_eval` — Figs. 15/16 (sampled length traces, all four
  policies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.metrics import QueryLatency, geomean, speedup
from repro.engine.policies import POLICIES, InferenceEngine
from repro.llm.datasets import DatasetSpec, QueryTrace, sample_trace
from repro.platforms.specs import PlatformSpec

__all__ = [
    "SweepPoint",
    "DatasetResult",
    "ttft_speedup_sweep",
    "ttlt_speedup_grid",
    "dataset_eval",
]


@dataclass(frozen=True)
class SweepPoint:
    """One (prefill, decode) configuration's result pair."""

    prefill: int
    decode: int
    baseline: QueryLatency
    facil: QueryLatency

    @property
    def ttft_speedup(self) -> float:
        return speedup(self.baseline.ttft_ns, self.facil.ttft_ns)

    @property
    def ttlt_speedup(self) -> float:
        return speedup(self.baseline.ttlt_ns, self.facil.ttlt_ns)


def ttft_speedup_sweep(
    engine: InferenceEngine,
    prefill_lengths: Sequence[int] = (8, 16, 32, 64, 128),
    decode_len: int = 64,
    baseline_policy: str = "hybrid-static",
) -> List[SweepPoint]:
    """TTFT speedup of FACIL over the baseline across prefill lengths
    (Fig. 13; FACIL without dynamic offload, as in the single-query
    evaluation)."""
    points = []
    for prefill in prefill_lengths:
        base = engine.run_query(baseline_policy, prefill, decode_len)
        facil = engine.run_query("facil", prefill, decode_len, dynamic_offload=False)
        points.append(SweepPoint(prefill, decode_len, base, facil))
    return points


def ttlt_speedup_grid(
    engine: InferenceEngine,
    prefill_lengths: Sequence[int] = (16, 32, 64, 128),
    decode_lengths: Sequence[int] = (16, 32, 64, 128, 256),
    baseline_policy: str = "hybrid-static",
) -> List[SweepPoint]:
    """TTLT speedup across the prefill x decode grid (Fig. 14)."""
    points = []
    for prefill in prefill_lengths:
        for decode in decode_lengths:
            base = engine.run_query(baseline_policy, prefill, decode)
            facil = engine.run_query("facil", prefill, decode, dynamic_offload=False)
            points.append(SweepPoint(prefill, decode, base, facil))
    return points


@dataclass(frozen=True)
class DatasetResult:
    """Per-query latencies of every policy over one sampled trace."""

    dataset: str
    platform: str
    n_queries: int
    ttft_ns: Dict[str, List[float]]
    ttlt_ns: Dict[str, List[float]]

    def mean_ttft_ns(self, policy: str) -> float:
        if self.n_queries <= 0:
            raise ValueError("result holds no queries; trace was empty")
        return sum(self.ttft_ns[policy]) / self.n_queries

    def mean_ttlt_ns(self, policy: str) -> float:
        if self.n_queries <= 0:
            raise ValueError("result holds no queries; trace was empty")
        return sum(self.ttlt_ns[policy]) / self.n_queries

    def ttft_speedup_over(self, baseline: str, policy: str = "facil") -> float:
        """Geomean of per-query TTFT speedups (the paper's aggregation)."""
        return geomean(
            b / f for b, f in zip(self.ttft_ns[baseline], self.ttft_ns[policy])
        )

    def ttlt_speedup_over(self, baseline: str, policy: str = "facil") -> float:
        return geomean(
            b / f for b, f in zip(self.ttlt_ns[baseline], self.ttlt_ns[policy])
        )


def dataset_eval(
    engine: InferenceEngine,
    dataset: DatasetSpec,
    n_queries: int = 100,
    seed: int = 0,
    policies: Sequence[str] = ("soc-only", "hybrid-static", "hybrid-dynamic", "facil"),
) -> DatasetResult:
    """Run every policy over a sampled length trace (Figs. 15/16).

    FACIL runs with dynamic offload enabled, matching the paper's dataset
    experiments.

    Raises:
        ValueError: for a non-positive query count, an empty policy list,
            an unknown policy, or an empty sampled trace — all of which
            would otherwise surface as a ZeroDivisionError or KeyError
            deep inside the aggregation.
    """
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    if not policies:
        raise ValueError("policies must not be empty")
    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        raise ValueError(f"unknown policies {unknown}; known: {POLICIES}")
    trace = sample_trace(dataset, n_queries, seed)
    if not trace:
        raise ValueError(
            f"dataset {dataset.name!r} sampled an empty trace for "
            f"n_queries={n_queries}"
        )
    ttft: Dict[str, List[float]] = {p: [] for p in policies}
    ttlt: Dict[str, List[float]] = {p: [] for p in policies}
    for query in trace:
        for policy in policies:
            result = engine.run_query(
                policy,
                query.prefill_tokens,
                query.decode_tokens,
                dynamic_offload=True if policy == "facil" else None,
            )
            ttft[policy].append(result.ttft_ns)
            ttlt[policy].append(result.ttlt_ns)
    return DatasetResult(
        dataset=dataset.name,
        platform=engine.platform.name,
        n_queries=len(trace),
        ttft_ns=ttft,
        ttlt_ns=ttlt,
    )
