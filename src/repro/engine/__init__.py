"""Inference engine: execution policies, metrics, and sweep runners."""

from repro.engine.energy import EnergyModel, QueryEnergy, query_energy
from repro.engine.metrics import QueryLatency, geomean, speedup
from repro.engine.policies import PIM_DISPATCH_NS, POLICIES, InferenceEngine
from repro.engine.profiling import (
    DecodeBreakdown,
    OffloadSpeedup,
    UtilizationPoint,
    decode_time_breakdown,
    gemv_utilization,
    pim_offload_speedup,
)
from repro.engine.session import ChatSession, TurnLatency
from repro.engine.runner import (
    DatasetResult,
    SweepPoint,
    dataset_eval,
    ttft_speedup_sweep,
    ttlt_speedup_grid,
)

__all__ = [
    "DatasetResult",
    "EnergyModel",
    "QueryEnergy",
    "query_energy",
    "DecodeBreakdown",
    "OffloadSpeedup",
    "UtilizationPoint",
    "decode_time_breakdown",
    "gemv_utilization",
    "pim_offload_speedup",
    "InferenceEngine",
    "PIM_DISPATCH_NS",
    "POLICIES",
    "ChatSession",
    "QueryLatency",
    "TurnLatency",
    "SweepPoint",
    "dataset_eval",
    "geomean",
    "speedup",
    "ttft_speedup_sweep",
    "ttlt_speedup_grid",
]
