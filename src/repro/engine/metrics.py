"""Latency metrics: TTFT, TTLT, and aggregation helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

__all__ = ["QueryLatency", "geomean", "speedup"]


@dataclass(frozen=True)
class QueryLatency:
    """Latency of one query under one execution policy.

    ``ttft_ns`` — time to first token (prefill, plus any re-layout).
    ``ttlt_ns`` — time to last token (TTFT + all decode steps).
    ``breakdown`` — named components (ns); keys depend on the policy.
    """

    policy: str
    prefill_tokens: int
    decode_tokens: int
    ttft_ns: float
    ttlt_ns: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def ttft_ms(self) -> float:
        return self.ttft_ns / 1e6

    @property
    def ttlt_ms(self) -> float:
        return self.ttlt_ns / 1e6

    @property
    def decode_ns(self) -> float:
        return self.ttlt_ns - self.ttft_ns


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregation for speedups)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline_ns: float, improved_ns: float) -> float:
    """How many times faster *improved* is than *baseline*."""
    if improved_ns <= 0:
        raise ValueError("improved latency must be positive")
    return baseline_ns / improved_ns
