"""Latency metrics: TTFT, TTLT, and aggregation helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

__all__ = ["LatencyStats", "QueryLatency", "geomean", "percentile", "speedup"]


@dataclass(frozen=True)
class QueryLatency:
    """Latency of one query under one execution policy.

    ``ttft_ns`` — time to first token (prefill, plus any re-layout).
    ``ttlt_ns`` — time to last token (TTFT + all decode steps).
    ``breakdown`` — named components (ns); keys depend on the policy.
    """

    policy: str
    prefill_tokens: int
    decode_tokens: int
    ttft_ns: float
    ttlt_ns: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def ttft_ms(self) -> float:
        return self.ttft_ns / 1e6

    @property
    def ttlt_ms(self) -> float:
        return self.ttlt_ns / 1e6

    @property
    def decode_ns(self) -> float:
        return self.ttlt_ns - self.ttft_ns


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile (matches ``numpy.percentile``'s
    default method) without requiring an array."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * p / 100.0
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[lower])
    frac = rank - lower
    return float(ordered[lower] * (1.0 - frac) + ordered[upper] * frac)


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of one latency population (serving reports)."""

    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencyStats":
        if not values:
            return cls(count=0, mean_ns=0.0, p50_ns=0.0, p99_ns=0.0, max_ns=0.0)
        return cls(
            count=len(values),
            mean_ns=sum(values) / len(values),
            p50_ns=percentile(values, 50.0),
            p99_ns=percentile(values, 99.0),
            max_ns=float(max(values)),
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ns / 1e6,
            "p50_ms": self.p50_ns / 1e6,
            "p99_ms": self.p99_ns / 1e6,
            "max_ms": self.max_ns / 1e6,
        }


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregation for speedups)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline_ns: float, improved_ns: float) -> float:
    """How many times faster *improved* is than *baseline*."""
    if improved_ns <= 0:
        raise ValueError("improved latency must be positive")
    return baseline_ns / improved_ns
