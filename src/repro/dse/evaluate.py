"""Point evaluation: one sweep point -> one metrics dict.

The evaluator is the bridge between a :class:`~repro.dse.spec.SweepPoint`
and the existing simulation backends: it builds the platform's
:class:`InferenceEngine`, samples the point's workload shape on the
point's own seeded RNG substream, and runs the serving runtime — the
legacy loop or the paged-KV continuous-batching scheduler, selected by
the ``kv_blocks`` axis exactly as ``repro-facil serve`` would.

Every metric is a plain float so the result is JSON-stable and
byte-comparable across worker processes.  The four **objective**
metrics the Pareto layer trades off:

* ``goodput_qps``        (maximize) — served requests per simulated s;
* ``ttft_p99_ms``        (minimize) — served tail first-token latency;
* ``kv_mib``             (minimize) — KV pool footprint actually
  reserved (0 for the legacy loop);
* ``gemm_slowdown_pct``  (minimize) — the platform's Table III GEMM
  penalty for keeping weights PIM-resident, paid only by the ``facil``
  mapping family.

``evaluate_payload`` is the picklable worker entry point used by the
driver's process pool; it must stay a module-level function.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.engine.policies import InferenceEngine
from repro.llm.datasets import ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE, DatasetSpec
from repro.platforms.specs import ALL_PLATFORMS, PlatformSpec
from repro.dse.spec import WORKLOADS

__all__ = ["DATASETS", "evaluate_point", "evaluate_payload"]

DATASETS: Dict[str, DatasetSpec] = {
    ALPACA_LIKE.name: ALPACA_LIKE,
    HUMANEVAL_AUTOCOMPLETE_LIKE.name: HUMANEVAL_AUTOCOMPLETE_LIKE,
}

#: per-process engine memo: workers evaluate many points on the same
#: platform and the engine's pricing caches are reusable across them
_ENGINES: Dict[str, InferenceEngine] = {}


def _platform(name: str) -> PlatformSpec:
    for platform in ALL_PLATFORMS:
        if platform.name == name:
            return platform
    known = ", ".join(p.name for p in ALL_PLATFORMS)
    raise ValueError(f"unknown platform {name!r}; known: {known}")


def _engine(platform_name: str) -> InferenceEngine:
    engine = _ENGINES.get(platform_name)
    if engine is None:
        engine = InferenceEngine(_platform(platform_name))
        _ENGINES[platform_name] = engine
    return engine


def _workload_spec(kind: str, config: Mapping, workload: Mapping):
    """Build the repro.workloads spec (or None for chat) plus a callable
    producing the extra tenants the workload shape needs."""
    def no_extra(_tenant):
        return []

    if kind == "chat":
        return None, no_extra
    from repro.workloads import (
        CoResidencySpec,
        ExpertPlacementSpec,
        SpeculativeSpec,
    )

    def knob(name: str) -> object:
        return config.get(name, workload[name])

    if kind == "speculative":
        return SpeculativeSpec(
            gamma=int(knob("gamma")),
            acceptance_rate=float(knob("acceptance_rate")),
        ), no_extra
    if kind == "moe":
        return ExpertPlacementSpec(
            n_experts=int(knob("n_experts")),
            experts_per_token=int(knob("experts_per_token")),
            resident_experts=int(knob("resident_experts")),
        ), no_extra
    if kind == "coresident":
        spec = CoResidencySpec(
            secondary_share=float(knob("secondary_share")),
        )

        def secondary(tenant):
            # the primary tenant's qps was already scaled down by the
            # secondary share; the remainder goes to the secondary model
            primary_share = 1.0 - spec.secondary_share
            from dataclasses import replace as _replace

            return [_replace(
                tenant,
                name=spec.secondary_tenant,
                qps=tenant.qps * spec.secondary_share / primary_share,
            )]

        return spec, secondary
    raise ValueError(f"unknown workload kind {kind!r}")


def evaluate_point(config: Mapping, seed: int) -> Dict[str, float]:
    """Run one sweep point and return its metrics.

    *config* is the fully-resolved point config produced by
    :meth:`SweepSpec.points`; *seed* is the point's derived substream
    seed.  The same ``(config, seed)`` pair always returns the same
    metrics — this is the property the resume key and the solo-repro
    command lean on.
    """
    # Local imports keep `import repro.dse` light for spec-only users.
    from repro.serving import ServingConfig, ServingRuntime, poisson_workload
    from repro.serving.workload import TenantSpec

    engine = _engine(str(config["platform"]))
    workload = WORKLOADS[str(config["workload"])]
    dataset = DATASETS[str(workload["dataset"])]
    mean_turns = float(config.get("mean_turns", workload["mean_turns"]))
    think_time_ms = float(
        config.get("think_time_ms", workload["think_time_ms"])
    )
    kind = str(workload.get("kind", "chat"))
    spec, extra_tenants = _workload_spec(kind, config, workload)
    tenant = TenantSpec(
        name=dataset.name,
        dataset=dataset,
        policy=str(config["mapping"]),
        qps=float(config["qps"]) * (
            1.0 - float(config.get(
                "secondary_share", workload.get("secondary_share", 0.0)
            ))
            if kind == "coresident"
            else 1.0
        ),
        deadline_ms=float(config["deadline_ms"]),
        mean_turns=mean_turns,
        think_time_ms=think_time_ms,
    )
    requests = poisson_workload(
        [tenant] + extra_tenants(tenant),
        duration_ms=float(config["duration_ms"]),
        seed=seed,
    )
    serving_config = ServingConfig(
        seed=seed,
        queue_capacity=int(config["queue_capacity"]),
        shed_policy=str(config["shed"]),
        kv_blocks=int(config["kv_blocks"]) if kind == "chat" else 0,
        block_tokens=int(config["block_tokens"]),
    )
    report = ServingRuntime(engine, serving_config, workload=spec).run(requests)

    kv_mib = 0.0
    if report.kv is not None:
        kv_mib = (
            float(report.kv["num_blocks"]) * float(report.kv["block_bytes"])
        ) / float(1 << 20)
    gemm_slowdown_pct = (
        engine.platform.gemm_layout_slowdown * 100.0
        if config["mapping"] == "facil"
        else 0.0
    )
    metrics = {
        "goodput_qps": report.goodput_qps,
        "ttft_p50_ms": report.ttft.p50_ns / 1e6,
        "ttft_p99_ms": report.ttft.p99_ns / 1e6,
        "ttlt_p99_ms": report.ttlt.p99_ns / 1e6,
        "kv_mib": kv_mib,
        "gemm_slowdown_pct": gemm_slowdown_pct,
        "slo_attainment": report.slo_attainment,
        "shed_rate": report.shed_rate,
        "offered": float(report.offered),
        "served": float(report.served),
        "unserved": float(report.unserved),
    }
    if report.workload is not None:
        # workload loops surface their conservation oracle as a metric
        # so a sweep can gate on it (chat points keep their exact keys)
        metrics["workload_conservation_findings"] = float(
            report.workload.get("conservation_findings", 0)
        )
    return metrics


def evaluate_payload(
    payload: Tuple[int, Dict[str, object], int],
) -> Tuple[int, Dict[str, float]]:
    """Process-pool entry: ``(index, config, seed) -> (index, metrics)``."""
    index, config, seed = payload
    return index, evaluate_point(config, seed)
