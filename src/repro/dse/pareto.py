"""Multi-objective aggregation: Pareto frontiers and ranked reports.

Dominance is the standard multi-objective relation: point *a*
dominates *b* when *a* is at least as good on **every** objective and
strictly better on at least one ("good" respecting each objective's
direction).  The frontier is the set of non-dominated points; everything
else is pruned into the dominated list (each dominated point records one
of its dominators, for the report's "why was this pruned" column).

Ranking within the frontier is a deterministic scalarization for
*presentation only* — the frontier itself is the answer.  Each
objective is min-max normalized over the full point set to a utility in
[0, 1] (1 = best observed), and a point's score is the mean utility
across objectives; ties break on point index.  A degenerate objective
(all points equal) contributes nothing to the ordering and is scored
1.0 for everyone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.driver import PointOutcome, SweepResult

__all__ = [
    "OBJECTIVES",
    "FrontierEntry",
    "ParetoReport",
    "dominates",
    "pareto_report",
]

#: ``(metric, direction)`` — the default objective set: throughput vs
#: tail latency vs KV footprint vs the GEMM penalty of PIM residency.
OBJECTIVES: Tuple[Tuple[str, str], ...] = (
    ("goodput_qps", "max"),
    ("ttft_p99_ms", "min"),
    ("kv_mib", "min"),
    ("gemm_slowdown_pct", "min"),
)


def _check_objectives(
    objectives: Sequence[Tuple[str, str]],
    points: Sequence[PointOutcome],
) -> None:
    if not objectives:
        raise ValueError("need at least one objective")
    for metric, direction in objectives:
        if direction not in ("min", "max"):
            raise ValueError(
                f"objective {metric!r} direction must be 'min' or 'max' "
                f"(got {direction!r})"
            )
        for point in points:
            if metric not in point.metrics:
                raise ValueError(
                    f"point {point.index} ({point.config_hash}) has no "
                    f"metric {metric!r}"
                )


def dominates(
    a: PointOutcome,
    b: PointOutcome,
    objectives: Sequence[Tuple[str, str]] = OBJECTIVES,
) -> bool:
    """True when *a* Pareto-dominates *b* under *objectives*."""
    strictly_better = False
    for metric, direction in objectives:
        va, vb = a.metrics[metric], b.metrics[metric]
        if direction == "max":
            if va < vb:
                return False
            if va > vb:
                strictly_better = True
        else:
            if va > vb:
                return False
            if va < vb:
                strictly_better = True
    return strictly_better


@dataclass(frozen=True)
class FrontierEntry:
    """One frontier point with its presentation rank and score."""

    rank: int
    point: PointOutcome
    score: float
    repro: str


@dataclass(frozen=True)
class ParetoReport:
    """Frontier + pruning outcome over one sweep."""

    result: SweepResult
    objectives: Tuple[Tuple[str, str], ...]
    frontier: Tuple[FrontierEntry, ...]
    #: ``(dominated point, index of one dominator)`` pairs, point order
    dominated: Tuple[Tuple[PointOutcome, int], ...]

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "objectives": [list(pair) for pair in self.objectives],
            "n_points": len(self.result.points),
            "frontier_size": len(self.frontier),
            "frontier": [
                {
                    "rank": entry.rank,
                    "index": entry.point.index,
                    "config_hash": entry.point.config_hash,
                    "seed": entry.point.seed,
                    "score": entry.score,
                    "coords": {k: v for k, v in entry.point.coords},
                    "metrics": {
                        k: entry.point.metrics[k]
                        for k in sorted(entry.point.metrics)
                    },
                    "repro": entry.repro,
                }
                for entry in self.frontier
            ],
            "dominated": [
                {
                    "index": point.index,
                    "config_hash": point.config_hash,
                    "dominated_by": dominator,
                }
                for point, dominator in self.dominated
            ],
        }

    def report_dict(self) -> Dict[str, object]:
        """Full machine-readable report: sweep + frontier."""
        payload = self.result.to_dict()
        payload["pareto"] = self.to_dict()
        return payload

    def to_json(self) -> str:
        return json.dumps(self.report_dict(), indent=2, sort_keys=True)

    def render(self, top: Optional[int] = None) -> str:
        """Ranked text report (the CLI's output)."""
        lines: List[str] = []
        objectives = ", ".join(
            f"{metric} ({direction})" for metric, direction in self.objectives
        )
        lines.append(
            f"pareto frontier : {len(self.frontier)} of "
            f"{len(self.result.points)} points non-dominated"
        )
        lines.append(f"objectives      : {objectives}")
        entries = list(self.frontier)
        if top is not None:
            entries = entries[:top]
        header = (
            f"{'rank':>4s}  {'hash':12s} {'score':>6s}  "
            f"{'platform':20s} {'mapping':14s} {'shed':11s} "
            f"{'kv':>5s} {'workload':14s}  "
            f"{'goodput':>8s} {'p99 TTFT':>9s} {'KV MiB':>7s} {'GEMM%':>6s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for entry in entries:
            point = entry.point
            # config carries every axis (swept or pinned), unlike coords
            coords = point.config
            m = point.metrics
            lines.append(
                f"{entry.rank:>4d}  {point.config_hash:12s} "
                f"{entry.score:>6.3f}  "
                f"{str(coords.get('platform', '-')):20s} "
                f"{str(coords.get('mapping', '-')):14s} "
                f"{str(coords.get('shed', '-')):11s} "
                f"{str(coords.get('kv_blocks', '-')):>5s} "
                f"{str(coords.get('workload', '-')):14s}  "
                f"{m['goodput_qps']:>8.3f} {m['ttft_p99_ms']:>9.1f} "
                f"{m['kv_mib']:>7.1f} {m['gemm_slowdown_pct']:>6.2f}"
            )
        lines.append("")
        lines.append("solo repro (same config_hash + metrics, standalone):")
        for entry in entries:
            lines.append(f"  [{entry.rank}] {entry.repro}")
        return "\n".join(lines)


def _utilities(
    points: Sequence[PointOutcome],
    objectives: Sequence[Tuple[str, str]],
) -> List[float]:
    """Mean min-max utility per point, normalized over *points*."""
    scores = [0.0] * len(points)
    for metric, direction in objectives:
        values = [p.metrics[metric] for p in points]
        lo, hi = min(values), max(values)
        span = hi - lo
        for i, value in enumerate(values):
            if span == 0.0:
                utility = 1.0
            elif direction == "max":
                utility = (value - lo) / span
            else:
                utility = (hi - value) / span
            scores[i] += utility
    return [score / len(objectives) for score in scores]


def pareto_report(
    result: SweepResult,
    objectives: Sequence[Tuple[str, str]] = OBJECTIVES,
    repro_prefix: str = "repro-facil dse",
) -> ParetoReport:
    """Split *result* into frontier and dominated points and rank the
    frontier.  *repro_prefix* is the CLI invocation (sweep-level flags
    included) each entry's solo-repro command is built from."""
    points = result.points
    _check_objectives(objectives, points)
    dominated: List[Tuple[PointOutcome, int]] = []
    frontier_points: List[PointOutcome] = []
    for point in points:
        dominator = None
        for other in points:
            if other.index != point.index and dominates(other, point, objectives):
                dominator = other.index
                break
        if dominator is None:
            frontier_points.append(point)
        else:
            dominated.append((point, dominator))

    scores = _utilities(list(points), objectives)
    # key by point index explicitly: indices need not be positions
    utilities = {p.index: s for p, s in zip(points, scores)}
    ranked = sorted(
        frontier_points, key=lambda p: (-utilities[p.index], p.index)
    )
    frontier = tuple(
        FrontierEntry(
            rank=rank + 1,
            point=point,
            score=utilities[point.index],
            repro=(
                f"{repro_prefix} --only {point.config_hash} "
                f"--point-seed {point.seed}"
            ),
        )
        for rank, point in enumerate(ranked)
    )
    return ParetoReport(
        result=result,
        objectives=tuple(objectives),
        frontier=frontier,
        dominated=tuple(dominated),
    )
