"""Design-space exploration: declarative sweeps over the simulator.

``repro.dse`` turns the serving/KV/fleet machinery into a decision
tool: declare a grid (:mod:`repro.dse.spec`), fan it out over worker
processes with per-point seed substreams (:mod:`repro.dse.driver`),
evaluate each point through the real serving runtime
(:mod:`repro.dse.evaluate`), and reduce into Pareto frontiers with a
ranked, reproducible report (:mod:`repro.dse.pareto`).  The CLI face is
``repro-facil dse``; the nightly bench pins the whole pipeline
byte-identical across worker counts.
"""

from repro.dse.driver import PointOutcome, SweepResult, load_reuse, run_sweep
from repro.dse.evaluate import evaluate_point
from repro.dse.pareto import (
    OBJECTIVES,
    FrontierEntry,
    ParetoReport,
    dominates,
    pareto_report,
)
from repro.dse.spec import (
    AXIS_ORDER,
    WORKLOADS,
    SweepPoint,
    SweepSpec,
    default_sweep,
    derive_point_seed,
    parse_axis_overrides,
)

__all__ = [
    "AXIS_ORDER",
    "OBJECTIVES",
    "WORKLOADS",
    "FrontierEntry",
    "ParetoReport",
    "PointOutcome",
    "SweepPoint",
    "SweepSpec",
    "SweepResult",
    "default_sweep",
    "derive_point_seed",
    "dominates",
    "evaluate_point",
    "load_reuse",
    "pareto_report",
    "parse_axis_overrides",
    "run_sweep",
]
