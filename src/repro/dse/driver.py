"""Parallel sweep driver with order-independent reduction.

The driver fans sweep points out across a ``ProcessPoolExecutor`` and
reduces results **in point order**: outcomes land in a slot keyed by
the point index, so worker count, scheduling, and completion order can
never change the output — ``run_sweep(spec, workers=1)`` and
``run_sweep(spec, workers=4)`` serialize byte-identically, and the
nightly bench asserts exactly that.

Resume: :func:`load_reuse` reads a previous sweep report and keys every
completed point by ``(config_hash, seed)``.  ``run_sweep(...,
reuse=...)`` skips matching points and re-evaluates only the rest; the
final report is still byte-identical to a fresh run because a reused
point's metrics are, by the determinism contract, exactly what a fresh
evaluation would have produced.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.dse.evaluate import evaluate_payload, evaluate_point
from repro.dse.spec import SweepPoint, SweepSpec
from repro.telemetry.bench import hash_config

__all__ = ["PointOutcome", "SweepResult", "load_reuse", "run_sweep"]

#: reuse key: one completed evaluation is identified by its config hash
#: and substream seed
ReuseKey = Tuple[str, int]


@dataclass(frozen=True)
class PointOutcome:
    """One evaluated sweep point (metrics + identity)."""

    index: int
    coords: Tuple[Tuple[str, object], ...]
    config: Dict[str, object]
    config_hash: str
    seed: int
    metrics: Dict[str, float]
    #: True when the metrics came from a resume file, not a fresh run
    #: (excluded from the serialized report to keep resumed and fresh
    #: sweeps byte-identical)
    reused: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "coords": {name: value for name, value in self.coords},
            "config": dict(self.config),
            "config_hash": self.config_hash,
            "seed": self.seed,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }


@dataclass(frozen=True)
class SweepResult:
    """All point outcomes of one sweep, in point order."""

    seed: int
    spec_config: Dict[str, object]
    spec_hash: str
    points: Tuple[PointOutcome, ...]

    @property
    def evaluated(self) -> int:
        return sum(1 for p in self.points if not p.reused)

    @property
    def reused(self) -> int:
        return sum(1 for p in self.points if p.reused)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "spec": dict(self.spec_config),
            "spec_hash": self.spec_hash,
            "n_points": len(self.points),
            "points": [p.to_dict() for p in self.points],
        }


def load_reuse(path: str) -> Dict[ReuseKey, Dict[str, float]]:
    """Read a previous sweep report and index its completed points.

    Tolerates a missing file (returns an empty mapping) so ``--resume``
    works on the first run too; a malformed file is an error.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
    except FileNotFoundError:
        return {}
    reuse: Dict[ReuseKey, Dict[str, float]] = {}
    for point in raw.get("points", ()):
        try:
            key = (str(point["config_hash"]), int(point["seed"]))
            metrics = {
                str(k): float(v) for k, v in point["metrics"].items()
            }
        except (KeyError, TypeError, ValueError):
            raise ValueError(
                f"malformed sweep report {path!r}: every point needs "
                f"config_hash, seed, and a numeric metrics mapping"
            )
        reuse[key] = metrics
    return reuse


def _outcome(
    point: SweepPoint, metrics: Dict[str, float], reused: bool
) -> PointOutcome:
    return PointOutcome(
        index=point.index,
        coords=point.coords,
        config=point.config,
        config_hash=point.config_hash,
        seed=point.seed,
        metrics=metrics,
        reused=reused,
    )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    reuse: Optional[Mapping[ReuseKey, Dict[str, float]]] = None,
) -> SweepResult:
    """Evaluate every point of *spec*, fanning out over *workers*
    processes, and reduce in point order."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    points = spec.points()
    reuse = reuse or {}
    slots: List[Optional[PointOutcome]] = [None] * len(points)
    pending: List[SweepPoint] = []
    for point in points:
        cached = reuse.get((point.config_hash, point.seed))
        if cached is not None:
            slots[point.index] = _outcome(point, dict(cached), reused=True)
        else:
            pending.append(point)

    if workers == 1 or len(pending) <= 1:
        for point in pending:
            slots[point.index] = _outcome(
                point, evaluate_point(point.config, point.seed), reused=False
            )
    else:
        payloads = [(p.index, p.config, p.seed) for p in pending]
        by_index = {p.index: p for p in pending}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map yields in submission order, but the reduction
            # below is keyed by point index anyway: completion order is
            # irrelevant by construction.
            for index, metrics in pool.map(evaluate_payload, payloads):
                slots[index] = _outcome(by_index[index], metrics, reused=False)

    outcomes = []
    for slot in slots:
        if slot is None:
            raise RuntimeError("sweep reduction left an unevaluated point")
        outcomes.append(slot)
    spec_config = spec.spec_config()
    return SweepResult(
        seed=spec.seed,
        spec_config=spec_config,
        spec_hash=hash_config(spec_config),
        points=tuple(outcomes),
    )
