"""Declarative sweep specifications for design-space exploration.

A :class:`SweepSpec` names an ordered grid of **axes** — platform x
mapping family x shedding policy x KV pool size x workload shape — plus
the sweep-level serving knobs shared by every point (arrival rate,
horizon, deadline, queue bound).  :meth:`SweepSpec.points` expands the
grid into an ordered list of :class:`SweepPoint`\\ s: the point index is
the position in the cartesian product taken in **axis declaration
order**, so the expansion is a pure function of the spec and never
depends on worker count, completion order, or hash salts.

Identity and reproducibility:

* ``config_hash`` — :func:`repro.telemetry.bench.hash_config` over the
  point's fully-resolved config dict (axes values + sweep knobs +
  applied overrides).  Two points with equal configs are an error: the
  hash is the resume/repro key.
* ``seed`` — derived per point by :func:`derive_point_seed` from the
  sweep seed and the point index, so every point runs on its own RNG
  substream and a single point can be re-run standalone with
  ``repro-facil dse --only <config_hash> --point-seed <seed>``.

**Overrides** patch sweep-level knobs for the subset of points whose
axis coordinates match: ``(("mapping", "soc-only"),)`` -> ``(("qps",
1.0),)`` gives the SoC-only family its own arrival rate.  Only the
knobs in :data:`OVERRIDABLE` may be patched — axis values are identity,
not tuning.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.engine.policies import POLICIES
from repro.platforms.specs import ALL_PLATFORMS
from repro.serving.queue import SHED_POLICIES
from repro.telemetry.bench import hash_config

__all__ = [
    "AXIS_ORDER",
    "OVERRIDABLE",
    "PLATFORM_NAMES",
    "WORKLOADS",
    "SweepPoint",
    "SweepSpec",
    "default_sweep",
    "derive_point_seed",
    "parse_axis_overrides",
]

PLATFORM_NAMES: Tuple[str, ...] = tuple(p.name for p in ALL_PLATFORMS)

#: Workload shapes: a named bundle of dataset + conversation behavior.
#: (Insertion order is the axis-domain order — dicts are ordered.)
WORKLOADS: Dict[str, Dict[str, object]] = {
    "chat": {
        "dataset": "alpaca-like",
        "mean_turns": 1.0,
        "think_time_ms": 2000.0,
    },
    "autocomplete": {
        "dataset": "humaneval-autocomplete-like",
        "mean_turns": 1.0,
        "think_time_ms": 2000.0,
    },
    "multiturn-chat": {
        "dataset": "alpaca-like",
        "mean_turns": 3.0,
        "think_time_ms": 1500.0,
    },
    # repro.workloads shapes: a "kind" key switches the evaluator onto a
    # workload loop (absent = legacy chat serving, so the three entries
    # above keep their exact configs and hashes)
    "speculative": {
        "dataset": "alpaca-like",
        "mean_turns": 1.0,
        "think_time_ms": 2000.0,
        "kind": "speculative",
        "gamma": 4,
        "acceptance_rate": 0.8,
    },
    "moe": {
        "dataset": "alpaca-like",
        "mean_turns": 1.0,
        "think_time_ms": 2000.0,
        "kind": "moe",
        "n_experts": 8,
        "experts_per_token": 2,
        "resident_experts": 4,
    },
    "coresident": {
        "dataset": "alpaca-like",
        "mean_turns": 1.0,
        "think_time_ms": 2000.0,
        "kind": "coresident",
        "secondary_share": 0.5,
    },
}

#: Canonical axis order; the cartesian product (and therefore every
#: point index) walks the axes in this order.
AXIS_ORDER: Tuple[str, ...] = (
    "platform", "mapping", "shed", "kv_blocks", "workload",
)

#: Closed axis domains (``kv_blocks`` is any non-negative int).
_AXIS_DOMAINS: Dict[str, Tuple[object, ...]] = {
    "platform": PLATFORM_NAMES,
    "mapping": POLICIES,
    "shed": SHED_POLICIES,
    "workload": tuple(WORKLOADS),
}

#: Default value of each axis when a sweep does not declare it.
_AXIS_DEFAULTS: Dict[str, object] = {
    "platform": "jetson-agx-orin",
    "mapping": "facil",
    "shed": "reject",
    "kv_blocks": 0,
    "workload": "chat",
}

#: Sweep-level knobs an override may patch per point.
OVERRIDABLE: Tuple[str, ...] = (
    "duration_ms", "qps", "deadline_ms", "queue_capacity",
    "block_tokens", "mean_turns", "think_time_ms",
    # repro.workloads knobs (no-ops for plain-chat workload shapes)
    "gamma", "acceptance_rate",
    "n_experts", "experts_per_token", "resident_experts",
    "secondary_share",
)

#: Seed-substream constants (distinct from the fleet's, so a DSE point
#: never shares a stream with a fleet device at the same base seed).
_SEED_MUL = 2_000_003
_SEED_STEP = 104_729


def derive_point_seed(sweep_seed: int, point_index: int) -> int:
    """Deterministic per-point RNG substream seed."""
    if point_index < 0:
        raise ValueError("point_index must be non-negative")
    return sweep_seed * _SEED_MUL + _SEED_STEP * (point_index + 1)


def _validate_axis(name: str, values: Sequence[object]) -> Tuple[object, ...]:
    if not values:
        raise ValueError(f"axis {name!r} has no values")
    if len(set(map(str, values))) != len(values):
        raise ValueError(f"axis {name!r} repeats a value: {values!r}")
    if name == "kv_blocks":
        out: List[object] = []
        for v in values:
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                raise ValueError(
                    f"axis 'kv_blocks' values must be non-negative ints "
                    f"(got {v!r})"
                )
            out.append(v)
        return tuple(out)
    domain = _AXIS_DOMAINS.get(name)
    if domain is None:
        known = ", ".join(AXIS_ORDER)
        raise ValueError(f"unknown axis {name!r}; known: {known}")
    for v in values:
        if v not in domain:
            raise ValueError(
                f"axis {name!r} value {v!r} not in domain {domain!r}"
            )
    return tuple(values)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved grid point of a sweep."""

    index: int
    coords: Tuple[Tuple[str, object], ...]
    config: Dict[str, object]
    config_hash: str
    seed: int

    def coord(self, axis: str) -> object:
        for name, value in self.coords:
            if name == axis:
                return value
        raise KeyError(axis)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid over the serving simulator's design space."""

    seed: int = 0
    duration_ms: float = 8000.0
    qps: float = 2.0
    deadline_ms: float = 10_000.0
    queue_capacity: int = 8
    block_tokens: int = 16
    #: ordered ``(axis, values)`` pairs; product order == declaration order
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    #: ``(match, patch)`` pairs: when every ``(axis, value)`` in *match*
    #: equals the point's coordinates, apply the ``(knob, value)``
    #: pairs in *patch*
    overrides: Tuple[
        Tuple[Tuple[Tuple[str, object], ...], Tuple[Tuple[str, object], ...]],
        ...,
    ] = ()

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if self.block_tokens <= 0:
            raise ValueError("block_tokens must be positive")
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        seen = []
        validated = []
        for name, values in self.axes:
            if name in seen:
                raise ValueError(f"axis {name!r} declared twice")
            seen.append(name)
            validated.append((name, _validate_axis(name, values)))
        object.__setattr__(self, "axes", tuple(validated))
        for match, patch in self.overrides:
            for axis, _ in match:
                if axis not in seen:
                    raise ValueError(
                        f"override matches on {axis!r}, which is not a "
                        f"declared axis"
                    )
            for knob, _ in patch:
                if knob not in OVERRIDABLE:
                    raise ValueError(
                        f"override patches {knob!r}; only {OVERRIDABLE} "
                        f"may be patched per point"
                    )

    # ------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def base_config(self) -> Dict[str, object]:
        """Sweep-level knobs shared by every point (pre-override)."""
        return {
            "duration_ms": self.duration_ms,
            "qps": self.qps,
            "deadline_ms": self.deadline_ms,
            "queue_capacity": self.queue_capacity,
            "block_tokens": self.block_tokens,
        }

    def spec_config(self) -> Dict[str, object]:
        """The whole spec as a JSON-stable dict (hashed into the sweep's
        own ``config_hash``)."""
        config = self.base_config()
        config["axes"] = {name: list(values) for name, values in self.axes}
        config["overrides"] = [
            {
                "match": {axis: value for axis, value in match},
                "patch": {knob: value for knob, value in patch},
            }
            for match, patch in self.overrides
        ]
        return config

    def points(self) -> List[SweepPoint]:
        """Expand the grid, in axis-declaration product order."""
        names = [name for name, _ in self.axes]
        domains = [values for _, values in self.axes]
        points: List[SweepPoint] = []
        by_hash: Dict[str, int] = {}
        for index, combo in enumerate(itertools.product(*domains)):
            coords = tuple(zip(names, combo))
            config = self.base_config()
            for name, value in coords:
                config[name] = value
            for absent in AXIS_ORDER:
                # Non-swept axes still need a value for the evaluator.
                if absent not in config:
                    config[absent] = _AXIS_DEFAULTS[absent]
            for match, patch in self.overrides:
                if all(config.get(axis) == value for axis, value in match):
                    for knob, value in patch:
                        config[knob] = value
            digest = hash_config(config)
            if digest in by_hash:
                raise ValueError(
                    f"points {by_hash[digest]} and {index} resolve to the "
                    f"same config (hash {digest}); the sweep grid is "
                    f"degenerate"
                )
            by_hash[digest] = index
            points.append(
                SweepPoint(
                    index=index,
                    coords=coords,
                    config=config,
                    config_hash=digest,
                    seed=derive_point_seed(self.seed, index),
                )
            )
        return points


def default_sweep(seed: int = 0, **knobs: object) -> SweepSpec:
    """The stock exploration grid: 4 platforms x 4 mapping families x
    2 shed policies x 2 KV pool sizes x 2 workload shapes = 128 points.
    """
    return SweepSpec(
        seed=seed,
        axes=(
            ("platform", PLATFORM_NAMES),
            ("mapping", POLICIES),
            ("shed", ("reject", "degrade")),
            ("kv_blocks", (0, 256)),
            ("workload", ("chat", "multiturn-chat")),
        ),
        **knobs,  # type: ignore[arg-type]
    )


def parse_axis_overrides(specs: Sequence[str]) -> List[Tuple[str, Tuple[object, ...]]]:
    """Parse CLI ``--axes name=v1,v2`` strings into axis pairs."""
    axes: List[Tuple[str, Tuple[object, ...]]] = []
    for text in specs:
        name, sep, raw = text.partition("=")
        name = name.strip()
        if not sep or not raw.strip():
            raise ValueError(
                f"bad axis spec {text!r}; expected name=value[,value...]"
            )
        tokens = [tok.strip() for tok in raw.split(",") if tok.strip()]
        if name == "kv_blocks":
            try:
                values: Tuple[object, ...] = tuple(int(tok) for tok in tokens)
            except ValueError:
                raise ValueError(
                    f"axis 'kv_blocks' takes integers (got {raw!r})"
                )
        else:
            values = tuple(tokens)
        axes.append((name, _validate_axis(name, values)))
    return axes
