"""Nested spans on simulated time, one trace per query.

A :class:`Tracer` owns every span of a run.  Call sites open a root span
per query (``begin``) and grow children as the query crosses layers:
serving admission -> engine prefill/decode -> KV cache -> memory
controller -> DRAM channel.  All timestamps are *simulated* nanoseconds
supplied by the caller — the tracer never reads a wall clock, consumes
no randomness, and therefore cannot perturb a run.

Head-based sampling keeps full-fidelity runs cheap: a query is traced
iff ``trace_id % sample_every == 0``, decided once at the root so a
sampled trace is always complete.

Exporters: Chrome-trace JSON (``chrome://tracing`` / Perfetto, complete
``ph:"X"`` events with one thread lane per layer) and JSONL (one span
per line, the adapter format ``repro.analysis.tracelint.lint_span_file``
consumes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["LAYERS", "Span", "SpanHandle", "Tracer"]

#: The layers a query crosses, in stack order.  ``layer`` doubles as
#: the Chrome-trace category and picks the export thread lane.  The
#: trailing ``workload`` lane carries per-request spans from the
#: :mod:`repro.workloads` loops; appending (never reordering) keeps the
#: legacy lanes' export indices stable.
LAYERS: Tuple[str, ...] = (
    "serving", "engine", "kvcache", "controller", "dram", "workload"
)


@dataclass
class Span:
    """One timed interval in a query's life, on simulated time."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    layer: str
    start_ns: float
    end_ns: Optional[float] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        if self.end_ns is None:
            return 0.0
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "layer": self.layer,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "args": dict(self.args),
        }


class SpanHandle:
    """Live handle for an open (or just-closed) span.

    Handles are how span context propagates: a layer that receives a
    handle opens children on it; a layer that receives ``None`` (query
    not sampled) skips tracing entirely.
    """

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def child(
        self, name: str, layer: str, start_ns: float, **args: Any
    ) -> "SpanHandle":
        return self._tracer._open(
            self.span.trace_id, self.span.span_id, name, layer, start_ns, args
        )

    def record(
        self,
        name: str,
        layer: str,
        start_ns: float,
        end_ns: float,
        **args: Any,
    ) -> "SpanHandle":
        """Open and immediately close a child over a known interval."""
        handle = self.child(name, layer, start_ns, **args)
        handle.close(end_ns)
        return handle

    def close(self, end_ns: float, **args: Any) -> None:
        if args:
            self.span.args.update(args)
        self.span.end_ns = float(end_ns)

    def annotate(self, **args: Any) -> None:
        self.span.args.update(args)


class Tracer:
    """Span store with deterministic head sampling and bounded growth."""

    def __init__(self, sample_every: int = 8, max_spans: int = 500_000) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.sample_every = sample_every
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.traces_seen = 0
        self.traces_sampled = 0
        self.dropped_spans = 0
        self._next_span_id = 1

    # -- span creation -------------------------------------------------

    def sampled(self, trace_id: int) -> bool:
        return trace_id % self.sample_every == 0

    def begin(
        self, trace_id: int, name: str, layer: str, start_ns: float, **args: Any
    ) -> Optional[SpanHandle]:
        """Root a new trace; ``None`` means the query was not sampled."""
        self.traces_seen += 1
        if not self.sampled(trace_id):
            return None
        self.traces_sampled += 1
        return self._open(trace_id, None, name, layer, start_ns, args)

    def record(
        self,
        trace_id: int,
        name: str,
        layer: str,
        start_ns: float,
        end_ns: float,
        **args: Any,
    ) -> Optional[SpanHandle]:
        """Root-level closed span (e.g. probe intervals), still sampled."""
        handle = self.begin(trace_id, name, layer, start_ns, **args)
        if handle is not None:
            handle.close(end_ns)
        return handle

    def _open(
        self,
        trace_id: int,
        parent_id: Optional[int],
        name: str,
        layer: str,
        start_ns: float,
        args: Dict[str, Any],
    ) -> SpanHandle:
        if layer not in LAYERS:
            raise ValueError(f"unknown layer {layer!r}; expected one of {LAYERS}")
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            name=name,
            layer=layer,
            start_ns=float(start_ns),
            args=dict(args),
        )
        self._next_span_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            # keep handing out usable handles so call sites stay uniform;
            # the span just is not retained
            self.dropped_spans += 1
        return SpanHandle(self, span)

    # -- bookkeeping ---------------------------------------------------

    def close_all(self, end_ns: float) -> int:
        """Close every still-open span at ``end_ns``; returns how many."""
        closed = 0
        for span in self.spans:
            if span.end_ns is None:
                span.end_ns = float(end_ns)
                span.args.setdefault("force_closed", True)
                closed += 1
        return closed

    def spans_by_layer(self) -> Dict[str, int]:
        out: Dict[str, int] = {layer: 0 for layer in LAYERS}
        for span in self.spans:
            out[span.layer] += 1
        return out

    def stats(self) -> Dict[str, Any]:
        return {
            "traces_seen": self.traces_seen,
            "traces_sampled": self.traces_sampled,
            "sample_every": self.sample_every,
            "spans": len(self.spans),
            "dropped_spans": self.dropped_spans,
            "spans_by_layer": self.spans_by_layer(),
        }

    # -- exporters -----------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """Chrome-trace JSON object: complete events, one lane per layer."""
        events: List[Dict[str, Any]] = []
        present = sorted(
            {span.layer for span in self.spans}, key=LAYERS.index
        )
        for layer in present:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": LAYERS.index(layer) + 1,
                    "args": {"name": layer},
                }
            )
        for span in sorted(self.spans, key=lambda s: (s.start_ns, s.span_id)):
            end_ns = span.end_ns if span.end_ns is not None else span.start_ns
            events.append(
                {
                    "name": span.name,
                    "cat": span.layer,
                    "ph": "X",
                    "pid": 1,
                    "tid": LAYERS.index(span.layer) + 1,
                    "ts": span.start_ns / 1000.0,
                    "dur": max(end_ns - span.start_ns, 0.0) / 1000.0,
                    "args": {
                        **span.args,
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def jsonl_lines(self) -> Iterator[str]:
        for span in self.spans:
            yield json.dumps(span.to_dict(), sort_keys=False)

    def write_chrome(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)
            fh.write("\n")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.jsonl_lines():
                fh.write(line)
                fh.write("\n")
