"""Counter-driven online mapping advisor (DReAM-spirit, advisory only).

DReAM showed DRAM address mappings can be *chosen from observed access
behaviour* rather than configured statically.  FACIL's per-page MapID
mux is exactly the actuator such a loop would drive, so this module
closes the loop in shadow mode: it watches a tensor's physical-address
stream, maintains per-candidate-MapID shadow counters (partial-sum PU
crossings plus per-bank row-buffer hit / miss / conflict counts from a
one-entry shadow row buffer per bank), and recommends a MapID — the
smallest admissible one that minimizes accumulation-group PU crossings,
i.e. the mapping that keeps every matrix row's partial sums inside one
PU while preserving the most low-order interleave for the SoC.

The recommendation is **never applied**.  It is cross-checked against
:func:`repro.core.selector.select_mapping`'s static choice; agreement
is reported, and every disagreement is surfaced as a structured
``AD001`` finding through the analysis plane.

Why crossings decide and the row counters advise: under a candidate
MapID ``k`` below the ideal, each accumulation group (one matrix row)
spans ``row_bytes / (chunk_row_bytes * 2^k)`` PUs, so crossings fall
monotonically in ``k`` and hit zero exactly at the selector's MapID;
when a row cannot fit in a bank's page share (the partitioned Fig. 10
regime) crossings never reach zero and the minimum sits at the largest
admissible MapID — again the selector's choice.  The row-buffer
counters grade *confidence*: a recommendation backed by a high
conflict rate on lower candidates is acting on real locality evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.findings import (
    LEVEL_NOTE,
    LEVEL_WARNING,
    Finding,
    register_rules,
)
from repro.core.bitfield import ilog2
from repro.core.mapping import AddressMapping, Field, pim_optimized_mapping
from repro.core.selector import MatrixConfig, select_mapping
from repro.dram.config import DramOrganization
from repro.pim.config import PimConfig
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "ADVISOR_RULES",
    "AdvisorRecommendation",
    "AdvisorSweep",
    "AdvisorVerdict",
    "CandidateCounters",
    "MappingAdvisor",
    "agreement_sweep",
    "observe_matrix",
]

ADVISOR_RULES: Dict[str, str] = {
    "AD001": "online mapping advisor disagrees with the static selector "
             "(advisory only, never applied)",
    "AD002": "online mapping advisor abstained: too few samples observed "
             "to ground a recommendation",
}
register_rules(ADVISOR_RULES)


@dataclass(frozen=True)
class CandidateCounters:
    """Shadow counters accumulated for one candidate MapID."""

    map_id: int
    pu_crossings: int
    row_hits: int
    row_misses: int
    row_conflicts: int

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    def to_dict(self) -> Dict:
        return {
            "map_id": self.map_id,
            "pu_crossings": self.pu_crossings,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "row_hit_rate": self.row_hit_rate,
        }


@dataclass(frozen=True)
class AdvisorRecommendation:
    """The advisor's per-tensor output; ``map_id is None`` = abstained."""

    tensor: str
    map_id: Optional[int]
    samples: int
    counters: Tuple[CandidateCounters, ...]

    def to_dict(self) -> Dict:
        return {
            "tensor": self.tensor,
            "map_id": self.map_id,
            "samples": self.samples,
            "counters": [c.to_dict() for c in self.counters],
        }


@dataclass(frozen=True)
class AdvisorVerdict:
    """One cross-check of the advisor against the static selector."""

    tensor: str
    recommended: Optional[int]
    selected: int
    agrees: bool
    finding: Optional[Finding]

    def to_dict(self) -> Dict:
        return {
            "tensor": self.tensor,
            "recommended": self.recommended,
            "selected": self.selected,
            "agrees": self.agrees,
            "finding": (
                {
                    "rule_id": self.finding.rule_id,
                    "level": self.finding.level,
                    "message": self.finding.message,
                    "location": self.finding.location,
                    "detail": self.finding.detail,
                }
                if self.finding
                else None
            ),
        }


class _CandidateState:
    """Mutable shadow state for one (tensor, candidate MapID) pair."""

    __slots__ = (
        "mapping", "pu_crossings", "row_hits", "row_misses",
        "row_conflicts", "open_rows", "last_pu",
    )

    def __init__(self, mapping: AddressMapping) -> None:
        self.mapping = mapping
        self.pu_crossings = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.open_rows: Dict[int, int] = {}
        self.last_pu: Optional[int] = None


class _TensorState:
    __slots__ = ("candidates", "samples", "last_group", "partitioned")

    def __init__(
        self, candidates: Dict[int, _CandidateState], partitioned: bool
    ) -> None:
        self.candidates = candidates
        self.samples = 0
        self.last_group: Optional[int] = None
        self.partitioned = partitioned


class MappingAdvisor:
    """Online, shadow-mode MapID advisor over one DRAM organization.

    ``observe`` feeds a tensor's access stream as ``(physical address,
    accumulation group)`` pairs — for GEMV weight streams the group is
    the matrix-row index, the unit whose partial sums one PU must hold.
    All counter updates are vectorized and candidate-parallel; nothing
    here touches the simulated machine state, so advising is free of
    side effects by construction.
    """

    def __init__(
        self,
        org: DramOrganization,
        pim: PimConfig,
        huge_page_bytes: int = 2 << 20,
        metrics: Optional[MetricsRegistry] = None,
        min_samples: int = 1024,
    ) -> None:
        self.org = org
        self.pim = pim
        self.huge_page_bytes = huge_page_bytes
        self.metrics = metrics
        self.min_samples = min_samples
        self._page_bits = ilog2(huge_page_bytes)
        chunk_bits = ilog2(max(pim.chunk_bytes // org.transfer_bytes, 1))
        # the builder's chunk-constrained MapID bound (mirrors
        # repro.analysis.mapverify.chunk_max_map_id)
        self.max_map_id = max(
            self._page_bits - org.offset_bits - org.interleave_bits()
            - chunk_bits,
            0,
        )
        self._tensors: Dict[str, _TensorState] = {}

    # -- candidate construction ---------------------------------------

    def _build_candidates(self, partitioned: bool) -> Dict[int, _CandidateState]:
        pu_order = (
            (Field.CHANNEL, Field.RANK, Field.BANK)
            if partitioned
            else (Field.BANK, Field.RANK, Field.CHANNEL)
        )
        candidates: Dict[int, _CandidateState] = {}
        for map_id in range(self.max_map_id + 1):
            try:
                mapping = pim_optimized_mapping(
                    org=self.org,
                    chunk_rows=self.pim.chunk_rows,
                    chunk_cols=self.pim.chunk_cols,
                    dtype_bytes=self.pim.dtype_bytes,
                    map_id=map_id,
                    n_bits=self._page_bits,
                    pu_order=pu_order,
                )
            except ValueError:
                continue  # candidate not buildable on this geometry
            candidates[map_id] = _CandidateState(mapping)
        return candidates

    def needs_partition(self, matrix: MatrixConfig) -> bool:
        memory_per_bank = self.huge_page_bytes // self.org.total_banks
        row_bytes = max(matrix.padded_row_bytes, self.pim.chunk_row_bytes)
        return memory_per_bank < self.pim.chunk_rows * row_bytes

    # -- online observation -------------------------------------------

    def observe(
        self,
        tensor: str,
        pas: np.ndarray,
        groups: np.ndarray,
        partitioned: bool = False,
    ) -> None:
        """Feed one batch of ``(pa, accumulation-group)`` observations."""
        pas = np.asarray(pas, dtype=np.int64)
        groups = np.asarray(groups, dtype=np.int64)
        if pas.shape != groups.shape:
            raise ValueError("pas and groups must have matching shapes")
        if pas.size == 0:
            return
        state = self._tensors.get(tensor)
        if state is None:
            state = _TensorState(self._build_candidates(partitioned), partitioned)
            self._tensors[tensor] = state

        in_page = pas & (self.huge_page_bytes - 1)
        page_index = pas >> self._page_bits
        same_group = groups[1:] == groups[:-1]
        ranks = self.org.ranks_per_channel
        banks = self.org.banks_per_rank

        for map_id, cand in state.candidates.items():
            fields = cand.mapping.decode_array(in_page)
            pu = (
                fields[Field.CHANNEL].astype(np.int64) * ranks
                + fields[Field.RANK]
            ) * banks + fields[Field.BANK]
            # distinct pages land in distinct DRAM rows (the controller
            # prepends the page frame as row MSBs)
            row = (page_index << cand.mapping.row_bits) | fields[Field.ROW]

            crossings = int(np.count_nonzero(same_group & (pu[1:] != pu[:-1])))
            if (
                state.last_group is not None
                and cand.last_pu is not None
                and int(groups[0]) == state.last_group
                and int(pu[0]) != cand.last_pu
            ):
                crossings += 1
            cand.pu_crossings += crossings
            cand.last_pu = int(pu[-1])

            hits, misses, conflicts = self._shadow_row_buffer(cand, pu, row)
            cand.row_hits += hits
            cand.row_misses += misses
            cand.row_conflicts += conflicts

            if self.metrics is not None:
                labels = {"tensor": tensor, "map_id": str(map_id)}
                self._counter("advisor_pu_crossings_total").inc(
                    crossings, **labels
                )
                self._counter("advisor_row_hits_total").inc(hits, **labels)
                self._counter("advisor_row_misses_total").inc(misses, **labels)
                self._counter("advisor_row_conflicts_total").inc(
                    conflicts, **labels
                )

        state.last_group = int(groups[-1])
        state.samples += int(pas.size)

    def _counter(self, name: str):
        return self.metrics.counter(  # type: ignore[union-attr]
            name, "advisor shadow counter", labelnames=("tensor", "map_id")
        )

    @staticmethod
    def _shadow_row_buffer(
        cand: _CandidateState, pu: np.ndarray, row: np.ndarray
    ) -> Tuple[int, int, int]:
        """One-entry-per-bank shadow row buffer, vectorized.

        A stable sort by PU preserves each bank's temporal order, so
        within-segment adjacency gives hits/conflicts; segment heads are
        judged against the open row carried from earlier batches.
        """
        order = np.argsort(pu, kind="stable")
        pu_s = pu[order]
        row_s = row[order]
        same_pu = pu_s[1:] == pu_s[:-1]
        same_row = row_s[1:] == row_s[:-1]
        hits = int(np.count_nonzero(same_pu & same_row))
        conflicts = int(np.count_nonzero(same_pu & ~same_row))
        misses = 0
        starts = np.flatnonzero(
            np.concatenate(([True], ~same_pu))
        )
        ends = np.concatenate((starts[1:], [pu_s.size])) - 1
        for start, end in zip(starts, ends):
            bank = int(pu_s[start])
            first_row = int(row_s[start])
            open_row = cand.open_rows.get(bank)
            if open_row is None:
                misses += 1
            elif open_row == first_row:
                hits += 1
            else:
                conflicts += 1
            cand.open_rows[bank] = int(row_s[end])
        return hits, misses, conflicts

    # -- recommendation and cross-check -------------------------------

    def counters(self, tensor: str) -> Tuple[CandidateCounters, ...]:
        state = self._tensors.get(tensor)
        if state is None:
            return ()
        return tuple(
            CandidateCounters(
                map_id=map_id,
                pu_crossings=cand.pu_crossings,
                row_hits=cand.row_hits,
                row_misses=cand.row_misses,
                row_conflicts=cand.row_conflicts,
            )
            for map_id, cand in sorted(state.candidates.items())
        )

    def recommend(self, tensor: str) -> AdvisorRecommendation:
        state = self._tensors.get(tensor)
        counters = self.counters(tensor)
        samples = state.samples if state is not None else 0
        if state is None or not counters or samples < self.min_samples:
            return AdvisorRecommendation(tensor, None, samples, counters)
        best_crossings = min(c.pu_crossings for c in counters)
        # smallest admissible MapID among the crossing minimizers: zero
        # crossings means every accumulation group already fits one PU,
        # and the smallest such MapID keeps the most SoC interleave
        map_id = min(
            c.map_id for c in counters if c.pu_crossings == best_crossings
        )
        return AdvisorRecommendation(tensor, map_id, samples, counters)

    def cross_check(self, tensor: str, matrix: MatrixConfig) -> AdvisorVerdict:
        """Compare the online recommendation with the static selector."""
        selection = select_mapping(
            matrix, self.org, self.pim, self.huge_page_bytes
        )
        rec = self.recommend(tensor)
        location = f"{tensor}@{self.org.total_banks}banks"
        if rec.map_id is None:
            finding = Finding(
                rule_id="AD002",
                level=LEVEL_NOTE,
                message=(
                    f"advisor abstained for {tensor}: {rec.samples} samples "
                    f"< min_samples={self.min_samples}"
                ),
                location=location,
            )
            return AdvisorVerdict(tensor, None, selection.map_id, False, finding)
        if rec.map_id == selection.map_id:
            return AdvisorVerdict(
                tensor, rec.map_id, selection.map_id, True, None
            )
        finding = Finding(
            rule_id="AD001",
            level=LEVEL_WARNING,
            message=(
                f"advisor recommends MapID {rec.map_id} for {tensor}, "
                f"selector chose {selection.map_id} (advisory only)"
            ),
            location=location,
            detail="; ".join(
                f"map_id={c.map_id} crossings={c.pu_crossings} "
                f"hit_rate={c.row_hit_rate:.3f}"
                for c in rec.counters
            ),
        )
        return AdvisorVerdict(
            tensor, rec.map_id, selection.map_id, False, finding
        )


def observe_matrix(
    advisor: MappingAdvisor,
    tensor: str,
    matrix: MatrixConfig,
    max_rows: int = 128,
) -> int:
    """Feed the advisor a GEMV weight-stream for *matrix*.

    The stream walks the stored (padded) matrix row-major at transfer
    granularity, tagging every access with its matrix-row index — the
    accumulation group a PIM command stream carries.  Rows are sampled
    evenly (never truncating a row: crossings are intra-row) so large
    matrices stay cheap to observe.  Returns the number of samples fed.
    """
    lda = max(matrix.padded_row_bytes, advisor.pim.chunk_row_bytes)
    transfer = advisor.org.transfer_bytes
    transfers_per_row = lda // transfer
    n_rows = min(matrix.rows, max_rows)
    row_idx = (
        np.arange(n_rows, dtype=np.int64) * matrix.rows // n_rows
    )
    pas = (
        row_idx[:, None] * lda
        + np.arange(transfers_per_row, dtype=np.int64)[None, :] * transfer
    ).ravel()
    groups = np.repeat(row_idx, transfers_per_row)
    advisor.observe(
        tensor, pas, groups, partitioned=advisor.needs_partition(matrix)
    )
    return int(pas.size)


@dataclass(frozen=True)
class AdvisorSweep:
    """Outcome of :func:`agreement_sweep`."""

    verdicts: Tuple[AdvisorVerdict, ...]
    skipped: Tuple[str, ...]

    @property
    def checks(self) -> int:
        return len(self.verdicts)

    @property
    def agreements(self) -> int:
        return sum(1 for v in self.verdicts if v.agrees)

    @property
    def agreement_rate(self) -> float:
        return self.agreements / self.checks if self.verdicts else 0.0

    @property
    def findings(self) -> Tuple[Finding, ...]:
        return tuple(v.finding for v in self.verdicts if v.finding is not None)

    def to_dict(self) -> Dict:
        return {
            "checks": self.checks,
            "agreements": self.agreements,
            "agreement_rate": self.agreement_rate,
            "skipped": list(self.skipped),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def agreement_sweep(
    platforms: Optional[Sequence] = None,
    shapes: Optional[Sequence[Tuple[int, int]]] = None,
    huge_page_bytes: int = 2 << 20,
    max_rows: int = 128,
    min_samples: int = 64,
    metrics: Optional[MetricsRegistry] = None,
) -> AdvisorSweep:
    """Cross-check the advisor on every platform x matrix-battery pair.

    This is the "default platform sweep" of the acceptance bar: all four
    Table II platforms against the mapping verifier's matrix battery.
    """
    from repro.analysis.mapverify import DEFAULT_MATRIX_BATTERY
    from repro.platforms import ALL_PLATFORMS

    if platforms is None:
        platforms = ALL_PLATFORMS
    if shapes is None:
        shapes = DEFAULT_MATRIX_BATTERY
    verdicts: List[AdvisorVerdict] = []
    skipped: List[str] = []
    for platform in platforms:
        advisor = MappingAdvisor(
            platform.dram.org,
            platform.pim,
            huge_page_bytes=huge_page_bytes,
            metrics=metrics,
            min_samples=min_samples,
        )
        for rows, cols in shapes:
            matrix = MatrixConfig(rows=rows, cols=cols)
            tensor = f"{platform.name}/{rows}x{cols}"
            try:
                select_mapping(matrix, platform.dram.org, platform.pim,
                               huge_page_bytes)
            except ValueError:
                skipped.append(tensor)
                continue
            observe_matrix(advisor, tensor, matrix, max_rows=max_rows)
            verdicts.append(advisor.cross_check(tensor, matrix))
    sweep = AdvisorSweep(tuple(verdicts), tuple(skipped))
    if metrics is not None:
        metrics.counter(
            "advisor_checks_total", "advisor/selector cross-checks"
        ).inc(sweep.checks)
        metrics.counter(
            "advisor_disagreements_total", "cross-checks that disagreed"
        ).inc(sweep.checks - sweep.agreements)
        metrics.gauge(
            "advisor_agreement_rate", "advisor/selector agreement fraction"
        ).set(sweep.agreement_rate)
    return sweep
