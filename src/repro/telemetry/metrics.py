"""Metrics plane: counters, gauges, and histograms on simulated time.

The registry is the one sink for cross-layer counters — bank conflicts,
row-buffer hits, MapID-mux switches, queue depth, KV occupancy, shed /
retry / breaker events — replacing the ad-hoc dicts that grew inside
``ServingReport`` and ``repro.reliability.campaign``.  Metrics carry no
clock of their own: every observation is stamped by the caller with
simulated time (or is a plain count), so attaching a registry never
perturbs a run.

Two exporters are provided: the Prometheus text exposition format
(``# HELP`` / ``# TYPE`` plus one line per sample, histograms as
cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series) and a
stable JSON snapshot for machine diffing.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_NS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for nanosecond latencies: 1/2/5 decades from
#: 1 us up to 1000 s of simulated time.
DEFAULT_NS_BUCKETS: Tuple[float, ...] = tuple(
    float(m * 10 ** e) for e in range(3, 13) for m in (1, 2, 5)
)


class MetricError(ValueError):
    """Raised on metric name, kind, or label misuse."""


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class _Metric:
    """Base: a named family of samples keyed by label values."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)

    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    def sample_dicts(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def prometheus_lines(self) -> List[str]:
        raise NotImplementedError

    def _sample_name(self, key: Tuple[str, ...], suffix: str = "") -> str:
        name = self.name + suffix
        if not key:
            return name
        labels = ",".join(
            f'{label}="{_escape_label(value)}"'
            for label, value in zip(self.labelnames, key)
        )
        return f"{name}{{{labels}}}"


class Counter(_Metric):
    """Monotonically increasing count (events, bytes, faults)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def sample_dicts(self) -> List[Dict[str, Any]]:
        return [
            {"labels": self._labels_dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def prometheus_lines(self) -> List[str]:
        return [
            f"{self._sample_name(key)} {_format_value(value)}"
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """Point-in-time value (queue depth, occupancy, agreement rate)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[self._key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def set_max(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        current = self._values.get(key)
        if current is None or value > current:
            self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0.0)

    def sample_dicts(self) -> List[Dict[str, Any]]:
        return [
            {"labels": self._labels_dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def prometheus_lines(self) -> List[str]:
        return [
            f"{self._sample_name(key)} {_format_value(value)}"
            for key, value in sorted(self._values.items())
        ]


class Histogram(_Metric):
    """Bucketed distribution with Prometheus ``le`` (inclusive) semantics.

    An observation equal to a bucket boundary lands in that bucket; the
    implicit ``+Inf`` bucket catches the rest.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_NS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name!r} has duplicate buckets")
        if any(not math.isfinite(b) for b in bounds):
            raise MetricError(
                f"histogram {name!r} buckets must be finite (+Inf is implicit)"
            )
        self.buckets = bounds
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        counts[bisect_left(self.buckets, float(value))] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def count(self, **labels: Any) -> int:
        return sum(self._counts.get(self._key(labels), ()))

    def sum(self, **labels: Any) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def cumulative_buckets(self, **labels: Any) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(+Inf, count)``."""
        counts = self._counts.get(self._key(labels), [0] * (len(self.buckets) + 1))
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def sample_dicts(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for key in sorted(self._counts):
            labels = self._labels_dict(key)
            cumulative = self.cumulative_buckets(**labels)
            out.append(
                {
                    "labels": labels,
                    "count": cumulative[-1][1],
                    "sum": self._sums.get(key, 0.0),
                    "buckets": [
                        ["+Inf" if bound == math.inf else bound, n]
                        for bound, n in cumulative
                    ],
                }
            )
        return out

    def prometheus_lines(self) -> List[str]:
        lines: List[str] = []
        for key in sorted(self._counts):
            labels = self._labels_dict(key)
            for bound, n in self.cumulative_buckets(**labels):
                le = "+Inf" if bound == math.inf else _format_value(bound)
                with_le = key + (le,)
                name = self.name + "_bucket"
                parts = [
                    f'{label}="{_escape_label(value)}"'
                    for label, value in zip(self.labelnames + ("le",), with_le)
                ]
                lines.append(f"{name}{{{','.join(parts)}}} {n}")
            lines.append(
                f"{self._sample_name(key, '_sum')} "
                f"{_format_value(self._sums.get(key, 0.0))}"
            )
            lines.append(
                f"{self._sample_name(key, '_count')} "
                f"{self.cumulative_buckets(**labels)[-1][1]}"
            )
        return lines


class MetricsRegistry:
    """Get-or-create registry of metric families with stable ordering."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Sequence[str],
        **kwargs: Any,
    ) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if existing.labelnames != tuple(labelnames):
                raise MetricError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, requested {tuple(labelnames)}"
                )
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_NS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Stable JSON-serializable view of every family and sample."""
        return {
            "schema_version": 1,
            "metrics": [
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "samples": metric.sample_dicts(),
                }
                for metric in self._metrics.values()
            ],
        }

    def render_prometheus(self) -> str:
        lines: List[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render_json())
            fh.write("\n")

    def write_prometheus(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render_prometheus())
