"""DRAM micro-probe: grounds telemetry in the timing simulator.

A traced serving run cannot afford to replay every weight byte through
the transfer-level DRAM simulator (the analytical engine models exist
precisely to avoid that), but spans for the controller/DRAM layers and
the advisor's counters still need *grounded* numbers.  The probe bridges
the two at run start:

* it streams a bounded, representative sample of the model's weight
  matrices (smallest / median / largest linear spec) through a real
  :class:`~repro.core.controller.MemoryController` and
  :class:`~repro.dram.system.DramTimingSimulator` under the mappings
  ``select_mapping`` chooses, publishing bank-conflict / row-hit /
  bus-utilization counters to the metrics registry;
* it re-translates the same pages under the conventional mapping — the
  SoC side of a hybrid relayout — so per-page MapID-mux switch counters
  are exercised with real translations;
* it feeds the same streams to the :class:`MappingAdvisor` and
  cross-checks every probed tensor against the static selector,
  appending any disagreement findings to the telemetry bundle;
* it emits ``probe.*`` spans (controller + DRAM layers) and returns a
  :class:`ProbeCalibration` whose per-byte DRAM time and utilization
  fractions let the serving loop attach calibrated controller / DRAM /
  KV child spans to sampled queries without re-simulating them.

The probe runs entirely on its own controller, simulator, and advisor
state: it never touches the serving run's RNG, queues, or timelines,
so simulated results are byte-identical with telemetry on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.controller import CONVENTIONAL_MAP_ID, MemoryController
from repro.core.selector import build_selected_mapping, select_mapping
from repro.dram.system import DramTimingSimulator, requests_from_fields
from repro.llm.layers import linear_specs
from repro.telemetry.advisor import MappingAdvisor, observe_matrix

__all__ = ["ProbeCalibration", "run_probe"]


@dataclass(frozen=True)
class ProbeCalibration:
    """What the probe learned; consumed by per-query span emission."""

    #: simulated DRAM service time per byte under the selected layouts
    dram_ns_per_byte: float
    #: fraction of the probe drain the data bus was busy
    bus_utilization: float
    row_hit_rate: float
    weight_bytes: int
    kv_bytes_per_token: float
    advisor_agreement: float
    probed_tensors: Tuple[str, ...]

    def dram_fraction(self) -> float:
        """Fraction of a phase's duration to attribute to DRAM service."""
        return max(min(self.bus_utilization, 1.0), 0.0)

    def kv_fraction(self, context_tokens: int) -> float:
        """KV-read share of decode traffic at a given context length."""
        kv_bytes = context_tokens * self.kv_bytes_per_token
        total = kv_bytes + self.weight_bytes
        return kv_bytes / total if total > 0 else 0.0


def _probe_specs(engine) -> List:
    """Distinct linear shapes, smallest / median / largest by footprint."""
    by_shape: Dict[Tuple[int, int], object] = {}
    for spec in linear_specs(engine.model):
        by_shape.setdefault((spec.out_features, spec.in_features), spec)
    ordered = sorted(
        by_shape.values(), key=lambda s: s.out_features * s.in_features
    )
    if len(ordered) <= 3:
        return ordered
    return [ordered[0], ordered[len(ordered) // 2], ordered[-1]]


def _stream_for(matrix, org, pim, max_transfers: int):
    """(pas, groups) covering whole sampled rows, like the advisor's."""
    lda = max(matrix.padded_row_bytes, pim.chunk_row_bytes)
    transfer = org.transfer_bytes
    transfers_per_row = lda // transfer
    max_rows = max(1, max_transfers // transfers_per_row)
    n_rows = min(matrix.rows, max_rows)
    row_idx = np.arange(n_rows, dtype=np.int64) * matrix.rows // n_rows
    pas = (
        row_idx[:, None] * lda
        + np.arange(transfers_per_row, dtype=np.int64)[None, :] * transfer
    ).ravel()
    groups = np.repeat(row_idx, transfers_per_row)
    return pas, groups


def run_probe(
    engine,
    telemetry,
    max_transfers_per_spec: int = 2048,
) -> ProbeCalibration:
    """Run the micro-probe for *engine*, publishing into *telemetry*."""
    platform = engine.platform
    org = platform.dram.org
    pim = platform.pim
    page = engine.huge_page_bytes
    registry = telemetry.metrics
    tracer = telemetry.tracer

    controller = MemoryController(org, page_bytes=page)
    controller.attach_metrics(registry)
    advisor = MappingAdvisor(org, pim, page, metrics=registry, min_samples=64)
    sim = DramTimingSimulator(platform.dram)

    total_bytes = 0
    total_ns = 0.0
    bus_busy_ns = 0.0
    bus_window_ns = 0.0
    row_hits = row_misses = row_conflicts = 0
    agreements = checks = 0
    probed: List[str] = []
    cursor_ns = 0.0

    for spec in _probe_specs(engine):
        matrix = spec.matrix_config()
        try:
            select_mapping(matrix, org, pim, page)
            mapping = build_selected_mapping(matrix, org, pim, page)
        except ValueError:
            continue
        map_id = controller.table.register(mapping)
        pas, groups = _stream_for(matrix, org, pim, max_transfers_per_spec)

        fields = controller.translate_array(pas, map_id=map_id)
        result = sim.run(requests_from_fields(fields))
        # the SoC side of a hybrid relayout touches the same pages under
        # the conventional mapping: exercises the per-page MapID mux
        controller.translate_array(pas, map_id=CONVENTIONAL_MAP_ID)

        n_bytes = int(pas.size) * org.transfer_bytes
        total_bytes += n_bytes
        total_ns += result.total_ns
        row_hits += result.row_hits
        row_misses += result.row_misses
        row_conflicts += result.row_conflicts
        channels_used = max(len(result.per_channel), 1)
        bus_busy_ns += sum(
            s.bus_busy_ns for s in result.per_channel.values()
        )
        bus_window_ns += result.total_ns * channels_used
        for channel, stats in sorted(result.per_channel.items()):
            labels = {"channel": str(channel)}
            registry.counter(
                "dram_reads_total", "column reads issued",
                labelnames=("channel",),
            ).inc(stats.reads, **labels)
            registry.counter(
                "dram_writes_total", "column writes issued",
                labelnames=("channel",),
            ).inc(stats.writes, **labels)
            registry.counter(
                "dram_row_hits_total", "row-buffer hits",
                labelnames=("channel",),
            ).inc(stats.row_hits, **labels)
            registry.counter(
                "dram_row_misses_total", "row-buffer misses (bank idle)",
                labelnames=("channel",),
            ).inc(stats.row_misses, **labels)
            registry.counter(
                "dram_row_conflicts_total",
                "bank conflicts (wrong row open)",
                labelnames=("channel",),
            ).inc(stats.row_conflicts, **labels)

        tensor = f"{platform.name}/{spec.name}"
        observe_matrix(advisor, tensor, matrix, max_rows=128)
        verdict = advisor.cross_check(tensor, matrix)
        checks += 1
        agreements += int(verdict.agrees)
        if verdict.finding is not None:
            telemetry.findings.append(verdict.finding)
        probed.append(tensor)

        root = tracer.record(
            0,
            f"probe.{spec.name}",
            "controller",
            cursor_ns,
            cursor_ns + result.total_ns,
            map_id=map_id,
            bytes=n_bytes,
        )
        if root is not None:
            root.record(
                "probe.dram.drain",
                "dram",
                cursor_ns,
                cursor_ns + result.total_ns,
                row_hit_rate=result.row_hit_rate,
                bandwidth_gbps=result.bandwidth_gbps,
            )
        cursor_ns += result.total_ns

    controller.finalize_metrics()
    row_total = row_hits + row_misses + row_conflicts
    agreement = agreements / checks if checks else 1.0
    calibration = ProbeCalibration(
        dram_ns_per_byte=total_ns / total_bytes if total_bytes else 0.0,
        bus_utilization=(
            bus_busy_ns / bus_window_ns if bus_window_ns else 0.0
        ),
        row_hit_rate=row_hits / row_total if row_total else 0.0,
        weight_bytes=int(engine.model.weight_bytes()),
        kv_bytes_per_token=float(engine.model.kv_cache_bytes_per_token),
        advisor_agreement=agreement,
        probed_tensors=tuple(probed),
    )
    registry.gauge(
        "probe_dram_ns_per_byte", "probe-calibrated DRAM time per byte"
    ).set(calibration.dram_ns_per_byte)
    registry.gauge(
        "probe_bus_utilization", "probe data-bus busy fraction"
    ).set(calibration.bus_utilization)
    registry.gauge(
        "probe_row_hit_rate", "probe row-buffer hit rate"
    ).set(calibration.row_hit_rate)
    registry.gauge(
        "advisor_agreement_rate", "advisor/selector agreement fraction"
    ).set(calibration.advisor_agreement)
    return calibration
