"""Shared text renderer for report summaries.

Every human-facing report in the repo (serving runs, chaos campaigns,
trace summaries) renders through these helpers so the column layout is
defined exactly once: a label padded to :data:`LABEL_WIDTH` characters,
a colon, a space, then the value.  Percentiles always come from
:func:`repro.engine.metrics.percentile` — the single percentile
implementation in the repo.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

from repro.engine.metrics import percentile

__all__ = [
    "LABEL_WIDTH",
    "kv_line",
    "render_lines",
    "render_text",
    "percentile_ms",
    "p50_p99_ms",
]

#: Label column width shared by every report.
LABEL_WIDTH = 16


def kv_line(label: str, value: Any) -> str:
    """One report line: ``label`` padded to the shared column, then value."""
    return f"{label:<{LABEL_WIDTH}}: {value}"


def render_lines(
    header: str, pairs: Iterable[Tuple[str, Any]]
) -> List[str]:
    """A header line followed by one :func:`kv_line` per pair."""
    return [header] + [kv_line(label, value) for label, value in pairs]


def render_text(header: str, pairs: Iterable[Tuple[str, Any]]) -> str:
    return "\n".join(render_lines(header, pairs))


def percentile_ms(values_ns: Sequence[float], p: float) -> float:
    """The *p*-th percentile of nanosecond samples, in milliseconds."""
    if not values_ns:
        return 0.0
    return percentile(list(values_ns), p) / 1e6


def p50_p99_ms(values_ns: Sequence[float]) -> Tuple[float, float]:
    return percentile_ms(values_ns, 50), percentile_ms(values_ns, 99)
