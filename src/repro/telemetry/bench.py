"""Machine-readable perf trajectory: the ``BENCH_*.json`` schema.

Benchmarks write one :class:`BenchResult` per suite to the repo root
(``BENCH_serving.json``, ``BENCH_kvcache.json``) so future changes can
diff simulated-performance numbers against a committed baseline.  The
config hash pins the workload: a metric delta only means something when
the hashes match.

:func:`hash_config` is strict by design: it canonicalizes nested
mappings/sequences and **rejects** anything without a stable JSON form
(objects, NaN/inf floats, non-string keys) instead of silently
``str()``-ing them — a config that hashes must be a config that can be
re-read and re-run.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Union

__all__ = ["SCHEMA_VERSION", "BenchFormatError", "BenchResult", "hash_config",
           "load_bench_result", "write_bench_result"]

SCHEMA_VERSION = 1

#: keys every serialized BenchResult must carry
_REQUIRED_KEYS = ("schema_version", "name", "seed", "config_hash", "metrics")

#: JSON-stable value types (bool before int is irrelevant: bool is int)
_Scalar = Union[str, int, float, bool, None]


class BenchFormatError(ValueError):
    """A ``BENCH_*.json`` payload or config that violates the schema."""


def _canonicalize(value: object, path: str) -> object:
    """Return a JSON-stable copy of *value*, or raise naming the key
    path of the first unstable value."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise BenchFormatError(
                f"hash_config: non-finite float {value!r} at {path}; "
                f"NaN/inf have no stable JSON form"
            )
        return value
    if isinstance(value, Mapping):
        out: Dict[str, object] = {}
        for key in value:
            if not isinstance(key, str):
                raise BenchFormatError(
                    f"hash_config: non-string mapping key {key!r} at "
                    f"{path}; JSON objects key on strings"
                )
            out[key] = _canonicalize(value[key], f"{path}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        return [
            _canonicalize(item, f"{path}[{i}]")
            for i, item in enumerate(value)
        ]
    raise BenchFormatError(
        f"hash_config: {type(value).__name__} value {value!r} at {path} "
        f"is not JSON-stable; pass str/int/float/bool/None, mappings, "
        f"or sequences of those"
    )


def hash_config(config: Mapping) -> str:
    """Short stable hash of a benchmark's configuration knobs.

    Nested mappings are canonicalized (keys sorted at every level,
    tuples and lists identical) so the hash depends only on content,
    never on insertion order.  Values without a stable JSON form raise
    :class:`BenchFormatError` naming the offending key path.
    """
    canon = _canonicalize(dict(config), path="config")
    text = json.dumps(canon, sort_keys=True, allow_nan=False)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class BenchResult:
    """One benchmark suite's summary metrics."""

    name: str
    seed: int
    config_hash: str
    metrics: Dict[str, float] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    notes: str = ""

    def to_dict(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "notes": self.notes,
        }


def write_bench_result(path: str, result: BenchResult) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2)
        fh.write("\n")


def load_bench_result(path: str) -> BenchResult:
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    if not isinstance(raw, Mapping):
        raise BenchFormatError(
            f"{path}: expected a JSON object, got {type(raw).__name__}"
        )
    missing: List[str] = [key for key in _REQUIRED_KEYS if key not in raw]
    if missing:
        raise BenchFormatError(
            f"{path}: BenchResult payload is missing required key(s): "
            f"{', '.join(missing)}"
        )
    if raw["schema_version"] != SCHEMA_VERSION:
        raise BenchFormatError(
            f"{path}: unsupported BenchResult schema_version "
            f"{raw['schema_version']!r} (supported: {SCHEMA_VERSION})"
        )
    return BenchResult(
        name=raw["name"],
        seed=raw["seed"],
        config_hash=raw["config_hash"],
        metrics=dict(raw["metrics"]),
        schema_version=raw["schema_version"],
        notes=raw.get("notes", ""),
    )
