"""Machine-readable perf trajectory: the ``BENCH_*.json`` schema.

Benchmarks write one :class:`BenchResult` per suite to the repo root
(``BENCH_serving.json``, ``BENCH_kvcache.json``) so future changes can
diff simulated-performance numbers against a committed baseline.  The
config hash pins the workload: a metric delta only means something when
the hashes match.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["SCHEMA_VERSION", "BenchResult", "hash_config",
           "load_bench_result", "write_bench_result"]

SCHEMA_VERSION = 1


def hash_config(config: Mapping) -> str:
    """Short stable hash of a benchmark's configuration knobs."""
    canon = json.dumps(dict(config), sort_keys=True, default=str)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class BenchResult:
    """One benchmark suite's summary metrics."""

    name: str
    seed: int
    config_hash: str
    metrics: Dict[str, float] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    notes: str = ""

    def to_dict(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "notes": self.notes,
        }


def write_bench_result(path: str, result: BenchResult) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2)
        fh.write("\n")


def load_bench_result(path: str) -> BenchResult:
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    if raw.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported BenchResult schema_version {raw.get('schema_version')!r}"
        )
    return BenchResult(
        name=raw["name"],
        seed=raw["seed"],
        config_hash=raw["config_hash"],
        metrics=dict(raw["metrics"]),
        schema_version=raw["schema_version"],
        notes=raw.get("notes", ""),
    )
