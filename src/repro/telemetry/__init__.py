"""Cross-layer observability plane for the FACIL reproduction.

Three pieces (see ``docs/TELEMETRY.md``):

* :mod:`repro.telemetry.tracer` — nested spans on *simulated* time with
  head-based sampling and Chrome-trace / JSONL exporters;
* :mod:`repro.telemetry.metrics` — a registry of counters, gauges, and
  histograms with Prometheus-text and JSON snapshot exporters;
* :mod:`repro.telemetry.advisor` — a DReAM-spirit online MapID advisor
  cross-checked against the static selector (imported lazily: it pulls
  the analysis plane).

The :class:`Telemetry` bundle is the object the serving stack passes
around: a tracer plus a registry plus the probe calibration that grounds
controller/DRAM span durations.  Everything here observes simulated
time supplied by callers; nothing consumes the run's RNG or advances
its clocks, so enabling telemetry never changes simulated results —
the overhead gate in ``bench_serving_overload`` holds by construction
and acts as a perturbation regression guard.

This package is the only part of ``src/repro`` allowed to touch wall
clocks (lint rule RL006), though nothing in it currently needs to.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.telemetry.bench import (
    SCHEMA_VERSION,
    BenchFormatError,
    BenchResult,
    hash_config,
    load_bench_result,
    write_bench_result,
)
from repro.telemetry.metrics import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.telemetry.render import kv_line, p50_p99_ms, percentile_ms
from repro.telemetry.tracer import LAYERS, Span, SpanHandle, Tracer

__all__ = [
    "LAYERS",
    "SCHEMA_VERSION",
    "BenchFormatError",
    "BenchResult",
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "SpanHandle",
    "Telemetry",
    "Tracer",
    "hash_config",
    "kv_line",
    "load_bench_result",
    "p50_p99_ms",
    "percentile_ms",
    "write_bench_result",
]


class Telemetry:
    """The bundle a run threads through its layers.

    ``sample_every`` is the head-sampling period: query ``req_id`` is
    traced iff ``req_id % sample_every == 0``.  Metrics are never
    sampled — counters see every event.
    """

    def __init__(self, sample_every: int = 8, max_spans: int = 500_000) -> None:
        self.tracer = Tracer(sample_every=sample_every, max_spans=max_spans)
        self.metrics = MetricsRegistry()
        #: probe calibration (set by :meth:`ensure_calibrated`); grounds
        #: the per-query controller/DRAM span durations
        self.calibration: Optional[Any] = None
        #: advisor findings collected during the run (never applied)
        self.findings: list = []

    def ensure_calibrated(self, engine: Any) -> None:
        """Run the DRAM micro-probe once per bundle (idempotent)."""
        if self.calibration is None:
            from repro.telemetry.probe import run_probe

            self.calibration = run_probe(engine, self)

    def write(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
    ) -> None:
        if trace_path is not None:
            self.tracer.write_chrome(trace_path)
        if metrics_path is not None:
            self.metrics.write_json(metrics_path)

    # -- per-query span emission --------------------------------------

    def trace_query(
        self,
        req_id: int,
        tenant: str,
        arrival_ns: float,
        status: str,
        policy: str,
        start_ns: Optional[float] = None,
        prefill_end_ns: Optional[float] = None,
        decode_start_ns: Optional[float] = None,
        end_ns: Optional[float] = None,
        prefill_resource: str = "",
        decode_resource: str = "",
        context_tokens: int = 0,
        **extra: Any,
    ) -> None:
        """Emit one query's span tree from its phase boundary times.

        The serving loop calls this at each outcome site with whatever
        boundaries the request reached; controller / DRAM / KV child
        spans are attached at probe-calibrated fractions of the phase
        they live in (see :mod:`repro.telemetry.probe`) — the engine
        models those layers analytically, so their spans are grounded
        attributions, not re-simulations.
        """
        close_ns = max(
            t for t in (arrival_ns, start_ns, prefill_end_ns, end_ns)
            if t is not None
        )
        root = self.tracer.begin(
            req_id,
            "request",
            "serving",
            arrival_ns,
            tenant=tenant,
            policy=policy,
            status=status,
            **extra,
        )
        if root is None:
            return
        cal = self.calibration
        if start_ns is not None and start_ns > arrival_ns:
            root.record("queue.wait", "serving", arrival_ns, start_ns)
        if start_ns is not None and prefill_end_ns is not None:
            prefill = root.child(
                "prefill", "engine", start_ns, resource=prefill_resource
            )
            prefill.close(prefill_end_ns)
            if cal is not None and prefill_end_ns > start_ns:
                translate = prefill.child(
                    "weights.translate", "controller", start_ns
                )
                translate.close(prefill_end_ns)
                dram_end = start_ns + (
                    (prefill_end_ns - start_ns) * cal.dram_fraction()
                )
                translate.record("weights.dram", "dram", start_ns, dram_end)
        if decode_start_ns is not None and end_ns is not None:
            decode = root.child(
                "decode", "engine", decode_start_ns, resource=decode_resource
            )
            decode.close(end_ns)
            if cal is not None and end_ns > decode_start_ns:
                dur = end_ns - decode_start_ns
                decode.record(
                    "kv.read",
                    "kvcache",
                    decode_start_ns,
                    decode_start_ns + dur * cal.kv_fraction(context_tokens),
                    context_tokens=context_tokens,
                )
                translate = decode.child(
                    "decode.translate", "controller", decode_start_ns
                )
                translate.close(end_ns)
                translate.record(
                    "decode.dram",
                    "dram",
                    decode_start_ns,
                    decode_start_ns + dur * cal.dram_fraction(),
                )
        root.close(close_ns)

    # -- end-of-run metrics -------------------------------------------

    def record_serving_report(self, report: Any) -> None:
        """Fold a :class:`~repro.serving.runtime.ServingReport` into the
        registry — every counter the report derives from its outcome
        list becomes a queryable metric sample."""
        m = self.metrics
        status_counter = m.counter(
            "serving_requests_total", "terminal outcomes by status",
            labelnames=("status",),
        )
        retries = m.counter("serving_retries_total", "phase retries")
        fallbacks = m.counter("serving_fallbacks_total", "policy fallbacks")
        wait_h = m.histogram("serving_wait_ns", "admission queue wait")
        ttft_h = m.histogram("serving_ttft_ns", "time to first token")
        ttlt_h = m.histogram("serving_ttlt_ns", "time to last token")
        for outcome in report.outcomes:
            status_counter.inc(status=outcome.status)
            if outcome.retries:
                retries.inc(outcome.retries)
            if outcome.fallbacks:
                fallbacks.inc(len(outcome.fallbacks))
            if outcome.served:
                wait_h.observe(outcome.wait_ns)
                ttft_h.observe(outcome.ttft_ns)
                ttlt_h.observe(outcome.ttlt_ns)
        m.gauge("serving_queue_peak_occupancy", "peak queue depth").set(
            report.queue_stats.peak_occupancy
        )
        m.gauge("serving_duration_ns", "simulated run duration").set(
            report.duration_ns
        )
        m.gauge("serving_goodput_qps", "served queries per second").set(
            report.goodput_qps
        )
        breaker_counter = m.counter(
            "serving_breaker_transitions_total",
            "circuit-breaker state changes", labelnames=("breaker",),
        )
        for name, transitions in report.breaker_transitions.items():
            if transitions:
                breaker_counter.inc(len(transitions), breaker=name)
        m.counter("serving_brownout_windows_total", "brown-out windows").inc(
            len(report.brownout_intervals)
        )
        if report.kv:
            kv_gauge = m.gauge(
                "kv_cache_stat", "KV-cache counters from the paged pool",
                labelnames=("stat",),
            )
            for key, value in report.kv.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                kv_gauge.set(float(value), stat=key)
        workload = getattr(report, "workload", None)
        if workload:
            name = str(workload.get("name", "unknown"))
            wl_gauge = m.gauge(
                "workload_stat",
                "numeric stats from the report's workload section",
                labelnames=("workload", "stat"),
            )
            for key, value in workload.items():
                if key == "name" or isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)):
                    wl_gauge.set(float(value), workload=name, stat=key)
            wl_requests = m.counter(
                "workload_requests_total",
                "terminal outcomes by status under a workload loop",
                labelnames=("workload", "status"),
            )
            for outcome in report.outcomes:
                wl_requests.inc(workload=name, status=outcome.status)
