"""Graceful degradation: health tracking and fallback policies (extension).

FACIL's flexible mapping and the PIM units are *accelerations*, not
correctness requirements: everything they do has a slower SoC-only
equivalent.  :class:`ResilientEngine` exploits that structure.  It wraps
an :class:`~repro.engine.policies.InferenceEngine` and keeps a per-
component health state machine:

    HEALTHY --fault--> DEGRADED --more faults--> FAILED (sticky)
        ^                 |
        +--successes------+

Transient faults cost bounded retries with exponential backoff (priced
into the query's latency); components that keep faulting are failed and
routed around via a fallback chain:

* ``facil`` with a failed **mapping** path -> ``hybrid-static`` (the
  paper's baseline: re-layout on the SoC, no flexible mapping needed);
* any PIM-decode policy with failed **pim** units -> SoC decode (and SoC
  prefill, since the PIM prefill path is equally gone).

Every query is still served; the *degradation latency* — how much slower
the served query was than its healthy-path pricing — is reported per
query and aggregated by the chaos campaign.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.metrics import QueryLatency
from repro.engine.policies import POLICIES, InferenceEngine, decode_on_pim

__all__ = [
    "Health",
    "HealthMonitor",
    "ResilientEngine",
    "ResilientQuery",
    "RETRY_BASE_BACKOFF_NS",
]

#: First-retry backoff; doubles per retry (exponential backoff).
RETRY_BASE_BACKOFF_NS = 1_000.0


class Health(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass
class _ComponentState:
    health: Health = Health.HEALTHY
    consecutive_faults: int = 0
    consecutive_successes: int = 0
    permanent: bool = False
    transitions: List[Tuple[Health, Health]] = field(default_factory=list)
    #: sliding window of recent outcomes (True = fault), newest last
    recent: List[bool] = field(default_factory=list)

    def _move(self, new: Health) -> None:
        if new is not self.health:
            self.transitions.append((self.health, new))
            self.health = new

    def _observe(self, fault: bool, window: int) -> None:
        self.recent.append(fault)
        if len(self.recent) > window:
            del self.recent[: len(self.recent) - window]


class HealthMonitor:
    """Per-component health state machine.

    One fault degrades a component (``degrade_after=1``: be pessimistic
    fast), ``fail_after`` consecutive faults fail it, ``recover_after``
    consecutive successes restore a degraded component.  FAILED is
    sticky — a component that earned it needs explicit :meth:`reset`
    (maintenance), and *permanent* faults jump straight there.
    """

    def __init__(
        self,
        degrade_after: int = 1,
        fail_after: int = 3,
        recover_after: int = 3,
        window: int = 32,
    ):
        if not 0 < degrade_after <= fail_after:
            raise ValueError("need 0 < degrade_after <= fail_after")
        if window <= 0:
            raise ValueError("window must be positive")
        self.degrade_after = degrade_after
        self.fail_after = fail_after
        self.recover_after = recover_after
        self.window = window
        self._components: Dict[str, _ComponentState] = {}

    def _state(self, component: str) -> _ComponentState:
        state = self._components.get(component)
        if state is None:
            state = _ComponentState()
            self._components[component] = state
        return state

    def health(self, component: str) -> Health:
        state = self._components.get(component)
        return state.health if state is not None else Health.HEALTHY

    def fault_rate(self, component: str) -> float:
        """Fraction of faults over the last ``window`` observations
        (0.0 with no observations) — the circuit breakers trip on this."""
        state = self._components.get(component)
        if state is None or not state.recent:
            return 0.0
        return sum(state.recent) / len(state.recent)

    def observations(self, component: str) -> int:
        state = self._components.get(component)
        return len(state.recent) if state is not None else 0

    def record_fault(self, component: str, permanent: bool = False) -> Health:
        state = self._state(component)
        state._observe(True, self.window)
        state.consecutive_successes = 0
        state.consecutive_faults += 1
        if permanent:
            state.permanent = True
            state._move(Health.FAILED)
        elif state.health is not Health.FAILED:
            if state.consecutive_faults >= self.fail_after:
                state._move(Health.FAILED)
            elif state.consecutive_faults >= self.degrade_after:
                state._move(Health.DEGRADED)
        return state.health

    def record_success(self, component: str) -> Health:
        state = self._state(component)
        state._observe(False, self.window)
        state.consecutive_faults = 0
        if state.health is Health.DEGRADED:
            state.consecutive_successes += 1
            if state.consecutive_successes >= self.recover_after:
                state._move(Health.HEALTHY)
                state.consecutive_successes = 0
        return state.health

    def reset(self, component: str) -> None:
        """Explicit maintenance: return a component to HEALTHY."""
        state = self._state(component)
        state.permanent = False
        state.consecutive_faults = 0
        state.consecutive_successes = 0
        state.recent.clear()
        state._move(Health.HEALTHY)

    def transitions(self, component: str) -> List[Tuple[Health, Health]]:
        return list(self._state(component).transitions)

    def summary(self) -> Dict[str, str]:
        return {name: s.health.value for name, s in sorted(self._components.items())}


@dataclass(frozen=True)
class ResilientQuery:
    """One query served by :class:`ResilientEngine`."""

    requested_policy: str
    effective_policy: str  # policy actually priced (after fallbacks)
    latency: QueryLatency  # latency as served, retries/backoff included
    healthy_ttlt_ns: float  # what the requested policy would have cost
    retries: int
    backoff_ns: float
    fallbacks: Tuple[str, ...]
    served: bool

    @property
    def ttlt_ns(self) -> float:
        return self.latency.ttlt_ns

    @property
    def ttft_ns(self) -> float:
        return self.latency.ttft_ns

    @property
    def degradation_ns(self) -> float:
        """Latency paid for resilience: served minus healthy-path cost."""
        return self.latency.ttlt_ns - self.healthy_ttlt_ns

    @property
    def degraded(self) -> bool:
        return bool(self.fallbacks) or self.retries > 0


class ResilientEngine:
    """Serve queries through fallback chains instead of failing them."""

    #: component names used by the fallback logic
    PIM = "pim"
    MAPPING = "mapping"
    MEMORY = "memory"

    def __init__(
        self,
        engine: InferenceEngine,
        monitor: Optional[HealthMonitor] = None,
        max_retries: int = 3,
        base_backoff_ns: float = RETRY_BASE_BACKOFF_NS,
    ):
        self.engine = engine
        self.monitor = monitor if monitor is not None else HealthMonitor()
        self.max_retries = max_retries
        self.base_backoff_ns = base_backoff_ns

    # -- fault reporting (the campaign / substrate calls these) ------------

    def note_fault(self, component: str, permanent: bool = False) -> Health:
        return self.monitor.record_fault(component, permanent=permanent)

    # -- policy fallback ---------------------------------------------------

    def effective_policy(self, policy: str) -> Tuple[str, Tuple[str, ...]]:
        """Resolve *policy* against current component health."""
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        fallbacks: List[str] = []
        if policy == "facil" and self.monitor.health(self.MAPPING) is Health.FAILED:
            # Flexible mapping is gone: fall back to the re-layout baseline.
            policy = "hybrid-static"
            fallbacks.append("facil->hybrid-static (mapping failed)")
        return policy, tuple(fallbacks)

    # -- serving -----------------------------------------------------------

    def _soc_decode_fallback(
        self, policy: str, prefill_len: int, decode_len: int
    ) -> QueryLatency:
        """Price *policy* with all PIM work moved to the SoC."""
        breakdown: Dict[str, float] = {}
        if policy == "facil":
            ttft = self.engine.soc_prefill_ns(prefill_len, pim_layout=True)
            breakdown["prefill_soc"] = ttft
        else:  # hybrid-*: weights are in the PIM layout, so re-layout first
            relayout = self.engine.relayout_total_ns()
            gemm = self.engine.soc_prefill_ns(prefill_len)
            ttft = relayout + gemm
            breakdown["relayout"] = relayout
            breakdown["prefill_soc"] = gemm
        decode = self.engine._decode_total_ns(prefill_len, decode_len, on_pim=False)
        breakdown["decode_soc"] = decode
        return QueryLatency(
            policy=policy,
            prefill_tokens=prefill_len,
            decode_tokens=decode_len,
            ttft_ns=ttft,
            ttlt_ns=ttft + decode,
            breakdown=breakdown,
        )

    def run_query(
        self,
        policy: str,
        prefill_len: int,
        decode_len: int,
        transient_faults: int = 0,
    ) -> ResilientQuery:
        """Serve one query under current health.

        *transient_faults* is how many detected-and-recoverable faults hit
        this query (e.g. uncorrectable ECC words that needed a rewrite);
        each costs one bounded retry with exponential backoff, priced into
        the served latency.  More than ``max_retries`` aborts the query
        (``served=False``) — the only way this engine gives up.
        """
        healthy = self.engine.run_query(policy, prefill_len, decode_len)

        effective, fallbacks = self.effective_policy(policy)
        pim_failed = self.monitor.health(self.PIM) is Health.FAILED
        if effective != "soc-only" and pim_failed:
            latency = self._soc_decode_fallback(effective, prefill_len, decode_len)
            fallbacks = fallbacks + ("pim-decode->soc-decode (pim failed)",)
        elif effective == policy:
            latency = healthy
        else:
            latency = self.engine.run_query(effective, prefill_len, decode_len)

        # Bounded retry with exponential backoff for transient faults.
        retries = min(transient_faults, self.max_retries)
        served = transient_faults <= self.max_retries
        backoff_ns = 0.0
        retry_work_ns = 0.0
        if retries:
            step = (
                self.engine.pim_decode_step_ns
                if decode_on_pim(latency.policy) and not pim_failed
                else self.engine.soc_decode_step_ns
            )
            for attempt in range(retries):
                backoff_ns += self.base_backoff_ns * (2**attempt)
                retry_work_ns += step(prefill_len)  # replay the faulted op
        breakdown = dict(latency.breakdown)
        if retries:
            breakdown["retry"] = retry_work_ns
            breakdown["backoff"] = backoff_ns
        final = QueryLatency(
            policy=latency.policy,
            prefill_tokens=latency.prefill_tokens,
            decode_tokens=latency.decode_tokens,
            ttft_ns=latency.ttft_ns,
            ttlt_ns=latency.ttlt_ns + retry_work_ns + backoff_ns,
            breakdown=breakdown,
        )

        # Successful service is evidence of health for the components used.
        if served:
            if decode_on_pim(final.policy) and not pim_failed:
                self.monitor.record_success(self.PIM)
            if final.policy == "facil":
                self.monitor.record_success(self.MAPPING)

        return ResilientQuery(
            requested_policy=policy,
            effective_policy=final.policy,
            latency=final,
            healthy_ttlt_ns=healthy.ttlt_ns,
            retries=retries,
            backoff_ns=backoff_ns,
            fallbacks=fallbacks,
            served=served,
        )
