"""Mapping-table integrity: parity-protected MapID entries (extension).

A corrupted mapping-table entry is the worst fault in the FACIL stack: the
mux array silently applies a wrong permutation, scrambling every access to
an entire huge page — and, because the scrambled bytes are themselves
valid ECC words written through the *other* permutation, on-die ECC sees
nothing wrong.  Real controllers therefore parity-protect their
configuration state.  :class:`ParityMappingTable` does the same: every
registered entry carries a checksum over its canonical bit layout,
verified on **every lookup** (i.e. on every translation), so corruption is
caught before a single scrambled byte is produced.

Detection is the job of this layer; repair policy belongs to software.
:meth:`ParityMappingTable.repair` reinstalls a known-good mapping (e.g.
the one retained by the owning :class:`~repro.core.pimalloc.PimTensor`),
which is what the chaos campaign's recovery ladder does.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from repro.core.controller import MappingTable
from repro.core.mapping import AddressMapping
from repro.dram.address import FIELDS

__all__ = ["MappingIntegrityError", "ParityMappingTable", "mapping_checksum"]


class MappingIntegrityError(RuntimeError):
    """A mapping-table entry failed its parity check."""

    def __init__(self, map_id: int, stored: int, computed: int):
        self.map_id = map_id
        self.stored = stored
        self.computed = computed
        super().__init__(
            f"MapID {map_id} failed parity: stored {stored:#010x}, "
            f"entry hashes to {computed:#010x} — refusing to translate "
            "through a corrupted mux configuration"
        )


def mapping_checksum(mapping: AddressMapping) -> int:
    """CRC32 over the canonical serialization of a mapping's bit layout.

    Only the routing (field -> PA bit positions) is covered — the name is
    a software label with no hardware counterpart.
    """
    parts = [str(mapping.n_bits)]
    for fname in FIELDS:
        parts.append(f"{fname}:{','.join(map(str, mapping.positions(fname)))}")
    return zlib.crc32("|".join(parts).encode()) & 0xFFFFFFFF


class ParityMappingTable(MappingTable):
    """A :class:`MappingTable` whose entries are parity-checked on lookup."""

    def __init__(self, conventional: AddressMapping, max_entries: int = 16):
        super().__init__(conventional, max_entries)
        self._parity: List[Optional[int]] = [mapping_checksum(conventional)]

    def __getitem__(self, map_id: int) -> AddressMapping:
        entry = super().__getitem__(map_id)
        stored = self._parity[map_id]
        computed = mapping_checksum(entry)
        if stored != computed:
            raise MappingIntegrityError(map_id, stored or 0, computed)
        return entry

    def _install(self, map_id: int, mapping: AddressMapping) -> None:
        super()._install(map_id, mapping)
        while len(self._parity) < len(self._entries):
            self._parity.append(None)
        self._parity[map_id] = mapping_checksum(mapping)

    def repair(self, map_id: int, mapping: AddressMapping) -> None:
        """Reinstall a known-good *mapping* into a (possibly corrupted)
        live slot, restoring its parity.  The reference count is kept."""
        if not 0 <= map_id < len(self._entries) or self._entries[map_id] is None:
            raise KeyError(f"MapID {map_id} not registered")
        if mapping.n_bits != self.conventional.n_bits:
            raise ValueError(
                f"mapping covers {mapping.n_bits} bits; table expects "
                f"{self.conventional.n_bits}"
            )
        self._entries[map_id] = mapping
        self._parity[map_id] = mapping_checksum(mapping)

    def verify_all(self) -> List[int]:
        """MapIDs whose entries currently fail parity (a scrub pass)."""
        bad: List[int] = []
        for map_id, entry in enumerate(self._entries):
            if entry is None:
                continue
            if self._parity[map_id] != mapping_checksum(entry):
                bad.append(map_id)
        return bad
