"""Deterministic fault injection across the FACIL stack (extension).

:class:`FaultInjector` is the chaos half of the reliability layer: a
seeded planner plus the hook implementations that the substrate exposes
(``PhysicalMemory.fault_hook``, ``PageTable.fault_hook``,
``Tlb.fault_hook``, ``PimAllocator.fault_hook``).  It can inject:

* **transient DRAM bit flips** — one-shot corruption of stored bytes
  (what ECC corrects);
* **double flips in one ECC word** — uncorrectable, must be detected and
  retried;
* **stuck-at bits** — re-asserted on every bank access through the
  ``on_bank_access`` hook, modelling a failed cell;
* **PTE MapID corruption** — a flipped bit in the huge-page PTE's MapID
  field (paper Fig. 11), so translation routes through the wrong
  permutation;
* **mapping-table entry corruption** — a scrambled mux configuration,
  caught by :class:`~repro.reliability.integrity.ParityMappingTable`;
* **lost TLB shootdowns** — ``on_invalidate`` swallows invalidations for
  a window, leaving stale MapIDs being served;
* **allocation failures** — ``on_pimalloc`` raises
  :class:`~repro.os.buddy.OutOfMemoryError`;
* **PIM processing-unit failures** — permanent, surfaced to the health
  monitor / :class:`~repro.reliability.degrade.ResilientEngine`;
* **process crashes** — ``on_journal`` raises
  :class:`~repro.core.journal.InjectedCrash` at an armed journal
  checkpoint, modelling a kill mid-``pimalloc``/free/phase-switch; the
  write-ahead journal's recovery replay must restore consistency.

Everything is driven by one ``random.Random(seed)``, so a campaign is
exactly reproducible: same seed, same faults, same report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.journal import InjectedCrash
from repro.os.buddy import OutOfMemoryError
from repro.os.page_table import HUGE_SHIFT, MAP_ID_BITS, MAP_ID_SHIFT, PAGE_SHIFT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pimalloc import PimSystem, PimTensor

__all__ = ["FaultEvent", "FaultInjector", "FaultKind"]

_BankKey = Tuple[int, int, int]


class FaultKind:
    """String tags for every injectable fault (kept as plain strings so
    reports and logs serialize trivially)."""

    TRANSIENT_FLIP = "transient-flip"
    DOUBLE_FLIP = "double-flip"
    STUCK_BIT = "stuck-bit"
    PTE_MAP_ID = "pte-map-id"
    MAPPING_ENTRY = "mapping-entry"
    STALE_TLB = "stale-tlb"
    ALLOC_OOM = "alloc-oom"
    PU_FAIL = "pu-fail"
    CRASH = "crash"


@dataclass(frozen=True)
class FaultEvent:
    """One injected (or planned) fault, for the campaign log."""

    kind: str
    detail: Tuple = ()


@dataclass(frozen=True)
class _StuckBit:
    key: _BankKey
    byte_offset: int  # into the bank's flat byte array
    bit: int
    value: int  # 0 or 1


class FaultInjector:
    """Seeded fault planner + hook implementation for one system."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.stuck: List[_StuckBit] = []
        self.failed_pus: Set[_BankKey] = set()
        self.log: List[FaultEvent] = []
        self._suppress_invalidations = 0
        self._fail_allocs = 0
        self._pending_crash: Optional[Tuple[str, int]] = None
        self._system: Optional["PimSystem"] = None

    # -- attachment --------------------------------------------------------

    def attach(self, system: "PimSystem") -> "FaultInjector":
        """Install this injector's hooks into every layer of *system*."""
        if system.memory is not None:
            system.memory.fault_hook = self
        system.space.page_table.fault_hook = self
        system.space.mmu.tlb.fault_hook = self
        system.allocator.fault_hook = self
        if system.allocator.journal is not None:
            system.allocator.journal.fault_hook = self
        self._system = system
        return self

    def detach(self) -> None:
        system = self._system
        if system is None:
            return
        if system.memory is not None and system.memory.fault_hook is self:
            system.memory.fault_hook = None
        if system.space.page_table.fault_hook is self:
            system.space.page_table.fault_hook = None
        if system.space.mmu.tlb.fault_hook is self:
            system.space.mmu.tlb.fault_hook = None
        if system.allocator.fault_hook is self:
            system.allocator.fault_hook = None
        journal = system.allocator.journal
        if journal is not None and journal.fault_hook is self:
            journal.fault_hook = None
        self._system = None

    # -- hook callbacks ----------------------------------------------------

    def on_bank_access(self, key: _BankKey, array: np.ndarray) -> None:
        """Re-assert stuck-at cells each time the bank is touched."""
        if not self.stuck:
            return
        flat = array.reshape(-1)
        for fault in self.stuck:
            if fault.key != key:
                continue
            byte = int(flat[fault.byte_offset])
            if fault.value:
                byte |= 1 << fault.bit
            else:
                byte &= ~(1 << fault.bit)
            flat[fault.byte_offset] = byte

    def on_walk(self, va: int, result):
        """Transient walker faults would go here; persistent PTE
        corruption uses :meth:`corrupt_pte_map_id` instead."""
        return result

    def on_invalidate(self, va: int, page_shift: int) -> bool:
        """Return False to swallow a TLB shootdown (stale-TLB window)."""
        if self._suppress_invalidations > 0:
            self._suppress_invalidations -= 1
            self.log.append(
                FaultEvent(FaultKind.STALE_TLB, (va, page_shift))
            )
            return False
        return True

    def on_pimalloc(self, matrix) -> None:
        if self._fail_allocs > 0:
            self._fail_allocs -= 1
            self.log.append(
                FaultEvent(FaultKind.ALLOC_OOM, (matrix.rows, matrix.cols))
            )
            raise OutOfMemoryError(
                "injected allocation failure (reliability campaign)"
            )

    def on_journal(self, site: str) -> None:
        """Crash the process at an armed journal checkpoint."""
        if self._pending_crash is None:
            return
        armed_site, skip = self._pending_crash
        if site != armed_site:
            return
        if skip > 0:
            self._pending_crash = (armed_site, skip - 1)
            return
        self._pending_crash = None
        self.log.append(FaultEvent(FaultKind.CRASH, (site,)))
        raise InjectedCrash(site)

    # -- scheduling --------------------------------------------------------

    def schedule_crash(self, site: str, after: int = 0) -> None:
        """Arm a crash at journal checkpoint *site*; with ``after=k`` the
        crash fires on the (k+1)-th hit of that site (e.g. the k-th page
        of a phase switch's PTE walk)."""
        self._pending_crash = (site, after)

    def suppress_invalidations(self, n: int = 1) -> None:
        """Swallow the next *n* TLB shootdowns."""
        self._suppress_invalidations += n

    def schedule_alloc_failures(self, n: int = 1) -> None:
        """Fail the next *n* pimalloc calls with an injected OOM."""
        self._fail_allocs += n

    # -- direct injections -------------------------------------------------

    def _tensor_coords(
        self, system: "PimSystem", tensor: "PimTensor"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat (bank-id, byte-index) coordinates of every physical byte
        of *tensor*, in virtual-address order."""
        from repro.core.mapping import Field

        controller = system.controller
        org = system.org
        bank_ids: List[np.ndarray] = []
        byte_indices: List[np.ndarray] = []
        for pa, length, map_id in system.space.mmu.translate_range(
            tensor.va, tensor.nbytes_padded
        ):
            pas = np.arange(pa, pa + length, dtype=np.int64)
            fields = controller.translate_array(pas, map_id)
            byte_index = (
                fields[Field.ROW] * org.row_bytes
                + fields[Field.COL] * org.transfer_bytes
                + fields[Field.OFFSET]
            )
            bank_ids.append(
                system.memory._bank_ids(
                    fields[Field.CHANNEL], fields[Field.RANK], fields[Field.BANK]
                )
            )
            byte_indices.append(byte_index)
        return np.concatenate(bank_ids), np.concatenate(byte_indices)

    def flip_bits_in_tensor(
        self, system: "PimSystem", tensor: "PimTensor", n_flips: int
    ) -> List[FaultEvent]:
        """Inject *n_flips* transient single-bit flips into distinct ECC
        words of the tensor's physical bytes (each is independently
        correctable)."""
        if n_flips <= 0:
            return []
        bank_ids, byte_indices = self._tensor_coords(system, tensor)
        events: List[FaultEvent] = []
        chosen: Set[Tuple[int, int]] = set()  # (bank_id, word)
        for _ in range(n_flips):
            for _attempt in range(32):
                i = self.rng.randrange(len(byte_indices))
                word_key = (int(bank_ids[i]), int(byte_indices[i]) >> 3)
                if word_key not in chosen:
                    chosen.add(word_key)
                    break
            else:
                break  # tensor smaller than requested distinct words
            key = system.memory._key_from_id(int(bank_ids[i]))
            bit = self.rng.randrange(8)
            flat = system.memory.bank(*key).reshape(-1)
            flat[byte_indices[i]] ^= 1 << bit
            event = FaultEvent(
                FaultKind.TRANSIENT_FLIP, (key, int(byte_indices[i]), bit)
            )
            self.log.append(event)
            events.append(event)
        return events

    def double_flip_in_tensor(
        self, system: "PimSystem", tensor: "PimTensor"
    ) -> FaultEvent:
        """Flip two distinct bits of one ECC word — uncorrectable by
        SECDED, must surface as a detected error."""
        bank_ids, byte_indices = self._tensor_coords(system, tensor)
        i = self.rng.randrange(len(byte_indices))
        key = system.memory._key_from_id(int(bank_ids[i]))
        word_base = (int(byte_indices[i]) >> 3) << 3
        flat = system.memory.bank(*key).reshape(-1)
        first = (self.rng.randrange(8), self.rng.randrange(8))
        while True:
            second = (self.rng.randrange(8), self.rng.randrange(8))
            if second != first:
                break
        for byte_off, bit in (first, second):
            flat[word_base + byte_off] ^= 1 << bit
        event = FaultEvent(FaultKind.DOUBLE_FLIP, (key, word_base, first, second))
        self.log.append(event)
        return event

    def add_stuck_bit(
        self,
        system: "PimSystem",
        key: _BankKey,
        byte_offset: int,
        bit: int,
        value: int,
    ) -> FaultEvent:
        """Install a stuck-at-``value`` cell, re-asserted on every bank
        access via the ``on_bank_access`` hook."""
        fault = _StuckBit(key=key, byte_offset=byte_offset, bit=bit, value=value)
        self.stuck.append(fault)
        # Assert immediately so the fault exists even before any access.
        self.on_bank_access(key, system.memory.bank(*key))
        event = FaultEvent(FaultKind.STUCK_BIT, (key, byte_offset, bit, value))
        self.log.append(event)
        return event

    def clear_stuck_bits(self) -> None:
        self.stuck.clear()

    def corrupt_pte_map_id(
        self, system: "PimSystem", va: int, bit: Optional[int] = None
    ) -> FaultEvent:
        """Flip one bit of the MapID stored in the huge-page PTE covering
        *va*, then drop the (still-correct) TLB copy so the corruption is
        actually consumed at the next walk."""
        if bit is None:
            bit = self.rng.randrange(MAP_ID_BITS)
        system.space.page_table.corrupt_pte(va, 1 << (MAP_ID_SHIFT + bit))
        tlb = system.space.mmu.tlb
        hook, tlb.fault_hook = tlb.fault_hook, None  # not a shootdown to lose
        try:
            tlb.invalidate(va, HUGE_SHIFT)
            tlb.invalidate(va, PAGE_SHIFT)
        finally:
            tlb.fault_hook = hook
        event = FaultEvent(FaultKind.PTE_MAP_ID, (va, bit))
        self.log.append(event)
        return event

    def corrupt_mapping_entry(self, table, map_id: int) -> FaultEvent:
        """Scramble a registered mapping in place (swap two PA sources
        between fields) without updating its parity — models an upset in
        the controller's mux-configuration SRAM."""
        from repro.core.mapping import AddressMapping

        entry = table._entries[map_id]
        if entry is None:
            raise KeyError(f"MapID {map_id} not registered")
        fields = {fname: list(pos) for fname, pos in entry.fields.items()}
        swappable = [f for f, pos in fields.items() if pos]
        fa, fb = self.rng.sample(swappable, 2)
        ia = self.rng.randrange(len(fields[fa]))
        ib = self.rng.randrange(len(fields[fb]))
        fields[fa][ia], fields[fb][ib] = fields[fb][ib], fields[fa][ia]
        corrupted = AddressMapping(
            name=entry.name,
            n_bits=entry.n_bits,
            fields={f: tuple(pos) for f, pos in fields.items()},
        )
        table._entries[map_id] = corrupted
        event = FaultEvent(FaultKind.MAPPING_ENTRY, (map_id, fa, ia, fb, ib))
        self.log.append(event)
        return event

    def fail_pu(self, key: _BankKey) -> FaultEvent:
        """Mark one PIM processing unit (bank) permanently failed."""
        self.failed_pus.add(key)
        event = FaultEvent(FaultKind.PU_FAIL, (key,))
        self.log.append(event)
        return event

    @property
    def pim_failed(self) -> bool:
        return bool(self.failed_pus)
