"""Reliability layer: fault injection, ECC, integrity, degradation
(extension; not part of the FACIL paper).

The flexible-mapping stack adds hardware state a conventional system does
not have — the mapping table, MapID bits in PTEs and TLB entries — and
the paper's reviewers' first question is what happens when any of it
breaks.  This package answers it experimentally:

* :mod:`repro.reliability.faults` — seeded deterministic fault injection
  into every layer (DRAM cells, PTEs, TLB shootdowns, the allocator, the
  PIM units);
* :mod:`repro.reliability.ecc` — functional SECDED(72,64) on the
  controller's data path;
* :mod:`repro.reliability.integrity` — parity-protected mapping-table
  entries, verified on every translation;
* :mod:`repro.reliability.degrade` — per-component health tracking and
  fallback policies (facil -> hybrid-static, PIM decode -> SoC decode);
* :mod:`repro.reliability.campaign` — chaos campaigns tying it together
  into a reliability report (zero silent corruptions is the bar).
"""

from repro.reliability.campaign import (
    CampaignSpec,
    ReliabilityReport,
    TINY_CAMPAIGN_ORG,
    run_campaign,
)
from repro.reliability.degrade import (
    Health,
    HealthMonitor,
    ResilientEngine,
    ResilientQuery,
)
from repro.reliability.ecc import (
    EccEngine,
    STATUS_CLEAN,
    STATUS_CORRECTED,
    STATUS_UNCORRECTABLE,
    UncorrectableEccError,
    secded_decode,
    secded_encode,
)
from repro.reliability.faults import FaultEvent, FaultInjector, FaultKind
from repro.reliability.integrity import (
    MappingIntegrityError,
    ParityMappingTable,
    mapping_checksum,
)

__all__ = [
    "CampaignSpec",
    "EccEngine",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "Health",
    "HealthMonitor",
    "MappingIntegrityError",
    "ParityMappingTable",
    "ReliabilityReport",
    "ResilientEngine",
    "ResilientQuery",
    "STATUS_CLEAN",
    "STATUS_CORRECTED",
    "STATUS_UNCORRECTABLE",
    "TINY_CAMPAIGN_ORG",
    "UncorrectableEccError",
    "mapping_checksum",
    "run_campaign",
    "secded_decode",
    "secded_encode",
]
