"""Chaos campaigns: seeded end-to-end fault sweeps with a reliability
report (extension).

A campaign drives the *functional* FACIL stack (pimalloc -> virtual-
address store -> PIM-layout physical placement -> load) for a sequence of
queries while a :class:`~repro.reliability.faults.FaultInjector` injects
faults at rates given by :class:`CampaignSpec`, and a
:class:`~repro.reliability.degrade.ResilientEngine` prices how the
corresponding inference queries would have been served.

Each query walks a **recovery ladder** — every injected fault must end up
in exactly one bucket:

1. **corrected** — single-bit flips fixed transparently by SECDED ECC;
2. **detected** — uncorrectable ECC words, parity-failed mapping entries,
   MapID-corrupted PTEs, stale TLB entries, injected allocation failures:
   all surfaced as exceptions or consistency-check failures, then
   recovered (rewrite, repair, flush, retry) and priced as retries;
3. **degraded** — permanent PIM failures served through the SoC fallback.

Anything that slips through all three and still changes the bytes a read
returns is **silent corruption** — the campaign checks every load against
a ground-truth CRC and counts it.  The acceptance bar for the reliability
subsystem is *zero silent corruptions* at any configured rate.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pimalloc import PimSystem
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG, DramOrganization
from repro.os.buddy import OutOfMemoryError
from repro.os.page_table import MAP_ID_BITS
from repro.pim.config import PimConfig
from repro.reliability.degrade import Health, ResilientEngine, ResilientQuery
from repro.reliability.ecc import UncorrectableEccError
from repro.reliability.faults import FaultInjector
from repro.reliability.integrity import MappingIntegrityError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.render import percentile_ms, render_text

__all__ = ["CampaignSpec", "ReliabilityReport", "run_campaign", "TINY_CAMPAIGN_ORG"]

#: Small functional geometry used when the caller does not supply one:
#: 2 channels x 1 rank x 4 banks, 4096 rows x 256 B — big enough for a
#: few huge pages, small enough to run hundreds of stores per second.
TINY_CAMPAIGN_ORG = TINY_ORG

#: Matrix shapes cycled through by the campaign (all map to distinct
#: PIM-optimized mappings on the tiny geometry).
_SHAPES: Tuple[Tuple[int, int], ...] = ((16, 256), (8, 128), (32, 256))


@dataclass(frozen=True)
class CampaignSpec:
    """Configuration of one chaos campaign (fully determined by *seed*)."""

    seed: int = 0
    n_queries: int = 20
    policy: str = "facil"
    prefill_len: int = 64
    decode_len: int = 16
    #: expected transient single-bit flips injected per query
    flip_rate: float = 1.0
    #: probability of an uncorrectable double-bit flip per query
    double_flip_rate: float = 0.0
    #: probability of a MapID bit flip in a live PTE per query
    pte_corrupt_rate: float = 0.0
    #: probability of a scrambled mapping-table entry per query
    mapping_corrupt_rate: float = 0.0
    #: probability of a swallowed TLB shootdown per query
    stale_tlb_rate: float = 0.0
    #: probability of an injected allocation failure per query
    alloc_fail_rate: float = 0.0
    #: query index at which one PIM unit permanently fails (None: never)
    pu_fail_at: Optional[int] = None


@dataclass
class ReliabilityReport:
    """Aggregate outcome of one campaign."""

    spec: CampaignSpec
    #: fault counters live in a telemetry registry (one sample per fault
    #: kind on ``faults_injected_total``) instead of an ad-hoc dict; the
    #: :attr:`injected` view keeps the report's public shape
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    corrected: int = 0  # single-bit flips fixed by ECC
    detected: int = 0  # surfaced + recovered faults
    silent: int = 0  # corruption that reached a consumer unnoticed
    aborted: int = 0  # queries the resilient engine gave up on
    served: int = 0
    queries: List[ResilientQuery] = field(default_factory=list)
    fault_log_len: int = 0
    health: Dict[str, str] = field(default_factory=dict)

    @property
    def injected(self) -> Dict[str, int]:
        """Injected-fault counts by kind (view over the registry)."""
        counter = self.metrics.get("faults_injected_total")
        if counter is None:
            return {}
        return {
            sample["labels"]["kind"]: int(sample["value"])
            for sample in counter.sample_dicts()
        }

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    @property
    def availability(self) -> float:
        return self.served / self.n_queries if self.queries else 0.0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _ttlts(self) -> List[float]:
        return [q.ttlt_ns for q in self.queries]

    @property
    def mean_ttlt_ns(self) -> float:
        ttlts = self._ttlts()
        return sum(ttlts) / len(ttlts) if ttlts else 0.0

    @property
    def p99_ttlt_ns(self) -> float:
        return percentile_ms(self._ttlts(), 99.0) * 1e6

    @property
    def mean_degradation_ns(self) -> float:
        if not self.queries:
            return 0.0
        return float(np.mean([q.degradation_ns for q in self.queries]))

    @property
    def degraded_queries(self) -> int:
        return sum(1 for q in self.queries if q.degraded)

    def to_dict(self) -> Dict:
        """Machine-readable form (the CLI writes this to
        ``benchmarks/results/``)."""
        return {
            "seed": self.spec.seed,
            "policy": self.spec.policy,
            "n_queries": self.n_queries,
            "injected": dict(sorted(self.injected.items())),
            "total_injected": self.total_injected,
            "corrected": self.corrected,
            "detected": self.detected,
            "silent": self.silent,
            "aborted": self.aborted,
            "served": self.served,
            "availability": self.availability,
            "degraded_queries": self.degraded_queries,
            "mean_ttlt_ms": self.mean_ttlt_ns / 1e6,
            "p99_ttlt_ms": self.p99_ttlt_ns / 1e6,
            "mean_degradation_ms": self.mean_degradation_ns / 1e6,
            "health": dict(self.health),
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        header = (
            f"chaos campaign: seed={self.spec.seed} policy={self.spec.policy} "
            f"queries={self.n_queries}"
        )
        pairs = [
            (
                "injected faults",
                ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
                or "none",
            ),
            ("corrected (ECC)", self.corrected),
            ("detected", self.detected),
            ("silent", self.silent),
            ("aborted", self.aborted),
            ("availability", f"{self.availability:.3f}"),
            ("degraded queries", self.degraded_queries),
            ("mean TTLT", f"{self.mean_ttlt_ns / 1e6:.3f} ms"),
            ("p99 TTLT", f"{self.p99_ttlt_ns / 1e6:.3f} ms"),
            ("mean degradation", f"{self.mean_degradation_ns / 1e6:.3f} ms"),
            (
                "component health",
                ", ".join(f"{k}={v}" for k, v in self.health.items())
                or "all healthy",
            ),
        ]
        return render_text(header, pairs)


def _count(report: ReliabilityReport, kind: str, n: int = 1) -> None:
    report.metrics.counter(
        "faults_injected_total", "faults injected by kind", labelnames=("kind",)
    ).inc(n, kind=kind)


def _poisson_like(rng, rate: float) -> int:
    """Small deterministic fault-count draw: floor(rate) plus a Bernoulli
    on the fractional part (keeps expectations exact without needing a
    full Poisson sampler)."""
    base = int(rate)
    if rng.random() < rate - base:
        base += 1
    return base


def run_campaign(
    spec: CampaignSpec,
    engine: Optional[ResilientEngine] = None,
    org: Optional[DramOrganization] = None,
    pim: Optional[PimConfig] = None,
) -> ReliabilityReport:
    """Run one seeded chaos campaign; see the module docstring.

    *engine* defaults to a :class:`ResilientEngine` over the iPhone
    platform (the smallest model, fastest to construct); pass one to
    reuse an existing engine across sweeps.
    """
    if spec.n_queries <= 0:
        raise ValueError("n_queries must be positive")
    if engine is None:
        from repro.engine.policies import InferenceEngine
        from repro.platforms.specs import IPHONE_15_PRO

        engine = ResilientEngine(InferenceEngine(IPHONE_15_PRO))

    campaign_org = org if org is not None else TINY_CAMPAIGN_ORG
    if pim is None:
        from repro.pim.config import aim_config_for

        pim = aim_config_for(campaign_org)
    system = PimSystem.build(
        campaign_org, pim, functional=True, ecc=True, integrity=True
    )
    injector = FaultInjector(spec.seed).attach(system)
    rng = injector.rng  # one stream drives everything: reproducible
    data_rng = np.random.default_rng(spec.seed)

    report = ReliabilityReport(spec=spec)
    if system.ecc is None:
        raise ValueError("reliability campaign requires an ECC-enabled system")
    ecc = system.ecc
    table = system.controller.table
    tlb = system.space.mmu.tlb

    for query_index in range(spec.n_queries):
        transient_faults = 0  # detected faults needing a retry this query

        # -- permanent PU failure -------------------------------------
        if spec.pu_fail_at is not None and query_index == spec.pu_fail_at:
            injector.fail_pu((0, 0, 0))
            engine.note_fault(ResilientEngine.PIM, permanent=True)
            _count(report, "pu-fail")

        # -- allocation (with injected OOM + retry) -------------------
        rows, cols = _SHAPES[query_index % len(_SHAPES)]
        matrix = MatrixConfig(rows=rows, cols=cols, dtype_bytes=2)
        if rng.random() < spec.alloc_fail_rate:
            injector.schedule_alloc_failures(1)
            _count(report, "alloc-oom")
        try:
            tensor = system.pimalloc(matrix)
        except OutOfMemoryError:
            report.detected += 1  # surfaced; retry once (hook consumed)
            transient_faults += 1
            tensor = system.pimalloc(matrix)

        # -- store ground-truth data ----------------------------------
        data = data_rng.integers(0, 1 << 16, size=(rows, cols), dtype=np.uint16)
        truth_crc = zlib.crc32(data.tobytes())
        tensor.store(data)

        # -- inject per-query faults ----------------------------------
        n_flips = _poisson_like(rng, spec.flip_rate)
        if n_flips:
            events = injector.flip_bits_in_tensor(system, tensor, n_flips)
            _count(report, "transient-flip", len(events))
        double_flipped = rng.random() < spec.double_flip_rate
        if double_flipped:
            injector.double_flip_in_tensor(system, tensor)
            _count(report, "double-flip")
        pte_bit: Optional[int] = None
        if rng.random() < spec.pte_corrupt_rate:
            pte_bit = rng.randrange(MAP_ID_BITS)
            injector.corrupt_pte_map_id(system, tensor.va, bit=pte_bit)
            _count(report, "pte-map-id")
        mapping_corrupted = rng.random() < spec.mapping_corrupt_rate
        if mapping_corrupted:
            injector.corrupt_mapping_entry(table, tensor.map_id)
            _count(report, "mapping-entry")
        stale_tlb = rng.random() < spec.stale_tlb_rate
        if stale_tlb:
            injector.suppress_invalidations(1)
            _count(report, "stale-tlb")

        # -- recovery ladder ------------------------------------------
        # (a) software MapID consistency check: the allocator knows which
        # MapID it put in the PTEs; a walk disagreeing means PTE corruption.
        walked = system.space.page_table.walk(tensor.va)
        if walked.map_id != tensor.map_id:
            report.detected += 1
            transient_faults += 1
            engine.note_fault(ResilientEngine.MAPPING)
            if pte_bit is not None:
                # repair: flip the same bit back, then drop TLB copies
                injector.corrupt_pte_map_id(system, tensor.va, bit=pte_bit)
            else:  # corruption of unknown provenance: remap is the cure
                report.silent += 1

        # (b) parity scrub of the mapping table (a real controller runs
        # this periodically; here it runs before every read burst)
        if table.verify_all():
            report.detected += 1
            transient_faults += 1
            engine.note_fault(ResilientEngine.MAPPING)
            # only this query's entry can be bad: reinstall the good copy
            table.repair(tensor.map_id, tensor.mapping)

        # (c) read back through ECC + the parity-checked mapping table
        corrected_before = ecc.total_corrected
        loaded: Optional[np.ndarray] = None
        for _attempt in range(3):
            try:
                loaded = tensor.load(np.uint16)
                break
            except UncorrectableEccError:
                report.detected += 1
                transient_faults += 1
                engine.note_fault(ResilientEngine.MEMORY)
                # recovery: rewrite the affected data from its source
                tensor.store(data)
            except MappingIntegrityError:
                report.detected += 1
                transient_faults += 1
                engine.note_fault(ResilientEngine.MAPPING)
                table.repair(tensor.map_id, tensor.mapping)
        report.corrected += ecc.total_corrected - corrected_before

        # (d) ground truth: anything still wrong got past every defense
        if loaded is not None and zlib.crc32(loaded.tobytes()) != truth_crc:
            report.silent += 1

        # (e) free; a swallowed shootdown leaves a stale TLB entry that
        # the post-free coherence check catches and flushes (a lost
        # shootdown at an uncached VA corrupts nothing: benign)
        tensor.free()
        if tlb.lookup(tensor.va) is not None:
            report.detected += 1
            tlb.flush()

        # -- price the query through the resilient engine -------------
        result = engine.run_query(
            spec.policy,
            spec.prefill_len,
            spec.decode_len,
            transient_faults=transient_faults,
        )
        report.queries.append(result)
        if result.served and loaded is not None:
            report.served += 1
        else:
            report.aborted += 1

    report.fault_log_len = len(injector.log)
    report.health = engine.monitor.summary()
    injector.detach()
    registry = report.metrics
    ladder = registry.counter(
        "campaign_faults_total", "recovery-ladder outcomes",
        labelnames=("bucket",),
    )
    for bucket, count in (
        ("corrected", report.corrected),
        ("detected", report.detected),
        ("silent", report.silent),
    ):
        ladder.inc(count, bucket=bucket)
    outcomes = registry.counter(
        "campaign_queries_total", "query outcomes", labelnames=("status",)
    )
    outcomes.inc(report.served, status="served")
    outcomes.inc(report.aborted, status="aborted")
    registry.gauge(
        "campaign_availability", "fraction of queries served"
    ).set(report.availability)
    ttlt_h = registry.histogram("campaign_ttlt_ns", "per-query TTLT")
    for query in report.queries:
        ttlt_h.observe(query.ttlt_ns)
    return report
