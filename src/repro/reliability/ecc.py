"""SECDED ECC over the functional DRAM arrays (extension).

Commodity LPDDR parts ship with on-die ECC, and any production SoC-PIM
deployment of FACIL inherits it: a single-bit upset in a bank must not
corrupt a weight matrix that both the SoC (through a flexible mapping)
and the PIM units (through raw row reads) consume.  This module provides
a functional SECDED(72,64) extended Hamming code — 64 data bits plus 8
check bits per code word — applied by :class:`~repro.core.controller.
MemoryController` to every aligned 8-byte word a read or write touches:

* single-bit errors are **corrected in place** (write-back scrubbing, so
  the PIM path, which bypasses the controller, also benefits from any
  word the SoC has scrubbed);
* double-bit errors are **detected** and surfaced as
  :class:`UncorrectableEccError` for the reliability layer to retry;
* corrections and detections are counted **per bank**, feeding the
  chaos-campaign report and the health monitor.

Check bytes live in a shadow store keyed by bank — the functional
:class:`~repro.dram.memory.PhysicalMemory` models only the data bits, as
real DRAM dies keep ECC bits in separate columns invisible to the host.

The encoder/decoder are fully vectorised: parity is computed by XOR
folding over ``uint64`` lanes, so scrubbing a megabyte costs a handful of
numpy passes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dram.memory import PhysicalMemory

__all__ = [
    "WORD_BYTES",
    "EccEngine",
    "UncorrectableEccError",
    "secded_encode",
    "secded_decode",
]

#: ECC code word granularity: 64 data bits.
WORD_BYTES = 8

# Extended-Hamming position assignment: check bit k guards code word
# position 2**k; data bits occupy the 64 non-power-of-two positions in
# [1, 72); "position 0" is the overall-parity bit (stored as check bit 7).
_DATA_POSITIONS = tuple(p for p in range(1, 72) if p & (p - 1))
if len(_DATA_POSITIONS) != 64:  # arithmetic invariant of (72, 64) Hamming
    raise AssertionError("extended-Hamming data positions must number 64")

_MASKS = np.array(
    [
        sum(1 << i for i, p in enumerate(_DATA_POSITIONS) if p & (1 << k))
        for k in range(7)
    ],
    dtype=np.uint64,
)

# Syndrome decode tables: syndrome -> data bit to flip, or check bit to
# flip.  A syndrome hitting neither is not a valid single-bit position,
# so the word holds >= 2 errors.
_SYN_TO_DATABIT = np.full(128, -1, dtype=np.int16)
for _i, _p in enumerate(_DATA_POSITIONS):
    _SYN_TO_DATABIT[_p] = _i
_SYN_TO_CHECKBIT = np.full(128, -1, dtype=np.int16)
_SYN_TO_CHECKBIT[0] = 7  # the overall-parity bit itself
for _k in range(7):
    _SYN_TO_CHECKBIT[1 << _k] = _k

#: decode() status codes
STATUS_CLEAN = 0
STATUS_CORRECTED = 1
STATUS_UNCORRECTABLE = 2


def _parity64(x: np.ndarray) -> np.ndarray:
    """Bitwise parity of each uint64 lane (0 or 1, as uint8)."""
    x = x.astype(np.uint64, copy=True)
    for shift in (32, 16, 8, 4, 2, 1):
        x ^= x >> np.uint64(shift)
    return (x & np.uint64(1)).astype(np.uint8)


def _parity8(b: np.ndarray) -> np.ndarray:
    """Bitwise parity of each uint8 lane."""
    b = b.astype(np.uint8, copy=True)
    for shift in (4, 2, 1):
        b ^= b >> np.uint8(shift)
    return b & np.uint8(1)


def secded_encode(data: np.ndarray) -> np.ndarray:
    """Check bytes for an array of 64-bit data words.

    Bit *k* (k < 7) of each check byte is the Hamming parity over the
    data bits whose code word position has bit *k* set; bit 7 makes the
    parity of the whole 72-bit code word even.
    """
    data = np.asarray(data, dtype=np.uint64)
    check = np.zeros(data.shape, dtype=np.uint8)
    for k in range(7):
        check |= _parity64(data & _MASKS[k]) << np.uint8(k)
    overall = _parity64(data) ^ _parity8(check)
    return check | (overall << np.uint8(7))


def secded_decode(
    data: np.ndarray, check: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode possibly-corrupted (data, check) word arrays.

    Returns ``(data, check, status)`` with single-bit errors (in data
    *or* check bits) corrected and ``status`` per word: 0 clean, 1
    corrected, 2 uncorrectable (double-bit, detected but not fixed).
    """
    data = np.asarray(data, dtype=np.uint64).copy()
    check = np.asarray(check, dtype=np.uint8).copy()
    syndrome = np.zeros(data.shape, dtype=np.uint8)
    for k in range(7):
        syndrome |= (
            _parity64(data & _MASKS[k]) ^ ((check >> np.uint8(k)) & np.uint8(1))
        ) << np.uint8(k)
    overall = _parity64(data) ^ _parity8(check)

    databit = _SYN_TO_DATABIT[syndrome]
    checkbit = _SYN_TO_CHECKBIT[syndrome]
    single = overall == 1
    fix_data = single & (databit >= 0)
    fix_check = single & (checkbit >= 0)
    data[fix_data] ^= np.uint64(1) << databit[fix_data].astype(np.uint64)
    check[fix_check] ^= (np.uint8(1) << checkbit[fix_check].astype(np.uint8))

    # Even overall parity with a nonzero syndrome, or a syndrome naming
    # no valid position, means >= 2 bit errors: detected, not corrected.
    uncorrectable = ((overall == 0) & (syndrome != 0)) | (
        single & (databit < 0) & (checkbit < 0)
    )
    status = np.where(
        uncorrectable,
        STATUS_UNCORRECTABLE,
        np.where((syndrome == 0) & (overall == 0), STATUS_CLEAN, STATUS_CORRECTED),
    ).astype(np.uint8)
    return data, check, status


class UncorrectableEccError(RuntimeError):
    """A read touched at least one word with a double-bit error.

    Attributes:
        faults: ``((channel, rank, bank), word_index)`` pairs, one per
            uncorrectable word, in deterministic (sorted) order.
    """

    def __init__(self, faults: Sequence[Tuple[Tuple[int, int, int], int]]):
        self.faults = tuple(faults)
        preview = ", ".join(
            f"bank{key}@word{word}" for key, word in self.faults[:4]
        )
        more = "" if len(self.faults) <= 4 else f" (+{len(self.faults) - 4} more)"
        super().__init__(
            f"uncorrectable ECC error in {len(self.faults)} word(s): "
            f"{preview}{more}"
        )


class EccEngine:
    """Shadow check-byte store plus scrubbing for a :class:`PhysicalMemory`.

    One engine serves one memory; the controller calls :meth:`protect`
    after every functional write and :meth:`scrub` before every read.
    """

    def __init__(self) -> None:
        self._shadow: Dict[Tuple[int, int, int], np.ndarray] = {}
        #: single-bit corrections performed, per bank
        self.corrected_by_bank: Dict[Tuple[int, int, int], int] = {}
        #: double-bit detections raised, per bank
        self.detected_by_bank: Dict[Tuple[int, int, int], int] = {}

    @property
    def total_corrected(self) -> int:
        return sum(self.corrected_by_bank.values())

    @property
    def total_detected(self) -> int:
        return sum(self.detected_by_bank.values())

    # -- internals ---------------------------------------------------------

    def _shadow_for(
        self, memory: "PhysicalMemory", key: Tuple[int, int, int]
    ) -> np.ndarray:
        shadow = self._shadow.get(key)
        if shadow is None:
            n_words = memory.bank(*key).size // WORD_BYTES
            # A zero word encodes to a zero check byte, so untouched
            # (lazily zeroed) DRAM is born consistent.
            shadow = np.zeros(n_words, dtype=np.uint8)
            self._shadow[key] = shadow
        return shadow

    @staticmethod
    def _by_bank(
        memory: "PhysicalMemory",
        channel: np.ndarray,
        rank: np.ndarray,
        bank: np.ndarray,
        byte_index: np.ndarray,
    ):
        bank_id = memory._bank_ids(channel, rank, bank)
        for key_id in np.unique(bank_id):
            key = memory._key_from_id(int(key_id))
            words = np.unique(byte_index[bank_id == key_id] >> 3)
            yield key, words

    # -- controller entry points -------------------------------------------

    def protect(
        self,
        memory: "PhysicalMemory",
        channel: np.ndarray,
        rank: np.ndarray,
        bank: np.ndarray,
        byte_index: np.ndarray,
    ) -> None:
        """Recompute check bytes for every word the write touched
        (read-modify-write at word granularity, as real ECC DRAM does)."""
        for key, words in self._by_bank(memory, channel, rank, bank, byte_index):
            flat = memory.bank(*key).reshape(-1).view(np.uint64)
            self._shadow_for(memory, key)[words] = secded_encode(flat[words])

    def fetch(
        self,
        memory: "PhysicalMemory",
        channel: np.ndarray,
        rank: np.ndarray,
        bank: np.ndarray,
        byte_index: np.ndarray,
    ) -> np.ndarray:
        """Corrected read: verify/correct every word the read touches,
        then return the requested bytes from the repaired arrays.

        Correcting and gathering in one bank access is what makes the
        correction *in flight*, as real SECDED logic is: a stuck-at cell
        (re-asserted by the fault hook on every bank access) still yields
        correct read data on every read, at one correction per read.
        Corrections are also written back to the bank array (and the
        shadow), so later raw-row PIM reads see the repaired data too.

        Raises:
            UncorrectableEccError: if any touched word carries a
                double-bit error (after correcting all single-bit ones).
        """
        out = np.empty(len(byte_index), dtype=np.uint8)
        bad: List[Tuple[Tuple[int, int, int], int]] = []
        bank_id = memory._bank_ids(channel, rank, bank)
        for key_id in np.unique(bank_id):
            key = memory._key_from_id(int(key_id))
            mask = bank_id == key_id
            indices = byte_index[mask]
            words = np.unique(indices >> 3)
            flat_bytes = memory.bank(*key).reshape(-1)
            flat = flat_bytes.view(np.uint64)
            shadow = self._shadow_for(memory, key)
            data, check, status = secded_decode(flat[words], shadow[words])
            corrected = status == STATUS_CORRECTED
            if corrected.any():
                flat[words[corrected]] = data[corrected]
                shadow[words[corrected]] = check[corrected]
                self.corrected_by_bank[key] = self.corrected_by_bank.get(
                    key, 0
                ) + int(corrected.sum())
            uncorrectable = status == STATUS_UNCORRECTABLE
            if uncorrectable.any():
                self.detected_by_bank[key] = self.detected_by_bank.get(
                    key, 0
                ) + int(uncorrectable.sum())
                bad.extend((key, int(w)) for w in words[uncorrectable])
            out[mask] = flat_bytes[indices]
        if bad:
            raise UncorrectableEccError(sorted(bad))
        return out

    def scrub(
        self,
        memory: "PhysicalMemory",
        channel: np.ndarray,
        rank: np.ndarray,
        bank: np.ndarray,
        byte_index: np.ndarray,
    ) -> None:
        """:meth:`fetch` without consuming the data (a scrub pass)."""
        self.fetch(memory, channel, rank, bank, byte_index)
