"""LLM architecture configurations for the three evaluated models.

Only the op-level structure matters for the reproduction: which linear
layers exist (their M x K shapes), how attention scales with context, and
the total weight footprint that drives both re-layout cost and
memory-bound GEMM/GEMV time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["LlmConfig", "LLAMA3_8B", "OPT_6_7B", "PHI_1_5", "MODELS", "model_by_name"]


@dataclass(frozen=True)
class LlmConfig:
    """Transformer decoder architecture description.

    Attributes:
        ffn_kind: ``"gated"`` (SwiGLU: gate/up/down) or ``"mlp"``
            (fc1/fc2 with an activation between).
        tied_embeddings: whether the LM head shares the embedding matrix.
    """

    name: str
    n_layers: int
    d_model: int
    n_heads: int
    n_kv_heads: int
    d_ff: int
    vocab_size: int
    ffn_kind: str = "gated"
    dtype_bytes: int = 2
    tied_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.ffn_kind not in ("gated", "mlp"):
            raise ValueError(f"unknown ffn_kind {self.ffn_kind!r}")
        if self.d_model % self.n_heads:
            raise ValueError("d_model must divide evenly into heads")
        if self.n_heads % self.n_kv_heads:
            raise ValueError("n_kv_heads must divide n_heads (GQA)")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K/V projections (grouped-query attention)."""
        return self.head_dim * self.n_kv_heads

    @property
    def kv_cache_bytes_per_token(self) -> int:
        """K and V cache traffic per token per layer-sweep."""
        return 2 * self.kv_dim * self.dtype_bytes * self.n_layers

    def weight_bytes(self) -> int:
        """Total linear-weight footprint (the paper's 16.2 GB for
        Llama3-8B at FP16), including embeddings and LM head."""
        per_layer = 0
        # attention projections
        per_layer += self.d_model * self.d_model  # Q
        per_layer += self.kv_dim * self.d_model  # K
        per_layer += self.kv_dim * self.d_model  # V
        per_layer += self.d_model * self.d_model  # O
        if self.ffn_kind == "gated":
            per_layer += 3 * self.d_ff * self.d_model  # gate, up, down
        else:
            per_layer += 2 * self.d_ff * self.d_model  # fc1, fc2
        total = per_layer * self.n_layers
        total += self.vocab_size * self.d_model  # embeddings
        if not self.tied_embeddings:
            total += self.vocab_size * self.d_model  # LM head
        return total * self.dtype_bytes


LLAMA3_8B = LlmConfig(
    name="llama3-8b",
    n_layers=32,
    d_model=4096,
    n_heads=32,
    n_kv_heads=8,
    d_ff=14336,
    vocab_size=128256,
    ffn_kind="gated",
)

OPT_6_7B = LlmConfig(
    name="opt-6.7b",
    n_layers=32,
    d_model=4096,
    n_heads=32,
    n_kv_heads=32,
    d_ff=16384,
    vocab_size=50272,
    ffn_kind="mlp",
    tied_embeddings=True,
)

PHI_1_5 = LlmConfig(
    name="phi-1.5",
    n_layers=24,
    d_model=2048,
    n_heads=32,
    n_kv_heads=32,
    d_ff=8192,
    vocab_size=51200,
    ffn_kind="mlp",
)

MODELS: Dict[str, LlmConfig] = {
    cfg.name: cfg for cfg in (LLAMA3_8B, OPT_6_7B, PHI_1_5)
}


def model_by_name(name: str) -> LlmConfig:
    try:
        return MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known: {sorted(MODELS)}"
        ) from None
