"""Phase-level inference cost accounting.

Builds the op lists the engine prices: prefill (GEMM over L tokens, run
once per query) and decode (GEMV per generated token, auto-regressive).
Attention over the KV cache and the non-linear glue (norms, rotary,
softmax, residuals) are accounted as flop/byte budgets priced on the SoC;
per the paper's profiling (Fig. 2a) they are a small slice next to the
linear ops, but they bound the achievable PIM speedup so they must be
present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.llm.layers import LinearSpec, linear_specs
from repro.llm.model_config import LlmConfig

__all__ = ["AttentionCost", "PhasePlan", "attention_cost", "prefill_plan", "decode_step_plan"]


@dataclass(frozen=True)
class AttentionCost:
    """Flops and memory traffic of attention + non-linear glue for one
    phase sweep through the model."""

    flops: float
    bytes_moved: float
    n_kernels: int


@dataclass(frozen=True)
class PhasePlan:
    """Everything the engine needs to price one phase invocation."""

    linears: List[LinearSpec]  # each priced at the phase's batch size
    batch_tokens: int  # n of the GEMM (1 for decode)
    attention: AttentionCost


def attention_cost(cfg: LlmConfig, q_tokens: int, context: int) -> AttentionCost:
    """Score + context matmuls over the KV cache, plus glue.

    For *q_tokens* query positions attending to *context* keys:
    ``2 * q * ctx * head_dim`` MACs per head for scores, the same for the
    value mix, across all heads and layers.  Memory traffic is dominated
    by the KV cache read (GQA shrinks it) and activation round trips.
    """
    per_layer_flops = 2.0 * 2.0 * q_tokens * context * cfg.d_model
    kv_read = 2.0 * context * cfg.kv_dim * cfg.dtype_bytes
    activations = 6.0 * q_tokens * cfg.d_model * cfg.dtype_bytes
    glue_flops = 10.0 * q_tokens * cfg.d_model  # norms, rotary, residual
    per_layer_bytes = kv_read + activations
    return AttentionCost(
        flops=(per_layer_flops + glue_flops) * cfg.n_layers,
        bytes_moved=per_layer_bytes * cfg.n_layers,
        # score, softmax, mix, two norms per layer
        n_kernels=5 * cfg.n_layers,
    )


def prefill_plan(cfg: LlmConfig, prefill_len: int) -> PhasePlan:
    """The prefill phase: every linear as a GEMM over *prefill_len* tokens."""
    if prefill_len <= 0:
        raise ValueError("prefill length must be positive")
    return PhasePlan(
        linears=linear_specs(cfg),
        batch_tokens=prefill_len,
        attention=attention_cost(cfg, prefill_len, prefill_len),
    )


def decode_step_plan(cfg: LlmConfig, context_len: int) -> PhasePlan:
    """One decode step with *context_len* tokens already in the KV cache."""
    if context_len <= 0:
        raise ValueError("context length must be positive")
    return PhasePlan(
        linears=linear_specs(cfg),
        batch_tokens=1,
        attention=attention_cost(cfg, 1, context_len),
    )
