"""Numeric building blocks shared by the functional transformer.

These are the non-linear operations that stay on the SoC in FACIL
(attention over the KV cache, normalization, activations); the linear
layers run through the PIM/SoC data paths.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "rms_norm", "swiglu", "gqa_attention"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def rms_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square normalization (Llama-style, no learned gain)."""
    return x / np.sqrt((x * x).mean(axis=-1, keepdims=True) + eps)


def swiglu(gate: np.ndarray, up: np.ndarray) -> np.ndarray:
    """The gated-FFN activation: ``up * SiLU(gate)``."""
    return up * (gate / (1.0 + np.exp(-gate)))


def gqa_attention(
    q: np.ndarray,  # (tokens, heads * head_dim)
    k_ctx: np.ndarray,  # (ctx, kv_heads * head_dim)
    v_ctx: np.ndarray,
    n_heads: int,
    n_kv_heads: int,
    causal_offset: int = 0,
) -> np.ndarray:
    """Grouped-query causal attention over a cached context.

    Query position ``i`` (absolute position ``causal_offset + i``) attends
    to keys up to and including its own position.
    """
    if n_heads % n_kv_heads:
        raise ValueError("n_kv_heads must divide n_heads")
    tokens, width = q.shape
    head_dim = width // n_heads
    group = n_heads // n_kv_heads
    q_h = q.reshape(tokens, n_heads, head_dim)
    k_h = k_ctx.reshape(-1, n_kv_heads, head_dim)
    v_h = v_ctx.reshape(-1, n_kv_heads, head_dim)
    out = np.empty_like(q_h)
    for h in range(n_heads):
        kv_h = h // group
        scores = q_h[:, h, :] @ k_h[:, kv_h, :].T / np.sqrt(head_dim)
        for i in range(tokens):
            scores[i, causal_offset + i + 1 :] = -1e30
        out[:, h, :] = softmax(scores, axis=-1) @ v_h[:, kv_h, :]
    return out.reshape(tokens, n_heads * head_dim)
