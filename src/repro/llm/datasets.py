"""Dataset length-trace generators (paper §VI-C substitution).

The paper samples 1 % / 10 % of Alpaca (conversation) and of the
RealHumanEval "autocompletion" subset, tokenizes, and uses the resulting
(input, output) token counts.  We cannot ship those datasets, but Figures
15 and 16 depend only on the *joint length distribution* — so each
workload here is a deterministic sampler with lognormal marginals matched
to the datasets' published statistics:

* **Alpaca**: instruction-style prompts are short (median ~20-40 tokens)
  while the GPT-3.5 responses are long (median ~65, heavy tail to several
  hundred) — conversation queries are decode-dominated.
* **RealHumanEval autocompletion**: requests fire as the programmer
  types, with a *small* incremental context window per request and a
  short completion (a line or a few) — the trace skews to small prefill
  and small decode lengths.  (The paper's own observation that FACIL
  beats even SoC-only TTFT "because the dataset contains queries with
  small prefill length" pins this regime down.)

See DESIGN.md "Substitutions" for why this preserves the experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "QueryTrace",
    "DatasetSpec",
    "DriftingDatasetSpec",
    "ALPACA_LIKE",
    "HUMANEVAL_AUTOCOMPLETE_LIKE",
    "CHAT_TO_LONG_CONTEXT_DRIFT",
    "sample_trace",
]


@dataclass(frozen=True)
class QueryTrace:
    """One query's token counts."""

    prefill_tokens: int
    decode_tokens: int


@dataclass(frozen=True)
class DatasetSpec:
    """Lognormal joint length model of a dataset.

    ``mu``/``sigma`` are the log-space parameters; lengths are clipped to
    ``[min, max]`` to mimic tokenizer/output-limit truncation.
    """

    name: str
    prefill_mu: float
    prefill_sigma: float
    prefill_min: int
    prefill_max: int
    decode_mu: float
    decode_sigma: float
    decode_min: int
    decode_max: int

    def sample(self, n: int, seed: int = 0) -> List[QueryTrace]:
        rng = np.random.default_rng(seed)
        prefill = np.exp(
            rng.normal(self.prefill_mu, self.prefill_sigma, size=n)
        ).astype(int)
        decode = np.exp(
            rng.normal(self.decode_mu, self.decode_sigma, size=n)
        ).astype(int)
        prefill = np.clip(prefill, self.prefill_min, self.prefill_max)
        decode = np.clip(decode, self.decode_min, self.decode_max)
        return [QueryTrace(int(p), int(d)) for p, d in zip(prefill, decode)]

    def sample_one(self, rng: random.Random) -> QueryTrace:
        """Draw one query through an injected seeded ``random.Random`` —
        the serving workload generator shares a single stream for arrival
        times and lengths so one seed reproduces a whole run."""
        prefill = int(rng.lognormvariate(self.prefill_mu, self.prefill_sigma))
        decode = int(rng.lognormvariate(self.decode_mu, self.decode_sigma))
        prefill = min(max(prefill, self.prefill_min), self.prefill_max)
        decode = min(max(decode, self.decode_min), self.decode_max)
        return QueryTrace(prefill, decode)


@dataclass(frozen=True)
class DriftingDatasetSpec:
    """A dataset whose length distribution *drifts* over the trace.

    Real on-device traffic is non-stationary: a keyboard session turns
    into document summarization, a chat accumulates context through the
    day.  This spec models the simplest such shift — a linear crossfade
    of the lognormal parameters from ``before`` to ``after`` across the
    window ``[drift_start_ms, drift_end_ms]`` of trace time.  It is the
    workload the adaptive remapping controller (see repro.adaptive)
    exists for: the ideal FACIL MapID of the hot shapes moves mid-run,
    so a statically selected mapping goes stale.

    Duck-types :class:`DatasetSpec`'s sampling surface and adds
    :meth:`sample_at`; time-blind callers that only use
    :meth:`sample_one` see the pre-drift distribution, so the spec is
    safe to hand to any existing workload generator (it just won't
    drift there).  Draw discipline matches :class:`DatasetSpec` exactly
    — two lognormal draws per query, no extra stream consumption — so
    swapping a static spec for a drifting one with the same ``before``
    parameters reproduces the same pre-drift queries byte for byte.
    """

    name: str
    before: DatasetSpec
    after: DatasetSpec
    drift_start_ms: float
    drift_end_ms: float

    def __post_init__(self) -> None:
        if not self.drift_end_ms > self.drift_start_ms >= 0.0:
            raise ValueError("need drift_end_ms > drift_start_ms >= 0")

    def weight_after(self, t_ns: float) -> float:
        """Mixing weight of the ``after`` phase at trace time *t_ns*
        (0 before the drift window, 1 past it, linear inside)."""
        start_ns = self.drift_start_ms * 1e6
        end_ns = self.drift_end_ms * 1e6
        if t_ns <= start_ns:
            return 0.0
        if t_ns >= end_ns:
            return 1.0
        return (t_ns - start_ns) / (end_ns - start_ns)

    def spec_at(self, t_ns: float) -> DatasetSpec:
        """The stationary :class:`DatasetSpec` in effect at *t_ns*."""
        w = self.weight_after(t_ns)
        if w <= 0.0:
            return self.before
        if w >= 1.0:
            return self.after
        b, a = self.before, self.after

        def lerp(x: float, y: float) -> float:
            return x + (y - x) * w

        return DatasetSpec(
            name=f"{self.name}@{w:.3f}",
            prefill_mu=lerp(b.prefill_mu, a.prefill_mu),
            prefill_sigma=lerp(b.prefill_sigma, a.prefill_sigma),
            prefill_min=round(lerp(b.prefill_min, a.prefill_min)),
            prefill_max=round(lerp(b.prefill_max, a.prefill_max)),
            decode_mu=lerp(b.decode_mu, a.decode_mu),
            decode_sigma=lerp(b.decode_sigma, a.decode_sigma),
            decode_min=round(lerp(b.decode_min, a.decode_min)),
            decode_max=round(lerp(b.decode_max, a.decode_max)),
        )

    def sample_at(self, rng: random.Random, t_ns: float) -> QueryTrace:
        """Draw one query as of trace time *t_ns* (same two-draw
        discipline as :meth:`DatasetSpec.sample_one`)."""
        return self.spec_at(t_ns).sample_one(rng)

    def sample_one(self, rng: random.Random) -> QueryTrace:
        """Time-blind draw — the pre-drift distribution."""
        return self.sample_at(rng, 0.0)

    def sample(self, n: int, seed: int = 0, t_ns: float = 0.0) -> List[QueryTrace]:
        """Deterministic batch draw frozen at trace time *t_ns*."""
        return self.spec_at(t_ns).sample(n, seed)


#: Conversation assistant (Alpaca-like): short prompts, long answers.
ALPACA_LIKE = DatasetSpec(
    name="alpaca-like",
    prefill_mu=np.log(24.0),
    prefill_sigma=0.7,
    prefill_min=4,
    prefill_max=256,
    decode_mu=np.log(64.0),
    decode_sigma=0.8,
    decode_min=8,
    decode_max=512,
)

#: Code autocompletion (RealHumanEval-like): small incremental contexts,
#: short completions.
HUMANEVAL_AUTOCOMPLETE_LIKE = DatasetSpec(
    name="humaneval-autocomplete-like",
    prefill_mu=np.log(12.0),
    prefill_sigma=0.9,
    prefill_min=2,
    prefill_max=512,
    decode_mu=np.log(10.0),
    decode_sigma=0.7,
    decode_min=2,
    decode_max=64,
)


#: Canonical drifting workload for the adaptive-remapping experiments: a
#: chat tenant whose prompts grow from short instructions (~800 tokens
#: with accumulated context, ideal FACIL MapID 3 on the adaptive-arena
#: geometry — exactly what the static selector picked) into long-context
#: document turns (~3000 tokens, ideal MapID 5) across minute two of the
#: trace.  The tight sigmas keep each phase's ideal MapID unambiguous,
#: so the drift is a clean regime change rather than noise.  The long
#: turns also draw long answers (summaries), so post-drift traffic is
#: decode-heavy — PIM-bound — and a stale mapping's PU-crossing penalty
#: lands on the bottleneck resource instead of hiding behind the SoC
#: prefill.  Use ``dataclasses.replace`` to move the drift window.
CHAT_TO_LONG_CONTEXT_DRIFT = DriftingDatasetSpec(
    name="chat-to-long-context",
    before=DatasetSpec(
        name="chat-short-context",
        prefill_mu=np.log(800.0),
        prefill_sigma=0.12,
        prefill_min=520,
        prefill_max=1024,
        decode_mu=np.log(24.0),
        decode_sigma=0.5,
        decode_min=8,
        decode_max=64,
    ),
    after=DatasetSpec(
        name="chat-long-context",
        prefill_mu=np.log(3000.0),
        prefill_sigma=0.12,
        prefill_min=2100,
        prefill_max=4096,
        decode_mu=np.log(96.0),
        decode_sigma=0.5,
        decode_min=16,
        decode_max=256,
    ),
    drift_start_ms=60_000.0,
    drift_end_ms=120_000.0,
)


def sample_trace(spec: DatasetSpec, n: int = 100, seed: int = 0) -> List[QueryTrace]:
    """Deterministic sample of *n* queries from *spec*."""
    return spec.sample(n, seed)
