"""Dataset length-trace generators (paper §VI-C substitution).

The paper samples 1 % / 10 % of Alpaca (conversation) and of the
RealHumanEval "autocompletion" subset, tokenizes, and uses the resulting
(input, output) token counts.  We cannot ship those datasets, but Figures
15 and 16 depend only on the *joint length distribution* — so each
workload here is a deterministic sampler with lognormal marginals matched
to the datasets' published statistics:

* **Alpaca**: instruction-style prompts are short (median ~20-40 tokens)
  while the GPT-3.5 responses are long (median ~65, heavy tail to several
  hundred) — conversation queries are decode-dominated.
* **RealHumanEval autocompletion**: requests fire as the programmer
  types, with a *small* incremental context window per request and a
  short completion (a line or a few) — the trace skews to small prefill
  and small decode lengths.  (The paper's own observation that FACIL
  beats even SoC-only TTFT "because the dataset contains queries with
  small prefill length" pins this regime down.)

See DESIGN.md "Substitutions" for why this preserves the experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["QueryTrace", "DatasetSpec", "ALPACA_LIKE", "HUMANEVAL_AUTOCOMPLETE_LIKE", "sample_trace"]


@dataclass(frozen=True)
class QueryTrace:
    """One query's token counts."""

    prefill_tokens: int
    decode_tokens: int


@dataclass(frozen=True)
class DatasetSpec:
    """Lognormal joint length model of a dataset.

    ``mu``/``sigma`` are the log-space parameters; lengths are clipped to
    ``[min, max]`` to mimic tokenizer/output-limit truncation.
    """

    name: str
    prefill_mu: float
    prefill_sigma: float
    prefill_min: int
    prefill_max: int
    decode_mu: float
    decode_sigma: float
    decode_min: int
    decode_max: int

    def sample(self, n: int, seed: int = 0) -> List[QueryTrace]:
        rng = np.random.default_rng(seed)
        prefill = np.exp(
            rng.normal(self.prefill_mu, self.prefill_sigma, size=n)
        ).astype(int)
        decode = np.exp(
            rng.normal(self.decode_mu, self.decode_sigma, size=n)
        ).astype(int)
        prefill = np.clip(prefill, self.prefill_min, self.prefill_max)
        decode = np.clip(decode, self.decode_min, self.decode_max)
        return [QueryTrace(int(p), int(d)) for p, d in zip(prefill, decode)]

    def sample_one(self, rng: random.Random) -> QueryTrace:
        """Draw one query through an injected seeded ``random.Random`` —
        the serving workload generator shares a single stream for arrival
        times and lengths so one seed reproduces a whole run."""
        prefill = int(rng.lognormvariate(self.prefill_mu, self.prefill_sigma))
        decode = int(rng.lognormvariate(self.decode_mu, self.decode_sigma))
        prefill = min(max(prefill, self.prefill_min), self.prefill_max)
        decode = min(max(decode, self.decode_min), self.decode_max)
        return QueryTrace(prefill, decode)


#: Conversation assistant (Alpaca-like): short prompts, long answers.
ALPACA_LIKE = DatasetSpec(
    name="alpaca-like",
    prefill_mu=np.log(24.0),
    prefill_sigma=0.7,
    prefill_min=4,
    prefill_max=256,
    decode_mu=np.log(64.0),
    decode_sigma=0.8,
    decode_min=8,
    decode_max=512,
)

#: Code autocompletion (RealHumanEval-like): small incremental contexts,
#: short completions.
HUMANEVAL_AUTOCOMPLETE_LIKE = DatasetSpec(
    name="humaneval-autocomplete-like",
    prefill_mu=np.log(12.0),
    prefill_sigma=0.9,
    prefill_min=2,
    prefill_max=512,
    decode_mu=np.log(10.0),
    decode_sigma=0.7,
    decode_min=2,
    decode_max=64,
)


def sample_trace(spec: DatasetSpec, n: int = 100, seed: int = 0) -> List[QueryTrace]:
    """Deterministic sample of *n* queries from *spec*."""
    return spec.sample(n, seed)
