"""A small functional transformer running on the FACIL memory system.

This is the strongest end-to-end validation in the repository: a complete
decoder forward pass — embeddings, grouped-query attention with a KV
cache, gated/MLP FFN, LM head — where **every linear layer's weights live
in pimalloc'ed tensors**:

* decode steps execute their GEMVs on the functional PIM machine
  (:func:`repro.pim.functional.pim_gemv`, reading raw bank rows);
* prefill executes its GEMMs on the SoC path
  (:func:`repro.soc.kernels.soc_gemm`, reading virtual addresses);

and the whole thing is checked token-for-token against a pure-numpy
reference transformer using the same weights.  If any piece of the
mapping/allocator/controller/PIM stack mangled a byte, the logits would
diverge.

Models here are necessarily small (functional DRAM holds megabytes, not
gigabytes); use :data:`TINY_LLM` or your own :class:`LlmConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pimalloc import PimSystem, PimTensor
from repro.core.selector import MatrixConfig
from repro.llm.model_config import LlmConfig
from repro.pim.functional import pim_gemv
from repro.soc.kernels import soc_gemm
from repro.llm.layers import linear_specs

from repro.llm.ops import gqa_attention, rms_norm, swiglu

__all__ = ["TINY_LLM", "FunctionalLlm", "reference_forward"]

#: A 2-layer toy decoder small enough for functional DRAM.
TINY_LLM = LlmConfig(
    name="tiny-llm",
    n_layers=2,
    d_model=256,
    n_heads=4,
    n_kv_heads=2,
    d_ff=512,
    vocab_size=1024,
    ffn_kind="gated",
)


@dataclass
class _KvCache:
    keys: List[np.ndarray]  # per layer: (ctx, kv_dim)
    values: List[np.ndarray]

    @classmethod
    def empty(cls, cfg: LlmConfig) -> "_KvCache":
        return cls(
            keys=[np.zeros((0, cfg.kv_dim), np.float32) for _ in range(cfg.n_layers)],
            values=[np.zeros((0, cfg.kv_dim), np.float32) for _ in range(cfg.n_layers)],
        )


class FunctionalLlm:
    """A decoder whose linear weights live in a FACIL PimSystem."""

    def __init__(self, cfg: LlmConfig, system: PimSystem, seed: int = 0):
        self.cfg = cfg
        self.system = system
        rng = np.random.default_rng(seed)
        scale = 0.08
        self.embedding = (
            rng.standard_normal((cfg.vocab_size, cfg.d_model)) * scale
        ).astype(np.float16)
        #: plain numpy copies, for the reference path
        self.weights: Dict[Tuple[int, str], np.ndarray] = {}
        #: pimalloc'ed tensors, for the FACIL path
        self.tensors: Dict[Tuple[int, str], PimTensor] = {}
        for spec in linear_specs(cfg):
            layers = range(cfg.n_layers) if spec.count > 1 else [0]
            for layer in layers:
                w = (
                    rng.standard_normal((spec.out_features, spec.in_features))
                    * scale
                ).astype(np.float16)
                key = (layer, spec.name)
                self.weights[key] = w
                tensor = system.pimalloc(
                    MatrixConfig(spec.out_features, spec.in_features)
                )
                tensor.store(w)
                self.tensors[key] = tensor

    # -- linear dispatch ---------------------------------------------------

    def _linear(self, layer: int, name: str, x: np.ndarray, on_pim: bool) -> np.ndarray:
        """``x @ W.T`` with *x* of shape (tokens, in features)."""
        key = (layer if name != "lm_head" else 0, name)
        tensor = self.tensors[key]
        if on_pim:
            rows = [
                pim_gemv(tensor, row.astype(np.float16))[0] for row in x
            ]
            return np.stack(rows)
        return soc_gemm(tensor, x.astype(np.float16).T).T

    # -- forward ------------------------------------------------------------

    def forward(
        self,
        token_ids: List[int],
        cache: Optional[_KvCache] = None,
        on_pim: bool = False,
    ) -> Tuple[np.ndarray, _KvCache]:
        """Process *token_ids* (prefill when several, decode when one);
        returns logits for the last position and the updated cache."""
        cfg = self.cfg
        cache = cache if cache is not None else _KvCache.empty(cfg)
        x = self.embedding[np.asarray(token_ids)].astype(np.float32)
        offset = cache.keys[0].shape[0]
        for layer in range(cfg.n_layers):
            h = rms_norm(x)
            q = self._linear(layer, "q_proj", h, on_pim)
            k = self._linear(layer, "k_proj", h, on_pim)
            v = self._linear(layer, "v_proj", h, on_pim)
            cache.keys[layer] = np.concatenate([cache.keys[layer], k])
            cache.values[layer] = np.concatenate([cache.values[layer], v])
            attn = gqa_attention(
                q, cache.keys[layer], cache.values[layer],
                cfg.n_heads, cfg.n_kv_heads, offset,
            )
            x = x + self._linear(layer, "o_proj", attn, on_pim)
            h = rms_norm(x)
            if cfg.ffn_kind == "gated":
                gate = self._linear(layer, "gate_proj", h, on_pim)
                up = self._linear(layer, "up_proj", h, on_pim)
                act = swiglu(gate, up)
                x = x + self._linear(layer, "down_proj", act, on_pim)
            else:
                mid = np.maximum(self._linear(layer, "fc1", h, on_pim), 0.0)
                x = x + self._linear(layer, "fc2", mid, on_pim)
        logits = self._linear(0, "lm_head", rms_norm(x[-1:]), on_pim)
        return logits[0], cache

    def generate(
        self, prompt: List[int], n_tokens: int
    ) -> Tuple[List[int], List[int]]:
        """Greedy generation: prefill on the SoC path, decode on the PIM
        path — the FACIL execution split.  Returns (tokens, reference
        tokens from the pure-numpy path) for comparison."""
        logits, cache = self.forward(prompt, on_pim=False)
        ref_logits, ref_cache = reference_forward(self, prompt)
        out: List[int] = [int(np.argmax(logits))]
        ref_out: List[int] = [int(np.argmax(ref_logits))]
        for _ in range(n_tokens - 1):
            logits, cache = self.forward([out[-1]], cache, on_pim=True)
            ref_logits, ref_cache = reference_forward(
                self, [ref_out[-1]], ref_cache
            )
            out.append(int(np.argmax(logits)))
            ref_out.append(int(np.argmax(ref_logits)))
        return out, ref_out


def reference_forward(
    model: FunctionalLlm,
    token_ids: List[int],
    cache: Optional[_KvCache] = None,
) -> Tuple[np.ndarray, _KvCache]:
    """Pure-numpy forward using the same weights (no FACIL machinery)."""
    cfg = model.cfg
    cache = cache if cache is not None else _KvCache.empty(cfg)

    def linear(layer: int, name: str, x: np.ndarray) -> np.ndarray:
        key = (layer if name != "lm_head" else 0, name)
        w = model.weights[key].astype(np.float32)
        # activations quantize to fp16 at kernel boundaries, exactly as
        # the FACIL path does, so the two forwards are comparable
        return x.astype(np.float16).astype(np.float32) @ w.T

    x = model.embedding[np.asarray(token_ids)].astype(np.float32)
    offset = cache.keys[0].shape[0]
    for layer in range(cfg.n_layers):
        h = rms_norm(x)
        q = linear(layer, "q_proj", h)
        k = linear(layer, "k_proj", h)
        v = linear(layer, "v_proj", h)
        cache.keys[layer] = np.concatenate([cache.keys[layer], k])
        cache.values[layer] = np.concatenate([cache.values[layer], v])
        attn = gqa_attention(
            q, cache.keys[layer], cache.values[layer],
            cfg.n_heads, cfg.n_kv_heads, offset,
        )
        x = x + linear(layer, "o_proj", attn)
        h = rms_norm(x)
        if cfg.ffn_kind == "gated":
            gate = linear(layer, "gate_proj", h)
            up = linear(layer, "up_proj", h)
            act = swiglu(gate, up)
            x = x + linear(layer, "down_proj", act)
        else:
            mid = np.maximum(linear(layer, "fc1", h), 0.0)
            x = x + linear(layer, "fc2", mid)
    logits = linear(0, "lm_head", rms_norm(x[-1:]))
    return logits[0], cache
