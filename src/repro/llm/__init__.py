"""LLM workload substrate: model configs, op traces, dataset samplers."""

from repro.llm.datasets import (
    ALPACA_LIKE,
    HUMANEVAL_AUTOCOMPLETE_LIKE,
    DatasetSpec,
    QueryTrace,
    sample_trace,
)
from repro.llm.inference import AttentionCost, PhasePlan, decode_step_plan, prefill_plan
from repro.llm.layers import LinearSpec, linear_specs, total_linear_bytes
from repro.llm.ops import gqa_attention, rms_norm, softmax, swiglu
from repro.llm.model_config import (
    LLAMA3_8B,
    MODELS,
    OPT_6_7B,
    PHI_1_5,
    LlmConfig,
    model_by_name,
)

__all__ = [
    "ALPACA_LIKE",
    "AttentionCost",
    "DatasetSpec",
    "HUMANEVAL_AUTOCOMPLETE_LIKE",
    "LLAMA3_8B",
    "LinearSpec",
    "LlmConfig",
    "MODELS",
    "OPT_6_7B",
    "PHI_1_5",
    "PhasePlan",
    "QueryTrace",
    "decode_step_plan",
    "gqa_attention",
    "rms_norm",
    "softmax",
    "swiglu",
    "linear_specs",
    "model_by_name",
    "prefill_plan",
    "sample_trace",
    "total_linear_bytes",
]
