"""Op-level decomposition: the linear layers of each model.

A :class:`LinearSpec` is one weight matrix (``out_features x
in_features``); :func:`linear_specs` enumerates the distinct matrices of a
model together with how many instances exist, which is all the inference
engine needs — every instance of a spec has identical GEMM/GEMV/re-layout
cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.selector import MatrixConfig
from repro.llm.model_config import LlmConfig

__all__ = ["LinearSpec", "linear_specs", "total_linear_bytes"]


@dataclass(frozen=True)
class LinearSpec:
    """One distinct weight matrix of the model."""

    name: str
    out_features: int  # M: output rows (GEMV output length)
    in_features: int  # K: reduction dimension
    count: int  # instances across the whole model
    dtype_bytes: int = 2

    @property
    def bytes_per_instance(self) -> int:
        return self.out_features * self.in_features * self.dtype_bytes

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_instance * self.count

    def matrix_config(self) -> MatrixConfig:
        return MatrixConfig(
            rows=self.out_features,
            cols=self.in_features,
            dtype_bytes=self.dtype_bytes,
        )


def linear_specs(cfg: LlmConfig, include_head: bool = True) -> List[LinearSpec]:
    """The distinct linear layers of *cfg*, per-layer ops multiplied by
    layer count (they are identical in shape and cost)."""
    d, kv, ff, n = cfg.d_model, cfg.kv_dim, cfg.d_ff, cfg.n_layers
    specs = [
        LinearSpec("q_proj", d, d, n, cfg.dtype_bytes),
        LinearSpec("k_proj", kv, d, n, cfg.dtype_bytes),
        LinearSpec("v_proj", kv, d, n, cfg.dtype_bytes),
        LinearSpec("o_proj", d, d, n, cfg.dtype_bytes),
    ]
    if cfg.ffn_kind == "gated":
        specs += [
            LinearSpec("gate_proj", ff, d, n, cfg.dtype_bytes),
            LinearSpec("up_proj", ff, d, n, cfg.dtype_bytes),
            LinearSpec("down_proj", d, ff, n, cfg.dtype_bytes),
        ]
    else:
        specs += [
            LinearSpec("fc1", ff, d, n, cfg.dtype_bytes),
            LinearSpec("fc2", d, ff, n, cfg.dtype_bytes),
        ]
    if include_head:
        specs.append(LinearSpec("lm_head", cfg.vocab_size, d, 1, cfg.dtype_bytes))
    return specs


def total_linear_bytes(cfg: LlmConfig, include_head: bool = True) -> int:
    return sum(spec.total_bytes for spec in linear_specs(cfg, include_head))
