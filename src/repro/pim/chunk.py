"""Chunk placement enumeration and invariant checking.

A *chunk-row segment* is the contiguous slice of one matrix row that one
PU consumes from one DRAM row (for AiM a whole chunk; for HBM-PIM one of
the chunk's 8 rows).  :func:`enumerate_placements` recovers, for a tensor
allocated by pimalloc, where every segment physically lives — the ground
truth used by the functional PIM executor, the invariant checks, and the
cross-validation of the analytic timing model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.mapping import Field
from repro.dram.config import DramOrganization

if TYPE_CHECKING:  # circular at runtime: pimalloc imports repro.pim
    from repro.core.pimalloc import PimTensor

__all__ = ["ChunkSegment", "enumerate_placements", "verify_placement_invariants"]


@dataclass(frozen=True)
class ChunkSegment:
    """One matrix-row slice as stored for PIM consumption.

    Attributes:
        channel/rank/bank/row: the DRAM row holding the slice.
        col_start: first column access (transfer index) of the slice.
        n_transfers: length of the slice in transfers.
        m: matrix row index.
        k_start: first (padded) column index of the slice.
    """

    channel: int
    rank: int
    bank: int
    row: int
    col_start: int
    n_transfers: int
    m: int
    k_start: int

    @property
    def pu(self) -> Tuple[int, int, int]:
        return (self.channel, self.rank, self.bank)

    def segment_id(self, elems_per_segment: int) -> int:
        """Index of the input-vector segment this slice consumes."""
        return self.k_start // elems_per_segment


def enumerate_placements(tensor: "PimTensor") -> List["ChunkSegment"]:
    """Recover every chunk-row segment's physical placement.

    Works by translating the tensor's whole VA range (vectorised) and
    grouping elements into ``chunk_row_bytes`` slices; each slice must be
    physically contiguous inside one DRAM row or the placement is invalid.
    """
    allocator = tensor.allocator
    org = allocator.org
    pim = allocator.pim
    dtype_bytes = tensor.matrix.dtype_bytes
    lda = tensor.lda
    elems_per_segment = pim.chunk_row_bytes // dtype_bytes
    n_elems = tensor.matrix.rows * lda
    if n_elems % elems_per_segment:
        raise ValueError("tensor size is not a whole number of chunk rows")

    controller = allocator.controller
    segments: List[ChunkSegment] = []
    transfer = org.transfer_bytes
    runs = allocator.space.mmu.translate_range(tensor.va, n_elems * dtype_bytes)
    va_off = 0
    for pa, length, map_id in runs:
        byte_off = np.arange(0, length, transfer, dtype=np.int64)
        fields = controller.translate_array(pa + byte_off, map_id)
        elem = (va_off + byte_off) // dtype_bytes
        seg_id = elem // elems_per_segment
        order = np.argsort(seg_id, kind="stable")
        for field_name in list(fields):
            fields[field_name] = fields[field_name][order]
        elem = elem[order]
        seg_id = seg_id[order]
        boundaries = np.flatnonzero(np.diff(seg_id)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(seg_id)]))
        for start, stop in zip(starts, stops):
            ch = fields[Field.CHANNEL][start:stop]
            rk = fields[Field.RANK][start:stop]
            bk = fields[Field.BANK][start:stop]
            rw = fields[Field.ROW][start:stop]
            cl = fields[Field.COL][start:stop]
            if not (
                (ch == ch[0]).all()
                and (rk == rk[0]).all()
                and (bk == bk[0]).all()
                and (rw == rw[0]).all()
            ):
                raise AssertionError(
                    "chunk row straddles banks/rows: placement violates the "
                    "PIM contiguity constraint"
                )
            cols = np.sort(cl)
            if not (np.diff(cols) == 1).all():
                raise AssertionError("chunk row is not column-contiguous")
            first_elem = int(elem[start])
            segments.append(
                ChunkSegment(
                    channel=int(ch[0]),
                    rank=int(rk[0]),
                    bank=int(bk[0]),
                    row=int(rw[0]),
                    col_start=int(cols[0]),
                    n_transfers=int(stop - start),
                    m=first_elem // lda,
                    k_start=first_elem % lda,
                )
            )
        va_off += length
    return segments


def verify_placement_invariants(
    segments: List[ChunkSegment],
    tensor: "PimTensor",
) -> None:
    """Check the three placement properties of §II-C on real placements.

    1. **Chunk contiguity** — already enforced structurally by
       :func:`enumerate_placements`.
    2. **Lock-step alignment** — all banks of one rank, at the same DRAM
       (row, col) position, consume the *same input segment* (so the
       shared global buffer serves them all).
    3. **Row locality** — without partitioning, a matrix row lives wholly
       in one bank; with partitioning, in exactly
       ``selection.partitions_per_row`` PUs.

    Raises:
        AssertionError: if any invariant fails.
    """
    pim = tensor.allocator.pim
    elems_per_segment = pim.chunk_row_bytes // tensor.matrix.dtype_bytes

    lockstep: Dict[Tuple[int, int, int, int], int] = {}
    for seg in segments:
        key = (seg.channel, seg.rank, seg.row, seg.col_start)
        sid = seg.segment_id(elems_per_segment)
        if key in lockstep and lockstep[key] != sid:
            raise AssertionError(
                f"lock-step violation at {key}: banks of one rank need "
                f"segments {lockstep[key]} and {sid} simultaneously"
            )
        lockstep[key] = sid

    pus_per_row: Dict[int, set] = {}
    for seg in segments:
        pus_per_row.setdefault(seg.m, set()).add(seg.pu)
    expected = tensor.selection.partitions_per_row
    for m, pus in pus_per_row.items():
        if len(pus) > expected:
            raise AssertionError(
                f"matrix row {m} spread over {len(pus)} PUs; selector "
                f"promised at most {expected}"
            )
