"""Explicit PIM command streams.

:func:`generate_gemv_commands` lowers a pimalloc'ed tensor's GEMV into
the device's actual command vocabulary:

* ``GbLoad`` — write one input-vector segment into a rank's shared
  global buffer (external bus traffic);
* ``MacPass`` — one all-bank row sweep: every bank of the rank activates
  its row and streams ``n_cols`` MAC column reads in lock step;
* ``OutputDrain`` — read the PUs' accumulator registers back.

The stream is derived from the *measured placements* (reverse-mapped from
the tensor, not from analytic formulas), so replaying it through
:func:`replay_latency` cross-validates the closed-form timing model in
:mod:`repro.pim.gemv` — the counts and the latency must agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.core.bitfield import ceil_div
from repro.dram.config import DramConfig
from repro.pim.chunk import enumerate_placements

if TYPE_CHECKING:  # circular at runtime: pimalloc imports repro.pim
    from repro.core.pimalloc import PimTensor

__all__ = ["GbLoad", "MacPass", "OutputDrain", "CommandStream",
           "generate_gemv_commands", "replay_latency"]


@dataclass(frozen=True)
class GbLoad:
    """Fill one rank's global buffer with input segment *segment*."""

    channel: int
    rank: int
    segment: int


@dataclass(frozen=True)
class MacPass:
    """All-bank lock-step sweep of one DRAM row per bank."""

    channel: int
    rank: int
    row: int
    segment: int
    n_banks: int
    n_cols: int  # MAC column commands per bank


@dataclass(frozen=True)
class OutputDrain:
    """Read the accumulators of one rank's PUs over the bus."""

    channel: int
    rank: int
    n_outputs: int


@dataclass
class CommandStream:
    """Per-(channel, rank) ordered command lists."""

    loads: List[GbLoad]
    mac_passes: List[MacPass]
    drains: List[OutputDrain]

    @property
    def n_activations(self) -> int:
        return sum(p.n_banks for p in self.mac_passes)

    @property
    def n_mac_columns(self) -> int:
        return sum(p.n_banks * p.n_cols for p in self.mac_passes)


def generate_gemv_commands(tensor: "PimTensor") -> CommandStream:
    """Lower one GEMV over *tensor* into the PIM command vocabulary.

    Schedule: for each rank, loop over the input segments its banks
    need; per segment, one GB load then the all-bank row sweeps covering
    every chunk placed under that segment; finally one output drain per
    rank.  This is the single-pass (enough accumulators) schedule the
    functional executor uses.
    """
    pim = tensor.allocator.pim
    elems_per_segment = pim.chunk_row_bytes // tensor.matrix.dtype_bytes

    # (channel, rank, segment) -> {row -> set(banks), cols per row}
    sweeps: Dict[Tuple[int, int, int], Dict[int, Dict[int, int]]] = {}
    outputs: Dict[Tuple[int, int], set] = {}
    for seg in enumerate_placements(tensor):
        sid = seg.segment_id(elems_per_segment)
        rows = sweeps.setdefault((seg.channel, seg.rank, sid), {})
        banks = rows.setdefault(seg.row, {})
        banks[seg.bank] = banks.get(seg.bank, 0) + seg.n_transfers
        outputs.setdefault((seg.channel, seg.rank), set()).add((seg.bank, seg.m))

    loads: List[GbLoad] = []
    mac_passes: List[MacPass] = []
    for (channel, rank, sid), rows in sorted(sweeps.items()):
        loads.append(GbLoad(channel=channel, rank=rank, segment=sid))
        for row, banks in sorted(rows.items()):
            mac_passes.append(
                MacPass(
                    channel=channel,
                    rank=rank,
                    row=row,
                    segment=sid,
                    n_banks=len(banks),
                    n_cols=max(banks.values()),
                )
            )
    drains = [
        OutputDrain(channel=channel, rank=rank, n_outputs=len(outs))
        for (channel, rank), outs in sorted(outputs.items())
    ]
    return CommandStream(loads=loads, mac_passes=mac_passes, drains=drains)


def replay_latency(stream: CommandStream, dram: DramConfig, pim) -> float:
    """Walk the command stream against the timing parameters.

    Ranks of a channel serialize (shared command/data bus; the same
    assumption as the analytic model); channels run in parallel.  GB
    loads and drains occupy the bus; MAC sweeps occupy the banks.
    *pim* supplies the MAC cadence multiplier and global-buffer size.
    Returns nanoseconds.
    """
    org = dram.org
    timings = dram.timings
    mac_mult = pim.mac_ccd_multiplier
    burst = timings.burst_time_ns(org)

    per_channel: Dict[int, float] = {}
    # group commands per (channel, rank)
    for channel in sorted(
        {c.channel for c in stream.mac_passes} | {l.channel for l in stream.loads}
    ):
        total = 0.0
        ranks = {p.rank for p in stream.mac_passes if p.channel == channel} | {
            l.rank for l in stream.loads if l.channel == channel
        }
        for rank in sorted(ranks):
            for load in stream.loads:
                if load.channel == channel and load.rank == rank:
                    n_transfers = ceil_div(
                        pim.global_buffer_bytes, org.transfer_bytes
                    )
                    total += timings.tCWL + n_transfers * burst
            for sweep in stream.mac_passes:
                if sweep.channel == channel and sweep.rank == rank:
                    total += max(
                        timings.tRC,
                        timings.tRCD
                        + sweep.n_cols * timings.tCCD * mac_mult
                        + timings.tRP,
                    )
            for drain in stream.drains:
                if drain.channel == channel and drain.rank == rank:
                    transfers = ceil_div(drain.n_outputs * 4, org.transfer_bytes)
                    total += timings.tCL + transfers * burst
        per_channel[channel] = total
    return max(per_channel.values()) if per_channel else 0.0
