"""Analytic command-level timing model for GEMV on near-bank PIM.

The model prices the same command stream the functional executor
(:mod:`repro.pim.functional`) replays:

* **GB loads** — input-vector segments written into each rank's shared
  global buffer over the channel data bus (ranks on one channel
  serialize);
* **MAC passes** — all-bank lock-step column reads; each DRAM row costs
  ``max(tRC, tRCD + transfers*tCCD + tRP)`` in steady state, with every
  column access feeding the PU at the array's internal bandwidth;
* **output drains** — MAC-register reads over the channel bus;
* **SoC reduction** — byte counts reported for partitioned matrices
  (Fig. 10), to be priced by the caller's SoC model.

Output-register pressure is modeled: when a bank holds more matrix rows
than the PU has accumulators, the input segments must be streamed once per
row group, multiplying the GB-load count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bitfield import ceil_div
from repro.core.selector import MappingSelection, MatrixConfig, select_mapping
from repro.dram.config import DramConfig
from repro.pim.config import PimConfig

__all__ = ["GemvLatency", "gemv_latency", "OUT_REGS_PER_PU"]

#: MAC accumulator registers per PU (16 for AiM-style devices).
OUT_REGS_PER_PU = 16


@dataclass(frozen=True)
class GemvLatency:
    """Latency breakdown of one PIM GEMV, plus its operation counts."""

    total_ns: float
    gb_load_ns: float
    mac_ns: float
    output_ns: float
    # operation counts (cross-checked against the functional executor)
    segments_per_row: int
    partitions_per_row: int
    rows_per_bank: int
    chunk_segments_per_bank: int
    activates_per_bank: int
    gb_loads_per_rank: int
    soc_reduce_bytes: int
    weight_bytes_streamed: int

    @property
    def effective_internal_gbps(self) -> float:
        """Weight bytes consumed per second by the PUs."""
        if self.total_ns <= 0:
            return 0.0
        return self.weight_bytes_streamed / self.total_ns


def gemv_latency(
    matrix: MatrixConfig,
    dram: DramConfig,
    pim: PimConfig,
    huge_page_bytes: int = 2 << 20,
    selection: Optional[MappingSelection] = None,
    out_regs_per_pu: int = OUT_REGS_PER_PU,
    overlap_gb_loads: bool = True,
) -> GemvLatency:
    """Latency of ``y = W @ x`` for a pimalloc'ed ``W`` of shape *matrix*.

    Args:
        matrix: weight matrix configuration.
        dram: DRAM organization + timings.
        pim: PIM architecture.
        selection: mapping selection (re-derived when omitted).
        out_regs_per_pu: accumulator registers per PU.
        overlap_gb_loads: allow a rank's next GB load to overlap the other
            rank's MAC pass (they share only the data bus); when False the
            model is fully serialized (conservative).
    """
    org = dram.org
    timings = dram.timings
    if selection is None:
        selection = select_mapping(matrix, org, pim, huge_page_bytes)

    p = selection.partitions_per_row
    total_banks = org.total_banks
    group_banks = max(1, total_banks // p)

    segments_per_row = max(1, selection.padded_row_bytes // pim.chunk_row_bytes)
    segments_per_row_per_bank = max(1, segments_per_row // p)

    # Matrix rows resident in each bank (chunk_rows rows interleave at a
    # finer grain for HBM-PIM-style chunks).
    rows_per_bank = ceil_div(matrix.rows, group_banks * pim.chunk_rows) * pim.chunk_rows
    chunk_segments_per_bank = rows_per_bank * segments_per_row_per_bank

    bytes_per_bank = chunk_segments_per_bank * pim.chunk_row_bytes
    activates_per_bank = ceil_div(bytes_per_bank, org.row_bytes)

    # --- MAC time ----------------------------------------------------------
    # Banks of one rank run in lock step (all-bank MAC); consecutive MACs
    # to the open row are tCCD_L apart.  The ranks of a channel *serialize*:
    # their all-bank command streams share the channel's command/data bus,
    # so only one rank's MAC pass progresses at a time (this matches the
    # NeuPIMs-style per-channel simulation the paper uses, and is what
    # brings PIM's effective internal bandwidth to the few-x-over-external
    # regime the paper's end-to-end numbers imply).
    transfers_per_dram_row = org.cols_per_row
    mac_interval = timings.tCCD * pim.mac_ccd_multiplier
    per_row_ns = max(
        timings.tRC,
        timings.tRCD + transfers_per_dram_row * mac_interval + timings.tRP,
    )
    mac_ns = activates_per_bank * per_row_ns * org.ranks_per_channel

    # --- GB loads: one per needed segment per rank, repeated per output
    # register group. ------------------------------------------------------
    passes = ceil_div(rows_per_bank, out_regs_per_pu * pim.chunk_rows)
    gb_loads_per_rank = segments_per_row_per_bank * passes
    burst_ns = timings.burst_time_ns(org)
    gb_transfers = ceil_div(pim.global_buffer_bytes, org.transfer_bytes)
    # Ranks of one channel share the data bus: their loads serialize.
    one_load_ns = timings.tCWL + gb_transfers * burst_ns
    gb_load_ns = gb_loads_per_rank * org.ranks_per_channel * one_load_ns

    # --- Output drain: each PU's accumulators stream out over the bus. ----
    acc_bytes = 4  # FP32 partial sums
    outputs_per_bank = rows_per_bank
    drain_transfers_per_bank = ceil_div(outputs_per_bank * acc_bytes, org.transfer_bytes)
    banks_per_channel = org.ranks_per_channel * org.banks_per_rank
    output_ns = (
        timings.tCL + drain_transfers_per_bank * banks_per_channel * burst_ns
    )

    if overlap_gb_loads and org.ranks_per_channel > 1:
        # With rank-serialized MAC passes, one rank's GB load proceeds
        # while the other rank computes; only the pipeline-fill load of
        # each pass stays exposed.
        passes_total = gb_loads_per_rank
        exposed = min(gb_load_ns, passes_total * one_load_ns)
        total_ns = exposed + mac_ns + output_ns
    else:
        total_ns = gb_load_ns + mac_ns + output_ns

    soc_reduce_bytes = 0
    if p > 1:
        # SoC reads p partials per output row (FP32) and writes the result.
        soc_reduce_bytes = matrix.rows * (p * acc_bytes + matrix.dtype_bytes)

    return GemvLatency(
        total_ns=total_ns,
        gb_load_ns=gb_load_ns,
        mac_ns=mac_ns,
        output_ns=output_ns,
        segments_per_row=segments_per_row,
        partitions_per_row=p,
        rows_per_bank=rows_per_bank,
        chunk_segments_per_bank=chunk_segments_per_bank,
        activates_per_bank=activates_per_bank,
        gb_loads_per_rank=gb_loads_per_rank,
        soc_reduce_bytes=soc_reduce_bytes,
        weight_bytes_streamed=bytes_per_bank * total_banks,
    )
