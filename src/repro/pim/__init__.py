"""Near-bank PIM substrate: chunk model, functional executor, timing.

Only :mod:`repro.pim.config` is imported eagerly; the executor and timing
modules depend on :mod:`repro.core` (which itself needs the PIM config),
so they load lazily on first attribute access (PEP 562).
"""

from repro.pim.config import (
    AIM_GDDR6,
    AIM_LPDDR5,
    AIM_LPDDR5_INT8,
    HBM_PIM,
    PimConfig,
    aim_config_for,
)

__all__ = [
    "CommandStream",
    "GbLoad",
    "MacPass",
    "OutputDrain",
    "generate_gemv_commands",
    "replay_latency",
    "AIM_GDDR6",
    "AIM_LPDDR5",
    "AIM_LPDDR5_INT8",
    "ChunkSegment",
    "GemvLatency",
    "GemvStats",
    "HBM_PIM",
    "OUT_REGS_PER_PU",
    "PimConfig",
    "aim_config_for",
    "enumerate_placements",
    "gemv_latency",
    "pim_gemv",
    "verify_placement_invariants",
]

_LAZY = {
    "CommandStream": "repro.pim.commands",
    "GbLoad": "repro.pim.commands",
    "MacPass": "repro.pim.commands",
    "OutputDrain": "repro.pim.commands",
    "generate_gemv_commands": "repro.pim.commands",
    "replay_latency": "repro.pim.commands",
    "ChunkSegment": "repro.pim.chunk",
    "enumerate_placements": "repro.pim.chunk",
    "verify_placement_invariants": "repro.pim.chunk",
    "GemvStats": "repro.pim.functional",
    "pim_gemv": "repro.pim.functional",
    "GemvLatency": "repro.pim.gemv",
    "OUT_REGS_PER_PU": "repro.pim.gemv",
    "gemv_latency": "repro.pim.gemv",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
