"""Functional (bit-accurate) execution of GEMV on the near-bank PIM.

The executor emulates what the PIM hardware does — *without* knowing the
matrix layout a priori:

1. the host command generator derives, from the chunk placements, which
   input-vector segment each rank's global buffer must hold;
2. for every DRAM row holding chunk data, the PU multiplies the row's
   bytes (read straight from the bank array) with the matching global
   buffer slice and accumulates into its output registers (FP32
   accumulation over FP16 products, as AiM does);
3. output registers are drained, and — when the matrix was column-wise
   partitioned across channels — the SoC reduces the per-channel partial
   sums.

Because the weights are read from the raw bank arrays, this validates the
whole FACIL pipeline end-to-end: data stored by the SoC through virtual
addresses is directly consumable by PIM with no re-layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.pim.chunk import ChunkSegment, enumerate_placements

if TYPE_CHECKING:  # circular at runtime: pimalloc imports repro.pim
    from repro.core.pimalloc import PimTensor

__all__ = ["GemvStats", "pim_gemv"]


@dataclass
class GemvStats:
    """Operational counts gathered during functional execution; the timing
    model's analytic counts are validated against these."""

    chunks_processed: int = 0
    rows_activated: int = 0
    mac_transfers: int = 0
    gb_loads_per_rank: Dict[Tuple[int, int], int] = field(default_factory=dict)
    outputs_drained: int = 0
    soc_reduced_rows: int = 0

    @property
    def total_gb_loads(self) -> int:
        return sum(self.gb_loads_per_rank.values())


def pim_gemv(tensor: "PimTensor", x: np.ndarray) -> Tuple[np.ndarray, GemvStats]:
    """Compute ``y = W @ x`` on the PIM, functionally.

    Args:
        tensor: a pimalloc'ed weight matrix (``rows x cols``).
        x: input vector of length ``cols``; same element width as the
            tensor.

    Returns:
        ``(y, stats)`` with ``y`` of length ``rows`` — float32 for float
        tensors, int64 (exact) for integer tensors.
    """
    matrix = tensor.matrix
    x = np.asarray(x)
    if x.shape != (matrix.cols,):
        raise ValueError(f"expected input of shape ({matrix.cols},), got {x.shape}")
    if x.dtype.itemsize != matrix.dtype_bytes:
        raise ValueError("input element width does not match tensor")

    allocator = tensor.allocator
    memory = allocator.controller.memory
    if memory is None:
        raise RuntimeError("functional PIM execution needs functional memory")
    org = allocator.org
    pim = allocator.pim
    elems_per_segment = pim.chunk_row_bytes // matrix.dtype_bytes

    # Host side: pad the input and slice it into global-buffer segments.
    # Accumulation datapath: FP32 over FP16 products (AiM-style) for
    # float tensors, exact INT32 for quantized integer tensors.
    x_padded = np.zeros(tensor.lda, dtype=x.dtype)
    x_padded[: matrix.cols] = x
    acc_dtype = np.float32 if matrix.kind == "float" else np.int64
    x_acc = x_padded.astype(acc_dtype)

    segments = enumerate_placements(tensor)
    # Group by (rank-identity, needed segment): one GB load serves every
    # bank of the rank for all its chunk rows using that segment.
    by_gb: Dict[Tuple[int, int, int], List[ChunkSegment]] = {}
    for seg in segments:
        sid = seg.segment_id(elems_per_segment)
        by_gb.setdefault((seg.channel, seg.rank, sid), []).append(seg)

    y = np.zeros(matrix.rows, dtype=acc_dtype)
    stats = GemvStats()
    contributions: Dict[int, set] = {}

    for (channel, rank, sid), group in sorted(by_gb.items()):
        stats.gb_loads_per_rank[(channel, rank)] = (
            stats.gb_loads_per_rank.get((channel, rank), 0) + 1
        )
        gb = x_acc[sid * elems_per_segment : (sid + 1) * elems_per_segment]
        stats.rows_activated += len({(seg.pu, seg.row) for seg in group})
        for seg in group:
            row_bytes = memory.row(seg.channel, seg.rank, seg.bank, seg.row)
            start = seg.col_start * org.transfer_bytes
            stop = start + seg.n_transfers * org.transfer_bytes
            weights = row_bytes[start:stop].view(matrix.numpy_dtype)
            gb_off = seg.k_start - sid * elems_per_segment
            partial = np.dot(
                weights.astype(acc_dtype), gb[gb_off : gb_off + len(weights)]
            )
            if seg.m < matrix.rows:
                y[seg.m] += partial
                contributions.setdefault(seg.m, set()).add(seg.pu)
            stats.chunks_processed += 1
            stats.mac_transfers += seg.n_transfers

    stats.outputs_drained = sum(len(pus) for pus in contributions.values())
    stats.soc_reduced_rows = sum(
        1 for pus in contributions.values() if len(pus) > 1
    )
    return y, stats
