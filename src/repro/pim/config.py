"""Near-bank PIM configurations (paper §II-C).

A *chunk* is the unit of work one processing unit (PU) executes, fixed by
the PU architecture as ``(output register size, input register size)``:

* SK hynix AiM-style: chunk ``(1, 1024)`` for FP16 — the input register
  (global buffer) holds one DRAM row (2 KB) of the input vector, the output
  register holds one output element.
* Samsung HBM-PIM-style: chunk ``(8, 128)`` — two sets of 8 general
  registers; each register holds partial sums for one output element.

A *tile* is the set of chunks processed by all banks of all channels in
lock-step (all-bank operation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitfield import is_pow2
from repro.dram.config import DramOrganization

__all__ = ["PimConfig", "AIM_LPDDR5", "AIM_LPDDR5_INT8", "AIM_GDDR6", "HBM_PIM", "aim_config_for"]


@dataclass(frozen=True)
class PimConfig:
    """Architecture parameters of a near-bank PIM device.

    Attributes:
        name: identifier (e.g. ``"aim-lpddr5"``).
        chunk_rows: output-register dimension of a chunk.
        chunk_cols: input-register dimension of a chunk, in elements.
        dtype_bytes: element size the PU computes on (2 for FP16/BF16).
        banks_per_global_buffer: banks sharing one input global buffer
            (16 for the paper's AiM-style configuration).
        global_buffer_bytes: capacity of the shared input buffer (one DRAM
            row, 2 KB, for AiM).
        mac_ccd_multiplier: MAC issue interval in units of tCCD_L.  1 means
            the PU keeps up with the array's column bandwidth (GDDR6-class
            AiM); 2 models an LPDDR5-class PU whose 16-lane FP16 datapath
            runs at half the column-command rate (the paper's end-to-end
            numbers imply this regime; see EXPERIMENTS.md calibration).
    """

    name: str
    chunk_rows: int
    chunk_cols: int
    dtype_bytes: int = 2
    banks_per_global_buffer: int = 16
    global_buffer_bytes: int = 2048
    mac_ccd_multiplier: int = 1

    def __post_init__(self) -> None:
        if not is_pow2(self.chunk_rows) or not is_pow2(self.chunk_cols):
            raise ValueError("chunk dimensions must be powers of two")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    @property
    def chunk_row_bytes(self) -> int:
        """Bytes of one row of a chunk (one matrix-row segment)."""
        return self.chunk_cols * self.dtype_bytes

    @property
    def chunk_bytes(self) -> int:
        return self.chunk_rows * self.chunk_row_bytes

    def pus(self, org: DramOrganization) -> int:
        """Total processing units: one per bank."""
        return org.total_banks

    def elems_per_transfer(self, org: DramOrganization) -> int:
        return org.transfer_bytes // self.dtype_bytes


#: AiM-style PIM on LPDDR5: chunk (1, 1024) at FP16, 2 KB global buffer
#: shared by the 16 banks of a rank (paper §VI-A).
AIM_LPDDR5 = PimConfig(
    name="aim-lpddr5",
    chunk_rows=1,
    chunk_cols=1024,
    dtype_bytes=2,
    banks_per_global_buffer=16,
    global_buffer_bytes=2048,
    mac_ccd_multiplier=2,
)

#: AiM-style PIM computing on INT8 weights (AWQ-style quantized
#: deployment): one 2 KB DRAM row holds 2048 INT8 elements.
AIM_LPDDR5_INT8 = PimConfig(
    name="aim-lpddr5-int8",
    chunk_rows=1,
    chunk_cols=2048,
    dtype_bytes=1,
    banks_per_global_buffer=16,
    global_buffer_bytes=2048,
    mac_ccd_multiplier=2,
)

#: GDDR6-based AiM (the taped-out prototype): the PU's MAC datapath keeps
#: up with the full column cadence of the fast GDDR6 interface.
AIM_GDDR6 = PimConfig(
    name="aim-gddr6",
    chunk_rows=1,
    chunk_cols=1024,
    dtype_bytes=2,
    banks_per_global_buffer=16,
    global_buffer_bytes=2048,
    mac_ccd_multiplier=1,
)

#: HBM-PIM-style chunk (8, 128): 8 output registers, 32 B register size,
#: no in-PU reduction (footnote 1 of the paper).
HBM_PIM = PimConfig(
    name="hbm-pim",
    chunk_rows=8,
    chunk_cols=128,
    dtype_bytes=2,
    banks_per_global_buffer=16,
    global_buffer_bytes=2048,
)


def aim_config_for(org: DramOrganization, dtype_bytes: int = 2) -> PimConfig:
    """AiM-style config whose chunk row spans exactly one DRAM row of
    *org* — useful for the small test geometries."""
    return PimConfig(
        name=f"aim-{org.row_bytes}B",
        chunk_rows=1,
        chunk_cols=org.row_bytes // dtype_bytes,
        dtype_bytes=dtype_bytes,
        banks_per_global_buffer=org.banks_per_rank,
        global_buffer_bytes=org.row_bytes,
    )
