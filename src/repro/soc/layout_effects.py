"""GEMM performance on the PIM-optimized layout (paper Table III).

The paper measures, with GPGPU-Sim and ONNXim, how much slower GEMM runs
when the weight matrix sits in a PIM-optimized DRAM layout instead of the
conventional one, finding 0-2.1 %.  The mechanism is DRAM-side: the
kernel's tiled access pattern sees different row-buffer locality and bank
parallelism under the two PA-to-DA mappings.

We reproduce the mechanism directly: generate the weight-read stream of a
tiled GEMM (concurrent tile readers with long fetch runs, the schedule
chosen best-per-layout as a tuned BLAS would), replay it through the DRAM
timing simulator under both mappings, and weight the read-bandwidth delta
by the kernel's memory-boundedness from the roofline.

Fidelity note (recorded in EXPERIMENTS.md): without an L2 cache model in
front of DRAM our replay *overestimates* the slowdown (a few to ~15 %
versus the paper's 0-2.1 %); the inference engine therefore uses the
paper's conservative Table III constants for FACIL results — exactly as
the paper itself does — while this module regenerates the experiment's
shape: which layers suffer, and that partitioned layouts are the worst
case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.bitfield import ceil_div, ilog2
from repro.core.controller import CONVENTIONAL_MAP_ID, MemoryController
from repro.core.mapping import pim_optimized_mapping
from repro.core.selector import MatrixConfig, pu_order_for, select_mapping
from repro.dram.config import DramConfig
from repro.dram.system import DramTimingSimulator
from repro.pim.config import PimConfig
from repro.soc.processor import SocProcessor

__all__ = ["LayoutEffect", "gemm_weight_stream", "gemm_layout_slowdown"]

#: Per-channel lookahead used for these experiments: GPU/NPU memory
#: systems keep hundreds of requests in flight, far more than a mobile
#: CPU's controller window.
GPU_CLASS_WINDOW = 256


@dataclass(frozen=True)
class LayoutEffect:
    """Outcome of one layout-effect experiment."""

    conv_read_gbps: float
    pim_read_gbps: float
    memory_fraction: float
    slowdown: float  # end-to-end GEMM slowdown, as a fraction

    @property
    def read_slowdown(self) -> float:
        if self.pim_read_gbps <= 0:
            return 0.0
        return max(0.0, self.conv_read_gbps / self.pim_read_gbps - 1.0)


def gemm_weight_stream(
    matrix: MatrixConfig,
    order: str = "m",
    tile_m: int = 64,
    tile_k_bytes: int = 2048,
    run_transfers: int = 64,
    concurrency: int = 64,
    transfer_bytes: int = 32,
    max_transfers: int = 65536,
    seed: int = 12345,
) -> np.ndarray:
    """Physical-address stream of a tiled GEMM's weight reads.

    Models *concurrency* tile readers in flight; each sweeps one
    ``tile_m x tile_k`` weight tile row-major, fetching in contiguous
    ``run_transfers``-transfer runs (L2 streaming fills).  ``order``
    selects how concurrent tiles advance: ``"m"`` parallelizes over output
    rows, ``"k"`` over the reduction dimension — kernels choose their
    threadblock swizzle per device, so callers evaluate both.  Runs merge
    at independent random rates (lock-step round-robin would make every
    reader hit the same column phase simultaneously, which real machines
    never do).  Addresses are offsets into the padded, physically
    contiguous weight allocation.
    """
    if order not in ("m", "k"):
        raise ValueError(f"order must be 'm' or 'k', got {order!r}")
    lda_bytes = matrix.padded_row_bytes
    rows = matrix.rows
    tiles_m = ceil_div(rows, tile_m)
    tiles_k = ceil_div(lda_bytes, tile_k_bytes)
    if order == "m":
        tile_order = [(k, m) for k in range(tiles_k) for m in range(tiles_m)]
    else:
        tile_order = [(k, m) for m in range(tiles_m) for k in range(tiles_k)]

    per_tile: List[np.ndarray] = []
    for t_k, t_m in tile_order:
        m0 = t_m * tile_m
        k0 = t_k * tile_k_bytes
        m_count = min(tile_m, rows - m0)
        k_count = min(tile_k_bytes, lda_bytes - k0)
        row_idx = np.repeat(np.arange(m0, m0 + m_count), k_count // transfer_bytes)
        col_off = np.tile(np.arange(k0, k0 + k_count, transfer_bytes), m_count)
        per_tile.append(row_idx.astype(np.int64) * lda_bytes + col_off)
        # Always materialize at least one full merge group: cutting the
        # tile list short would shrink the effective concurrency and
        # understate bank-level parallelism.
        if (
            len(per_tile) >= concurrency
            and sum(len(t) for t in per_tile) >= max_transfers
        ):
            break

    rng = np.random.default_rng(seed)
    stream: List[np.ndarray] = []
    for base in range(0, len(per_tile), concurrency):
        group = per_tile[base : base + concurrency]
        keys: List[np.ndarray] = []
        for t in group:
            n_runs = ceil_div(len(t), run_transfers)
            run_key = np.cumsum(rng.exponential(1.0, size=n_runs))
            keys.append(np.repeat(run_key, run_transfers)[: len(t)])
        merged_pas = np.concatenate(group)
        merged_keys = np.concatenate(keys)
        stream.append(merged_pas[np.argsort(merged_keys, kind="stable")])
    pas = np.concatenate(stream)
    return pas[:max_transfers]


def gemm_layout_slowdown(
    matrix: MatrixConfig,
    dram: DramConfig,
    pim: PimConfig,
    soc: SocProcessor,
    prefill_len: int,
    huge_page_bytes: int = 2 << 20,
    sample_transfers: int = 16384,
    window: int = GPU_CLASS_WINDOW,
) -> LayoutEffect:
    """End-to-end GEMM slowdown of the PIM layout at one prefill length.

    Each layout is read with the better of the two tile schedules (a
    vendor BLAS is tuned for the device); the resulting weight-read
    bandwidth delta is weighted by the kernel's memory-bound fraction.
    """
    org = dram.org
    controller = MemoryController(org, page_bytes=huge_page_bytes)
    selection = select_mapping(matrix, org, pim, huge_page_bytes)
    mapping = pim_optimized_mapping(
        org,
        pim.chunk_rows,
        pim.chunk_cols,
        pim.dtype_bytes,
        selection.map_id,
        ilog2(huge_page_bytes),
        pu_order=pu_order_for(selection),
    )
    pim_id = controller.table.register(mapping)
    simulator = DramTimingSimulator(dram, window=window)

    def best_bandwidth(map_id: int) -> float:
        best = 0.0
        for order in ("m", "k"):
            pas = gemm_weight_stream(
                matrix,
                order=order,
                transfer_bytes=org.transfer_bytes,
                max_transfers=sample_transfers,
            )
            bw = simulator.measure_bandwidth(
                controller.translate_array(pas, map_id),
                sample_transfers=sample_transfers,
            )
            best = max(best, bw)
        return best

    conv_bw = best_bandwidth(CONVENTIONAL_MAP_ID)
    pim_bw = best_bandwidth(pim_id)

    # Roofline memory-boundedness of this GEMM at this prefill length.
    flops = 2.0 * matrix.rows * prefill_len * matrix.cols
    bytes_moved = matrix.dtype_bytes * (
        matrix.rows * matrix.cols
        + matrix.cols * prefill_len
        + matrix.rows * prefill_len
    )
    compute_ns = flops / (soc.peak_tflops_fp16 * 1e3 * soc.compute_efficiency)
    memory_ns = bytes_moved / (soc.peak_bw_gbps * soc.bw_utilization)
    base_ns = max(compute_ns, memory_ns)

    read_slow = max(0.0, conv_bw / pim_bw - 1.0) if pim_bw > 0 else 0.0
    slowed_memory_ns = memory_ns * (1.0 + read_slow)
    slow_ns = max(compute_ns, slowed_memory_ns)
    return LayoutEffect(
        conv_read_gbps=conv_bw,
        pim_read_gbps=pim_bw,
        memory_fraction=memory_ns / base_ns if base_ns else 0.0,
        slowdown=(slow_ns - base_ns) / base_ns if base_ns else 0.0,
    )
