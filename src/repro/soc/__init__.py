"""SoC processor substrate: roofline model, kernels, layout effects."""

from repro.soc.kernels import gemm_reference, gemv_reference, soc_gemm, soc_gemv
from repro.soc.layout_effects import (
    GPU_CLASS_WINDOW,
    LayoutEffect,
    gemm_layout_slowdown,
    gemm_weight_stream,
)
from repro.soc.processor import SocProcessor, ideal_npu

__all__ = [
    "GPU_CLASS_WINDOW",
    "LayoutEffect",
    "SocProcessor",
    "gemm_layout_slowdown",
    "gemm_reference",
    "gemm_weight_stream",
    "gemv_reference",
    "ideal_npu",
    "soc_gemm",
    "soc_gemv",
]
