"""Roofline-based SoC processor model (GPU/NPU GEMM and GEMV latency).

The paper measures GEMM/GEMV on real devices; we substitute a calibrated
roofline: an operation costs the maximum of its compute time (peak FP16
throughput x efficiency) and its memory time (peak bandwidth x the
*measured* utilization the paper reports per platform: 76.3 / 88.3 /
33.3 / 74.6 %).  TTFT/TTLT speedups in the paper are ratios between such
latencies plus re-layout costs, which the roofline captures; see
DESIGN.md, "Substitutions".

The *ridge point* (peak FLOPS / peak bandwidth) governs how quickly GEMM
becomes compute-bound as prefill length grows — the mechanism behind the
per-platform differences in Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SocProcessor", "ideal_npu"]


@dataclass(frozen=True)
class SocProcessor:
    """One SoC compute engine (the platform's best LLM processor).

    Attributes:
        name: e.g. ``"Ampere GPU"``.
        kind: ``"gpu"`` or ``"npu"``.
        peak_tflops_fp16: peak dense FP16 throughput.
        peak_bw_gbps: peak DRAM bandwidth available to the processor.
        bw_utilization: measured fraction of peak bandwidth achieved by
            memory-bound kernels (paper §VI-C).
        compute_efficiency: fraction of peak FLOPS achieved by large GEMM.
        kernel_launch_ns: fixed per-kernel dispatch overhead.
    """

    name: str
    kind: str
    peak_tflops_fp16: float
    peak_bw_gbps: float
    bw_utilization: float = 0.8
    compute_efficiency: float = 0.75
    kernel_launch_ns: float = 10_000.0

    def __post_init__(self) -> None:
        if self.peak_tflops_fp16 <= 0 or self.peak_bw_gbps <= 0:
            raise ValueError("peak throughput and bandwidth must be positive")
        if not 0 < self.bw_utilization <= 1:
            raise ValueError("bw_utilization must be in (0, 1]")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")

    # -- roofline ---------------------------------------------------------

    @property
    def ridge_point_flop_per_byte(self) -> float:
        """Arithmetic intensity at which compute and memory balance."""
        return self.peak_tflops_fp16 * 1e12 / (self.peak_bw_gbps * 1e9)

    def op_time_ns(self, flops: float, bytes_moved: float) -> float:
        """Roofline latency of one kernel."""
        compute_ns = flops / (self.peak_tflops_fp16 * 1e3 * self.compute_efficiency)
        memory_ns = bytes_moved / (self.peak_bw_gbps * self.bw_utilization)
        return max(compute_ns, memory_ns) + self.kernel_launch_ns

    # -- linear kernels ------------------------------------------------------

    def gemm_time_ns(
        self, m: int, n: int, k: int, dtype_bytes: int = 2, lda: int = 0
    ) -> float:
        """``(m x k) @ (k x n)`` — weights m*k, activations k*n.

        ``lda`` > k accounts for a padded leading dimension (the
        pimalloc'ed layout): the weight read traffic grows accordingly.
        """
        weight_cols = max(lda, k)
        flops = 2.0 * m * n * k
        bytes_moved = dtype_bytes * (m * weight_cols + k * n + m * n)
        return self.op_time_ns(flops, bytes_moved)

    def gemv_time_ns(self, m: int, k: int, dtype_bytes: int = 2, lda: int = 0) -> float:
        return self.gemm_time_ns(m, 1, k, dtype_bytes, lda)

    def stream_time_ns(self, bytes_moved: float) -> float:
        """Pure data movement at the measured utilization."""
        return bytes_moved / (self.peak_bw_gbps * self.bw_utilization)


def ideal_npu(peak_bw_gbps: float) -> SocProcessor:
    """The paper's hypothetical comparator (Fig. 3): infinite FLOPS and
    100 % utilization of peak memory bandwidth."""
    return SocProcessor(
        name="ideal-npu",
        kind="npu",
        peak_tflops_fp16=1e9,  # effectively infinite
        peak_bw_gbps=peak_bw_gbps,
        bw_utilization=1.0,
        compute_efficiency=1.0,
        kernel_launch_ns=0.0,
    )
