"""Functional reference kernels (the SoC's numerical view).

These are the numpy equivalents of the BLAS kernels the SoC runs.  They
exist so integration tests can prove the headline claim end-to-end: a
matrix stored once through pimalloc is consumed *bit-identically* by

* the SoC's GEMM (reading the padded row-major virtual view), and
* the PIM's GEMV (reading raw bank contents),

with no re-layout in between.
"""

from __future__ import annotations

import numpy as np

from repro.core.pimalloc import PimTensor

__all__ = ["gemm_reference", "gemv_reference", "soc_gemm", "soc_gemv"]


def gemm_reference(weights: np.ndarray, activations: np.ndarray) -> np.ndarray:
    """``(m x k) @ (k x n)`` in FP32 accumulation."""
    return weights.astype(np.float32) @ activations.astype(np.float32)


def gemv_reference(weights: np.ndarray, x: np.ndarray) -> np.ndarray:
    return weights.astype(np.float32) @ x.astype(np.float32)


def soc_gemm(tensor: PimTensor, activations: np.ndarray, dtype=np.float16) -> np.ndarray:
    """Run GEMM the way a BLAS library would on a pimalloc'ed tensor:
    read the contiguous virtual view (leading dimension ``lda``) and
    multiply.  No re-layout happens — this is FACIL's point."""
    weights = tensor.load(dtype)
    activations = np.asarray(activations)
    if activations.shape[0] != tensor.matrix.cols:
        raise ValueError(
            f"activations rows {activations.shape[0]} != matrix cols "
            f"{tensor.matrix.cols}"
        )
    return gemm_reference(weights, activations)


def soc_gemv(tensor: PimTensor, x: np.ndarray, dtype=np.float16) -> np.ndarray:
    return soc_gemm(tensor, np.asarray(x).reshape(-1, 1), dtype).reshape(-1)
