"""Platform catalog: the four evaluated devices of Table II.

Each :class:`PlatformSpec` bundles the SoC processor roofline, the LPDDR5
memory organization (channel count derived from bus width), the PIM
augmentation assumed by the paper (AiM-style, 2 ranks/channel, 16 banks
sharing a 2 KB global buffer), the target LLM, and the two measured
calibration constants the paper reports:

* ``bw_utilization`` — memory-bandwidth utilization of GEMV kernels
  (§VI-C: 76.3 / 88.3 / 33.3 / 74.6 %);
* ``gemm_layout_slowdown`` — the conservative worst-case GEMM slowdown on
  the PIM-optimized layout (Table III: 2.1 / 0.1 / 1.1 / 1.6 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dram.config import (
    DramConfig,
    LPDDR5_6400_TIMINGS,
    LPDDR5X_7467_TIMINGS,
    lpddr5_organization,
)
from repro.pim.config import AIM_LPDDR5, PimConfig
from repro.soc.processor import SocProcessor

__all__ = ["PlatformSpec", "JETSON_ORIN", "MACBOOK_PRO", "IDEAPAD", "IPHONE_15_PRO", "ALL_PLATFORMS"]


@dataclass(frozen=True)
class PlatformSpec:
    """One evaluated SoC platform (a row of Table II)."""

    name: str
    soc: SocProcessor
    dram: DramConfig
    pim: PimConfig
    model_name: str
    framework: str
    gemm_layout_slowdown: float  # Table III worst case, as a fraction

    @property
    def peak_bw_gbps(self) -> float:
        return self.dram.org.peak_bandwidth_gbps


def _platform(
    name: str,
    processor_name: str,
    kind: str,
    tflops: float,
    bus_bits: int,
    capacity_gb: int,
    data_rate: int,
    timings,
    bw_utilization: float,
    model_name: str,
    framework: str,
    layout_slowdown: float,
) -> PlatformSpec:
    org = lpddr5_organization(
        bus_width_bits=bus_bits, capacity_gb=capacity_gb, data_rate_mbps=data_rate
    )
    soc = SocProcessor(
        name=processor_name,
        kind=kind,
        peak_tflops_fp16=tflops,
        peak_bw_gbps=org.peak_bandwidth_gbps,
        bw_utilization=bw_utilization,
    )
    return PlatformSpec(
        name=name,
        soc=soc,
        dram=DramConfig(org, timings),
        pim=AIM_LPDDR5,
        model_name=model_name,
        framework=framework,
        gemm_layout_slowdown=layout_slowdown,
    )


JETSON_ORIN = _platform(
    name="jetson-agx-orin",
    processor_name="Ampere CUDA/Tensor cores",
    kind="gpu",
    tflops=42.5,
    bus_bits=256,
    capacity_gb=64,
    data_rate=6400,
    timings=LPDDR5_6400_TIMINGS,
    bw_utilization=0.763,
    model_name="llama3-8b",
    framework="TinyChatEngine",
    layout_slowdown=0.021,
)

MACBOOK_PRO = _platform(
    name="macbook-pro-m3-max",
    processor_name="M3 Max GPU",
    kind="gpu",
    tflops=28.4,
    bus_bits=512,
    capacity_gb=64,
    data_rate=6400,
    timings=LPDDR5_6400_TIMINGS,
    bw_utilization=0.883,
    model_name="llama3-8b",
    framework="MLX",
    layout_slowdown=0.001,
)

IDEAPAD = _platform(
    name="ideapad-slim-5",
    processor_name="Core Ultra 7 155H NPU",
    kind="npu",
    tflops=5.6,
    bus_bits=64,
    capacity_gb=32,
    data_rate=7467,
    timings=LPDDR5X_7467_TIMINGS,
    bw_utilization=0.333,
    model_name="opt-6.7b",
    framework="Intel NPU Acceleration Library",
    layout_slowdown=0.011,
)

IPHONE_15_PRO = _platform(
    name="iphone-15-pro",
    processor_name="A17 Pro GPU",
    kind="gpu",
    tflops=4.29,
    bus_bits=64,
    capacity_gb=8,
    data_rate=6400,
    timings=LPDDR5_6400_TIMINGS,
    bw_utilization=0.746,
    model_name="phi-1.5",
    framework="MLX Swift",
    layout_slowdown=0.016,
)

ALL_PLATFORMS: Tuple[PlatformSpec, ...] = (
    JETSON_ORIN,
    MACBOOK_PRO,
    IDEAPAD,
    IPHONE_15_PRO,
)
