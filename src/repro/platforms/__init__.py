"""Evaluated platform catalog (paper Table II)."""

from repro.platforms.specs import (
    ALL_PLATFORMS,
    IDEAPAD,
    IPHONE_15_PRO,
    JETSON_ORIN,
    MACBOOK_PRO,
    PlatformSpec,
)

__all__ = [
    "ALL_PLATFORMS",
    "IDEAPAD",
    "IPHONE_15_PRO",
    "JETSON_ORIN",
    "MACBOOK_PRO",
    "PlatformSpec",
]
