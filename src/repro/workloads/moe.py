"""Mixture-of-experts expert placement as a serving workload (extension).

Every expert is its **own** pimalloc'd weight region in a dedicated
journaled :class:`PimSystem` — each load runs ``select_mapping`` and
registers the chosen MapID, each eviction is a journaled ``free`` that
drops the mapping-table reference.  The placement accounting FACIL's
flexible per-tensor mappings enable is exactly what the workload
exercises: experts come and go, but the mapping table must never leak
and the journal must always settle.

A seeded router with a Zipf-like popularity curve draws
``experts_per_token`` distinct experts per decode token; misses stall
the decode by the relayout-priced cost of streaming the expert's bytes
in from backing store, and a cold expert is LRU-evicted to make room
(never one of the current token's experts — the budget admits a full
token's working set by construction).

Conservation contract (the property tests and the bench gate):

* the resident count never exceeds ``resident_experts``;
* after teardown the journal has no uncommitted transactions and the
  mapping table is back to the conventional entry alone.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set

from repro.core.pimalloc import PimSystem, PimTensor
from repro.core.relayout import relayout_cost_ns
from repro.core.selector import MatrixConfig
from repro.dram.config import TINY_ORG
from repro.engine.policies import decode_on_pim
from repro.pim.config import aim_config_for
from repro.serving.runtime import ServingRuntime, _Route
from repro.serving.workload import Request
from repro.workloads.runtime import DecodeResult, WorkloadLoop, require_placed
from repro.workloads.specs import ExpertPlacementSpec

__all__ = ["ExpertPlacementLoop", "ExpertPool", "expert_pool_org", "route_experts"]

_HUGE_PAGE_BYTES = 2 << 20


def _next_pow2(n: int) -> int:
    return 1 << max(0, (int(n) - 1).bit_length())


def expert_pool_org(spec: ExpertPlacementSpec):
    """A DRAM organization sized to the resident-expert budget.

    The pool gets its own geometry (the chaos campaign's tiny org with
    rows scaled up) rather than the full platform DRAM, so the buddy
    allocator stays small while still fitting ``resident_experts``
    huge-page-padded experts with comfortable headroom for padding and
    churn.
    """
    raw = spec.expert_rows * spec.expert_cols * 2  # FP16
    padded = -(-raw // _HUGE_PAGE_BYTES) * _HUGE_PAGE_BYTES
    capacity = _next_pow2(max(4 * (spec.resident_experts + 1) * padded,
                              16 << 20))
    bank_row_bytes = TINY_ORG.total_banks * TINY_ORG.row_bytes
    return replace(TINY_ORG, rows_per_bank=capacity // bank_row_bytes)


def route_experts(
    rng: random.Random, n_experts: int, k: int, skew: float
) -> List[int]:
    """Draw *k* distinct expert ids from a Zipf-like popularity curve.

    Expert *i* has weight ``1 / (i + 1) ** skew`` (skew 0 is uniform).
    Exactly *k* variates are consumed per call, so the RNG stream
    position is a pure function of the token count.
    """
    if not 1 <= k <= n_experts:
        raise ValueError(f"k must be in [1, n_experts={n_experts}], got {k!r}")
    pool = list(range(n_experts))
    weights = [1.0 / (i + 1) ** skew for i in pool]
    total = sum(weights)
    chosen: List[int] = []
    for _ in range(k):
        r = rng.random() * total
        acc = 0.0
        idx = len(pool) - 1  # guard against float round-off at the tail
        for j, w in enumerate(weights):
            acc += w
            if r < acc:
                idx = j
                break
        chosen.append(pool.pop(idx))
        total -= weights.pop(idx)
    return chosen


class ExpertPool:
    """LRU-bounded resident set of journaled per-expert weight regions."""

    def __init__(self, spec: ExpertPlacementSpec, dram_cfg) -> None:
        self.spec = spec
        self.dram_cfg = dram_cfg
        org = expert_pool_org(spec)
        self.system = PimSystem.build(
            org, aim_config_for(org), functional=False, journal=True
        )
        self.matrix = MatrixConfig(
            rows=spec.expert_rows, cols=spec.expert_cols, dtype_bytes=2
        )
        #: expert id -> tensor, in LRU order (oldest first)
        self.resident: "OrderedDict[int, PimTensor]" = OrderedDict()
        #: expert id -> MapID, recorded at first load
        self.map_ids: Dict[int, int] = {}
        self._loaded_once: Set[int] = set()
        self.hits = 0
        self.misses = 0
        self.cold_loads = 0
        self.reloads = 0
        self.evictions = 0
        self.resident_peak = 0
        self.load_stall_ns = 0.0
        #: budget overruns observed live (must stay 0)
        self.budget_violations = 0
        #: per-load cost: stream the expert's padded bytes in at the
        #: *serving platform's* DRAM bandwidth (the pool org is only a
        #: placement sandbox, not the cost model)
        self._load_ns: Optional[float] = None

    def touch(self, chosen: Sequence[int]) -> float:
        """Access *chosen* (one token's experts); returns the miss stall."""
        stall = 0.0
        protected = set(chosen)
        for expert in chosen:
            if expert in self.resident:
                self.hits += 1
                self.resident.move_to_end(expert)
                continue
            self.misses += 1
            if len(self.resident) >= self.spec.resident_experts:
                self._evict_one(protected)
            tensor = self.system.pimalloc(self.matrix)
            self.resident[expert] = tensor
            self.map_ids.setdefault(expert, tensor.map_id)
            if self._load_ns is None:
                self._load_ns = relayout_cost_ns(
                    tensor.nbytes_padded, self.dram_cfg
                ).total_ns
            if expert in self._loaded_once:
                self.reloads += 1
            else:
                self.cold_loads += 1
                self._loaded_once.add(expert)
            stall += self._load_ns
            if len(self.resident) > self.spec.resident_experts:
                self.budget_violations += 1
        self.resident_peak = max(self.resident_peak, len(self.resident))
        self.load_stall_ns += stall
        return stall

    def _evict_one(self, protected: Set[int]) -> None:
        # oldest unprotected resident; experts_per_token <= budget
        # guarantees one exists whenever the set is full
        for expert in self.resident:
            if expert not in protected:
                victim = self.resident.pop(expert)
                victim.free()
                self.evictions += 1
                return
        raise RuntimeError(
            "no evictable expert: one token's experts exceed the budget"
        )

    def drain(self) -> None:
        """Free every resident expert (end of run)."""
        while self.resident:
            _, tensor = self.resident.popitem(last=False)
            tensor.free()

    def conservation_findings(self) -> List[str]:
        """Post-drain invariants; non-empty means the accounting leaked."""
        findings: List[str] = []
        if self.budget_violations:
            findings.append(
                f"resident set exceeded budget {self.budget_violations} time(s)"
            )
        if self.resident:
            findings.append(f"{len(self.resident)} expert(s) never freed")
        uncommitted = self.system.journal.uncommitted()
        if uncommitted:
            findings.append(
                f"{len(uncommitted)} uncommitted journal transaction(s)"
            )
        live = len(self.system.controller.table)
        if live != 1:
            findings.append(
                f"mapping table holds {live} entries (want conventional only)"
            )
        return findings


class ExpertPlacementLoop(WorkloadLoop):
    """Serving loop whose decode routes tokens through an expert pool."""

    name = "moe"

    def __init__(
        self, runtime: ServingRuntime, spec: ExpertPlacementSpec
    ) -> None:
        super().__init__(runtime, spec)
        self.spec: ExpertPlacementSpec = spec
        self.pool: Optional[ExpertPool] = None
        self.tokens_routed = 0
        self.findings: List[str] = []

    # -- lifecycle -----------------------------------------------------

    def setup(self) -> None:
        self.pool = ExpertPool(self.spec, self.runtime.engine.platform.dram)

    def teardown(self, end_ns: float) -> None:
        pool = require_placed(self.pool, "expert pool")
        pool.drain()
        self.findings = pool.conservation_findings()

    # -- decode --------------------------------------------------------

    def decode(
        self,
        head: Request,
        route: _Route,
        prefill_end_ns: float,
        decode_tokens: int,
        rng: random.Random,
    ) -> DecodeResult:
        runtime = self.runtime
        pool = require_placed(self.pool, "expert pool")
        spec = self.spec
        on_pim = decode_on_pim(route.policy) and route.pim_allowed
        resource = "pim" if on_pim else "soc"
        step = (
            runtime.engine.pim_decode_step_ns
            if on_pim
            else runtime.engine.soc_decode_step_ns
        )
        total_ns = 0.0
        ctx = head.prefill_tokens
        for i in range(decode_tokens):
            chosen = route_experts(
                rng, spec.n_experts, spec.experts_per_token, spec.router_skew
            )
            self.tokens_routed += 1
            total_ns += pool.touch(chosen) + step(ctx + i)
        start = max(prefill_end_ns, self.free[resource])
        end, ok, retries, backoff = runtime._run_phase(
            start, total_ns, resource, rng
        )
        self.free[resource] = end
        return DecodeResult(
            end_ns=end,
            ok=ok,
            retries=retries,
            backoff_ns=backoff,
            tokens_served=decode_tokens if ok else 0,
            resource=resource,
        )

    # -- reporting -----------------------------------------------------

    def decode_span_args(self, head: Request) -> Dict:
        return {"experts_per_token": self.spec.experts_per_token}

    def section(self) -> Dict:
        pool = require_placed(self.pool, "expert pool")
        accesses = pool.hits + pool.misses
        return {
            "name": self.name,
            "n_experts": self.spec.n_experts,
            "experts_per_token": self.spec.experts_per_token,
            "resident_experts": self.spec.resident_experts,
            "router_skew": self.spec.router_skew,
            "tokens_routed": self.tokens_routed,
            "expert_accesses": accesses,
            "hits": pool.hits,
            "misses": pool.misses,
            "hit_rate": pool.hits / accesses if accesses else 0.0,
            "cold_loads": pool.cold_loads,
            "reloads": pool.reloads,
            "evictions": pool.evictions,
            "resident_peak": pool.resident_peak,
            "load_stall_ns": pool.load_stall_ns,
            "map_ids": sorted(set(pool.map_ids.values())),
            "journal_transactions": len(pool.system.journal.transactions()),
            # the invariants the property tests and the bench gate assert
            "conservation_findings": len(self.findings),
            "findings": list(self.findings),
        }
