"""The shared workload serving loop and the dispatch entry point.

Each workload in :mod:`repro.workloads` runs the same discrete-event
skeleton as the legacy serving loop — admission queue, deadline
boundaries at admission->prefill and prefill->decode, retry-priced
phases on the two-resource (SoC / PIM) timeline — and differs only in
how it **prices and executes decode**.  :class:`WorkloadLoop` factors
the skeleton; each workload subclasses it with hooks:

* :meth:`WorkloadLoop.route` — plan prefill (default: the runtime's
  breaker/brownout-aware router);
* :meth:`WorkloadLoop.begin_request` — per-request setup after pop
  (e.g. KV admission); may shed the request;
* :meth:`WorkloadLoop.decode` — the workload's decode execution; runs
  its phases itself and advances the resource timelines;
* :meth:`WorkloadLoop.abandon` / :meth:`WorkloadLoop.finish` — cleanup
  on failure / success;
* :meth:`WorkloadLoop.teardown` + :meth:`WorkloadLoop.section` — end of
  run: release placed state and summarize into the report's
  ``workload`` section.

Determinism contract: all randomness flows through the one
``random.Random(config.seed)`` the loop owns, in request order — same
seed, same report bytes.  Telemetry is fold-in only (spans on simulated
time, metrics derived from the finished report), so results are
byte-identical with telemetry on or off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.serving.queue import AdmissionQueue
from repro.serving.runtime import (
    ABORTED,
    DROPPED,
    REJECTED,
    SERVED,
    SERVED_DEGRADED,
    TIMED_OUT,
    RequestOutcome,
    ServingReport,
    ServingRuntime,
    _Route,
)
from repro.serving.workload import Request

__all__ = [
    "DecodeResult",
    "WorkloadLoop",
    "require_placed",
    "run_workload_serving",
]

_T = TypeVar("_T")


def require_placed(value: Optional[_T], what: str) -> _T:
    """Narrow state placed by ``setup()`` — ``run()`` always places it
    before any hook; a ``None`` here means a hook was called outside
    the loop's lifecycle."""
    if value is None:
        raise RuntimeError(f"{what} is not placed; run() calls setup() first")
    return value


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of one request's decode under a workload loop.

    The decode hook runs its own phases and advances ``free`` itself;
    this carries only what the skeleton needs for the outcome record.
    """

    end_ns: float
    ok: bool
    retries: int = 0
    backoff_ns: float = 0.0
    tokens_served: int = 0
    resource: str = "pim"
    fallbacks: Tuple[str, ...] = ()


class WorkloadLoop:
    """Template-method serving loop; subclasses implement one workload."""

    #: workload name recorded in the report section and telemetry labels
    name = "workload"

    def __init__(self, runtime: ServingRuntime, spec: object) -> None:
        self.runtime = runtime
        self.spec = spec
        self.free: Dict[str, float] = {"soc": 0.0, "pim": 0.0}

    # -- hooks ---------------------------------------------------------

    def setup(self) -> None:
        """Place workload state (expert regions, KV pools, ...)."""

    def route(self, head: Request, now_ns: float, backlog_ns: float) -> _Route:
        return self.runtime._route(head, now_ns, backlog_ns)

    def begin_request(self, head: Request, start_ns: float) -> Optional[str]:
        """Per-request setup after pop; a non-None return sheds the
        request with that reason (recorded as a fallback note)."""
        return None

    def prefill_overhead(
        self, head: Request, route: _Route, est_ns: float, start_ns: float
    ) -> float:
        """Extra ns charged to the prefill phase (e.g. a cross-model
        mapping-switch penalty).  Default: none."""
        return 0.0

    def decode(
        self,
        head: Request,
        route: _Route,
        prefill_end_ns: float,
        decode_tokens: int,
        rng: random.Random,
    ) -> DecodeResult:
        raise NotImplementedError

    def abandon(self, head: Request, now_ns: float) -> None:
        """Cleanup for a request that failed after :meth:`begin_request`."""

    def finish(self, head: Request, now_ns: float) -> None:
        """Cleanup for a served request."""

    def teardown(self, end_ns: float) -> None:
        """Release everything placed in :meth:`setup`."""

    def section(self) -> Dict:
        """The report's ``workload`` section (JSON-stable)."""
        return {"name": self.name}

    # -- the event loop (legacy-loop skeleton, decode delegated) -------

    def run(self, requests: Sequence[Request]) -> ServingReport:
        runtime = self.runtime
        cfg = runtime.config
        tel = runtime.telemetry
        if tel is not None:
            tel.ensure_calibrated(runtime.engine)
        rng = random.Random(cfg.seed)
        queue = AdmissionQueue(
            cfg.queue_capacity, cfg.shed_policy, cfg.degrade_watermark
        )
        free = self.free
        pending = sorted(requests, key=lambda r: (r.arrival_ns, r.req_id))
        next_arrival = 0
        degraded: Dict[int, bool] = {}
        outcomes: List[RequestOutcome] = []
        clock = 0.0
        last_event = 0.0
        self.setup()

        def admit(request: Request) -> None:
            verdict, evicted = queue.offer(request)
            if evicted is not None:
                outcomes.append(
                    RequestOutcome(
                        req_id=evicted.req_id,
                        tenant=evicted.tenant,
                        status=DROPPED,
                        policy_requested=evicted.policy,
                        wait_ns=request.arrival_ns - evicted.arrival_ns,
                    )
                )
                degraded.pop(evicted.req_id, None)
            if verdict == "rejected":
                outcomes.append(
                    RequestOutcome(
                        req_id=request.req_id,
                        tenant=request.tenant,
                        status=REJECTED,
                        policy_requested=request.policy,
                    )
                )
            else:
                degraded[request.req_id] = verdict == "admitted-degraded"

        while next_arrival < len(pending) or len(queue):
            if not len(queue):
                admit(pending[next_arrival])
                next_arrival += 1
                continue
            head = queue.peek()
            if head is None:  # unreachable: guarded by len(queue) above
                raise RuntimeError(
                    "admission queue reported non-empty but has no head"
                )
            est = max(head.arrival_ns, clock)
            if (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_ns <= est
            ):
                admit(pending[next_arrival])
                next_arrival += 1
                continue
            route = self.route(head, est, max(0.0, free["pim"] - est))
            start = max(est, free[route.prefill_resource])
            if (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_ns <= start
            ):
                admit(pending[next_arrival])
                next_arrival += 1
                continue

            queue.pop(start)
            clock = start
            was_degraded = degraded.pop(head.req_id, False)
            wait_ns = start - head.arrival_ns

            # boundary 1: admission -> prefill
            if start > head.deadline_abs_ns:
                outcomes.append(
                    RequestOutcome(
                        req_id=head.req_id,
                        tenant=head.tenant,
                        status=TIMED_OUT,
                        policy_requested=head.policy,
                        policy_served=route.policy,
                        wait_ns=wait_ns,
                        fallbacks=route.fallbacks,
                    )
                )
                last_event = max(last_event, start)
                continue

            shed_reason = self.begin_request(head, start)
            if shed_reason is not None:
                outcomes.append(
                    RequestOutcome(
                        req_id=head.req_id,
                        tenant=head.tenant,
                        status=REJECTED,
                        policy_requested=head.policy,
                        policy_served=route.policy,
                        wait_ns=wait_ns,
                        fallbacks=route.fallbacks + (shed_reason,),
                    )
                )
                last_event = max(last_event, start)
                continue

            extra_ns = self.prefill_overhead(head, route, est, start)
            prefill_end, ok, retries_p, backoff_p = runtime._run_phase(
                start, route.prefill_ns + extra_ns, route.prefill_component, rng
            )
            free[route.prefill_resource] = prefill_end
            last_event = max(last_event, prefill_end)
            if not ok:
                outcomes.append(
                    RequestOutcome(
                        req_id=head.req_id,
                        tenant=head.tenant,
                        status=ABORTED,
                        policy_requested=head.policy,
                        policy_served=route.policy,
                        wait_ns=wait_ns,
                        retries=retries_p,
                        backoff_ns=backoff_p,
                        fallbacks=route.fallbacks,
                    )
                )
                self.abandon(head, prefill_end)
                continue
            ttft_ns = prefill_end - head.arrival_ns

            # boundary 2: prefill -> decode
            if prefill_end > head.deadline_abs_ns:
                outcomes.append(
                    RequestOutcome(
                        req_id=head.req_id,
                        tenant=head.tenant,
                        status=TIMED_OUT,
                        policy_requested=head.policy,
                        policy_served=route.policy,
                        wait_ns=wait_ns,
                        ttft_ns=ttft_ns,
                        retries=retries_p,
                        backoff_ns=backoff_p,
                        fallbacks=route.fallbacks,
                    )
                )
                self.abandon(head, prefill_end)
                continue

            decode_tokens = head.decode_tokens
            if was_degraded:
                decode_tokens = max(
                    1, min(decode_tokens, cfg.degraded_decode_tokens)
                )
            result = self.decode(head, route, prefill_end, decode_tokens, rng)
            last_event = max(last_event, result.end_ns)
            if not result.ok:
                outcomes.append(
                    RequestOutcome(
                        req_id=head.req_id,
                        tenant=head.tenant,
                        status=ABORTED,
                        policy_requested=head.policy,
                        policy_served=route.policy,
                        wait_ns=wait_ns,
                        ttft_ns=ttft_ns,
                        retries=retries_p + result.retries,
                        backoff_ns=backoff_p + result.backoff_ns,
                        fallbacks=route.fallbacks + result.fallbacks,
                    )
                )
                self.abandon(head, result.end_ns)
                continue

            outcomes.append(
                RequestOutcome(
                    req_id=head.req_id,
                    tenant=head.tenant,
                    status=SERVED_DEGRADED if was_degraded else SERVED,
                    policy_requested=head.policy,
                    policy_served=route.policy,
                    wait_ns=wait_ns,
                    ttft_ns=ttft_ns,
                    ttlt_ns=result.end_ns - head.arrival_ns,
                    decode_tokens_served=result.tokens_served,
                    retries=retries_p + result.retries,
                    backoff_ns=backoff_p + result.backoff_ns,
                    fallbacks=route.fallbacks + result.fallbacks,
                )
            )
            self.finish(head, result.end_ns)
            if tel is not None:
                tel.trace_query(
                    head.req_id, head.tenant, head.arrival_ns,
                    SERVED_DEGRADED if was_degraded else SERVED,
                    route.policy,
                    start_ns=start, prefill_end_ns=prefill_end,
                    decode_start_ns=prefill_end, end_ns=result.end_ns,
                    prefill_resource=route.prefill_resource,
                    decode_resource=result.resource,
                    context_tokens=head.prefill_tokens,
                    workload=self.name,
                )
                self.trace_decode(head, prefill_end, result)

        end_ns = max(
            last_event, pending[-1].arrival_ns if pending else 0.0, clock
        )
        runtime.brownout.finish(end_ns)
        self.teardown(end_ns)
        outcomes.sort(key=lambda o: o.req_id)
        report = ServingReport(
            config=cfg,
            outcomes=outcomes,
            queue_stats=queue.stats,
            duration_ns=end_ns,
            breaker_transitions={
                name: [(t, a.value, b.value) for t, a, b in brk.transitions]
                for name, brk in runtime._breakers.items()
            },
            breaker_snapshots={
                name: brk.snapshot() for name, brk in runtime._breakers.items()
            },
            brownout_intervals=list(runtime.brownout.intervals),
            health=runtime.monitor.summary(),
            workload=self.section(),
        )
        if tel is not None:
            tel.record_serving_report(report)
            tel.tracer.close_all(end_ns)
        return report

    # -- telemetry -----------------------------------------------------

    def trace_decode(
        self, head: Request, decode_start_ns: float, result: DecodeResult
    ) -> None:
        """Emit a workload-lane span for a served request's decode
        (sampled like every other span; simulated time only)."""
        tel = self.runtime.telemetry
        if tel is None or result.end_ns <= decode_start_ns:
            return
        handle = tel.tracer.begin(
            head.req_id,
            f"{self.name}.decode",
            "workload",
            decode_start_ns,
            tokens=result.tokens_served,
            **self.decode_span_args(head),
        )
        if handle is not None:
            handle.close(result.end_ns)

    def decode_span_args(self, head: Request) -> Dict:
        """Extra args for the workload-lane decode span."""
        return {}


def run_workload_serving(
    runtime: ServingRuntime, requests: List[Request]
) -> ServingReport:
    """Dispatch a run to the loop matching ``runtime.workload``."""
    from repro.workloads.coresident import CoResidencyLoop
    from repro.workloads.moe import ExpertPlacementLoop
    from repro.workloads.specs import (
        CoResidencySpec,
        ExpertPlacementSpec,
        SpeculativeSpec,
    )
    from repro.workloads.speculative import SpeculativeLoop

    spec = runtime.workload
    if isinstance(spec, SpeculativeSpec):
        return SpeculativeLoop(runtime, spec).run(requests)
    if isinstance(spec, ExpertPlacementSpec):
        return ExpertPlacementLoop(runtime, spec).run(requests)
    if isinstance(spec, CoResidencySpec):
        return CoResidencyLoop(runtime, spec).run(requests)
    raise TypeError(
        f"runtime.workload must be a SpeculativeSpec, ExpertPlacementSpec, "
        f"or CoResidencySpec, got {type(spec).__name__}"
    )
