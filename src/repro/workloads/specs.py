"""Workload specifications beyond single-model chat (extension).

Three serving workloads stress FACIL's flexible-mapping claim harder
than the chat/long-context traffic in :mod:`repro.llm.datasets`:

* :class:`SpeculativeSpec` — draft+verify speculative decoding: rounds
  of cheap draft-model GEMVs on PIM punctuated by a verify-phase GEMM
  batch of the target model, the rapid GEMV/GEMM phase switching the
  paper calls FACIL's sweet spot.  Rejected draft tokens roll their KV
  entries back through the paged pool's fork/release paths.
* :class:`ExpertPlacementSpec` — mixture-of-experts weight placement:
  every expert is an independently pimalloc'd, journaled weight region
  with its own ``select_mapping`` decision; a seeded router drives
  hits/misses against an LRU-bounded resident set.
* :class:`CoResidencySpec` — two models co-resident in one DRAM under
  different MapIDs (the UMDAM / PIM-SHERPA unified-layout problem),
  with per-model conservation and cross-model interference accounting.

Every numeric field is validated **at construction** with an error
message naming the field, so a bad acceptance rate or expert budget
fails here — not deep inside a sampling loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.model_config import MODELS

__all__ = [
    "CoResidencySpec",
    "ExpertPlacementSpec",
    "SpeculativeSpec",
    "WORKLOAD_NAMES",
]

#: The serving workload shapes ``repro-facil serve --workload`` accepts;
#: ``chat`` is the existing single-model path (no spec object).
WORKLOAD_NAMES = ("chat", "speculative", "moe", "coresident")


def _require(condition: bool, field: str, message: str, value: object) -> None:
    if not condition:
        raise ValueError(f"{field} {message}, got {value!r}")


def _require_model(field: str, name: str) -> None:
    if name not in MODELS:
        raise ValueError(
            f"{field} must be one of {sorted(MODELS)}, got {name!r}"
        )


@dataclass(frozen=True)
class SpeculativeSpec:
    """Draft+verify speculative decoding parameters.

    Per round the draft model proposes ``gamma`` tokens (GEMV decode
    steps); the target model verifies the batch in one GEMM pass.  Each
    drafted token is accepted independently with ``acceptance_rate``
    until the first rejection truncates the round; the verify pass
    always contributes one more token (the correction at the rejection
    position, or the bonus token after a clean round).  Speculated KV
    entries live on a CoW fork of the sequence and are rolled back —
    the fork is released — when the round settles.
    """

    draft_model: str = "phi-1.5"
    #: draft tokens proposed per round
    gamma: int = 4
    #: per-token acceptance probability (iid within a round)
    acceptance_rate: float = 0.8
    #: bounded KV pool backing the rollback accounting
    kv_blocks: int = 256
    block_tokens: int = 16

    def __post_init__(self) -> None:
        _require_model("SpeculativeSpec.draft_model", self.draft_model)
        _require(self.gamma >= 1, "SpeculativeSpec.gamma", "must be >= 1",
                 self.gamma)
        _require(
            0.0 <= self.acceptance_rate <= 1.0,
            "SpeculativeSpec.acceptance_rate", "must be in [0, 1]",
            self.acceptance_rate,
        )
        _require(self.kv_blocks >= 1, "SpeculativeSpec.kv_blocks",
                 "must be >= 1", self.kv_blocks)
        _require(self.block_tokens >= 1, "SpeculativeSpec.block_tokens",
                 "must be >= 1", self.block_tokens)


@dataclass(frozen=True)
class ExpertPlacementSpec:
    """MoE expert placement and eviction parameters.

    ``n_experts`` weight regions of ``expert_rows x expert_cols``
    FP16 elements; at most ``resident_experts`` are DRAM-resident at
    once (LRU-evicted, journaled free + journaled re-load).  The seeded
    router draws ``experts_per_token`` distinct experts per decode token
    from a Zipf-like popularity curve with exponent ``router_skew``.
    """

    n_experts: int = 8
    experts_per_token: int = 2
    resident_experts: int = 4
    expert_rows: int = 4096
    expert_cols: int = 4096
    router_skew: float = 1.1

    def __post_init__(self) -> None:
        _require(self.n_experts >= 1, "ExpertPlacementSpec.n_experts",
                 "must be >= 1", self.n_experts)
        _require(
            1 <= self.experts_per_token <= self.n_experts,
            "ExpertPlacementSpec.experts_per_token",
            f"must be in [1, n_experts={self.n_experts}]",
            self.experts_per_token,
        )
        _require(
            1 <= self.resident_experts <= self.n_experts,
            "ExpertPlacementSpec.resident_experts",
            f"must be in [1, n_experts={self.n_experts}]",
            self.resident_experts,
        )
        _require(
            self.experts_per_token <= self.resident_experts,
            "ExpertPlacementSpec.experts_per_token",
            f"must be <= resident_experts={self.resident_experts} "
            "(one token's experts must fit the resident budget)",
            self.experts_per_token,
        )
        _require(self.expert_rows >= 1, "ExpertPlacementSpec.expert_rows",
                 "must be >= 1", self.expert_rows)
        _require(self.expert_cols >= 1, "ExpertPlacementSpec.expert_cols",
                 "must be >= 1", self.expert_cols)
        _require(self.router_skew >= 0.0, "ExpertPlacementSpec.router_skew",
                 "must be >= 0", self.router_skew)


@dataclass(frozen=True)
class CoResidencySpec:
    """Two-model co-residency parameters.

    The primary model is the serving engine's own; the secondary model's
    weight regions are placed in the same :class:`PimSystem` under its
    own ``select_mapping`` MapIDs.  Requests whose tenant equals
    ``secondary_tenant`` run on the secondary model's engine.  Each time
    a resource's occupant switches models the controller re-muxes
    between MapID working sets; ``switch_penalty_ns`` prices that lost
    row-buffer locality and is counted as an interference event.
    """

    secondary_model: str = "phi-1.5"
    secondary_tenant: str = "secondary"
    #: fraction of offered traffic addressed to the secondary model
    #: (used by the tenant-builder helpers, not by the loop itself)
    secondary_share: float = 0.5
    switch_penalty_ns: float = 20_000.0

    def __post_init__(self) -> None:
        _require_model("CoResidencySpec.secondary_model", self.secondary_model)
        _require(
            bool(self.secondary_tenant), "CoResidencySpec.secondary_tenant",
            "must be a non-empty tenant name", self.secondary_tenant,
        )
        _require(
            0.0 < self.secondary_share < 1.0,
            "CoResidencySpec.secondary_share", "must be in (0, 1)",
            self.secondary_share,
        )
        _require(
            self.switch_penalty_ns >= 0.0,
            "CoResidencySpec.switch_penalty_ns", "must be >= 0",
            self.switch_penalty_ns,
        )
