"""Two-model co-residency as a serving workload (extension).

Two model configurations share one DRAM: each model's distinct linear
shapes are pimalloc'd in the same journaled :class:`PimSystem`, so
``select_mapping`` assigns every shape its own MapID and both models'
mappings are live in the controller's table at once — the unified-layout
problem per-tensor flexible mapping dissolves (a fixed global mapping
would have to pick one model's preferred layout and ruin the other's).

Requests whose tenant equals ``secondary_tenant`` run on the secondary
model's engine; everything else runs on the primary.  Pricing is
per-model (each engine prices its own prefill and decode), and every
time a resource's occupant switches models the loop charges
``switch_penalty_ns`` — the lost row-buffer / MapID working-set locality
— and counts an interference event, so a co-resident run is directly
comparable against two solo runs.

Conservation contract: per-model MapID sets are disjoint-or-shared only
by identical shapes, refcounts drop to zero at teardown, the journal
settles, and the mapping table returns to the conventional entry alone.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.core.pimalloc import PimSystem, PimTensor
from repro.dram.config import TINY_ORG
from repro.engine.policies import InferenceEngine, decode_on_pim
from repro.llm.layers import linear_specs
from repro.llm.model_config import model_by_name
from repro.pim.config import aim_config_for
from repro.serving.runtime import ServingRuntime, _Route
from repro.serving.workload import Request
from repro.workloads.runtime import DecodeResult, WorkloadLoop, require_placed
from repro.workloads.specs import CoResidencySpec

__all__ = ["CoResidencyLoop", "coresident_org", "place_model"]

_HUGE_PAGE_BYTES = 2 << 20


def _next_pow2(n: int) -> int:
    return 1 << max(0, (int(n) - 1).bit_length())


def _distinct_shapes(model) -> List[Tuple[int, int, int]]:
    """The model's distinct linear shapes (head excluded: the placement
    sandbox needs one exemplar per mapping decision, not the full
    parameter budget)."""
    shapes = []
    for spec in linear_specs(model, include_head=False):
        key = (spec.out_features, spec.in_features, spec.dtype_bytes)
        if key not in shapes:
            shapes.append(key)
    return shapes


def coresident_org(primary, secondary):
    """A DRAM organization fitting one exemplar of every distinct shape
    of both models, with headroom for huge-page padding."""
    total = 0
    for model in (primary, secondary):
        for rows, cols, dtype_bytes in _distinct_shapes(model):
            raw = rows * cols * dtype_bytes
            total += -(-raw // _HUGE_PAGE_BYTES) * _HUGE_PAGE_BYTES
    capacity = _next_pow2(max(4 * total, 16 << 20))
    bank_row_bytes = TINY_ORG.total_banks * TINY_ORG.row_bytes
    return replace(TINY_ORG, rows_per_bank=capacity // bank_row_bytes)


def place_model(system: PimSystem, model) -> List[PimTensor]:
    """Pimalloc one exemplar tensor per distinct linear shape."""
    from repro.core.selector import MatrixConfig

    return [
        system.pimalloc(MatrixConfig(rows=r, cols=c, dtype_bytes=d))
        for r, c, d in _distinct_shapes(model)
    ]


class CoResidencyLoop(WorkloadLoop):
    """Serving loop with two co-resident models and per-model routing."""

    name = "coresident"

    def __init__(self, runtime: ServingRuntime, spec: CoResidencySpec) -> None:
        super().__init__(runtime, spec)
        self.spec: CoResidencySpec = spec
        self.secondary_engine = InferenceEngine(
            runtime.engine.platform, model=model_by_name(spec.secondary_model)
        )
        self.system: Optional[PimSystem] = None
        self.placed: Dict[str, List[PimTensor]] = {}
        self.map_ids: Dict[str, List[int]] = {}
        #: which model last occupied each resource timeline
        self._occupant: Dict[str, Optional[str]] = {"soc": None, "pim": None}
        self.switches = 0
        self.switch_ns = 0.0
        self.served: Dict[str, int] = {"primary": 0, "secondary": 0}
        self.tokens: Dict[str, int] = {"primary": 0, "secondary": 0}
        self.findings: List[str] = []

    # -- model routing -------------------------------------------------

    def _model_key(self, head: Request) -> str:
        return (
            "secondary"
            if head.tenant == self.spec.secondary_tenant
            else "primary"
        )

    def _engine_for(self, head: Request) -> InferenceEngine:
        return (
            self.secondary_engine
            if self._model_key(head) == "secondary"
            else self.runtime.engine
        )

    def _switch_cost(self, resource: str, model_key: str) -> float:
        """Charge the re-mux penalty when *resource*'s occupant changes."""
        prev = self._occupant[resource]
        self._occupant[resource] = model_key
        if prev is None or prev == model_key:
            return 0.0
        self.switches += 1
        self.switch_ns += self.spec.switch_penalty_ns
        return self.spec.switch_penalty_ns

    # -- lifecycle -----------------------------------------------------

    def setup(self) -> None:
        primary = self.runtime.engine.model
        secondary = self.secondary_engine.model
        org = coresident_org(primary, secondary)
        self.system = PimSystem.build(
            org, aim_config_for(org), functional=False, journal=True
        )
        self.placed = {
            "primary": place_model(self.system, primary),
            "secondary": place_model(self.system, secondary),
        }
        self.map_ids = {
            key: sorted({t.map_id for t in tensors})
            for key, tensors in self.placed.items()
        }

    def teardown(self, end_ns: float) -> None:
        system = require_placed(self.system, "co-resident system")
        for tensors in self.placed.values():
            for tensor in tensors:
                tensor.free()
        findings: List[str] = []
        uncommitted = system.journal.uncommitted()
        if uncommitted:
            findings.append(
                f"{len(uncommitted)} uncommitted journal transaction(s)"
            )
        live = len(system.controller.table)
        if live != 1:
            findings.append(
                f"mapping table holds {live} entries (want conventional only)"
            )
        self.findings = findings

    # -- routing + phases ----------------------------------------------

    def route(self, head: Request, now_ns: float, backlog_ns: float) -> _Route:
        return self.runtime._route(
            head, now_ns, backlog_ns, engine=self._engine_for(head)
        )

    def prefill_overhead(
        self, head: Request, route: _Route, est_ns: float, start_ns: float
    ) -> float:
        return self._switch_cost(
            route.prefill_resource, self._model_key(head)
        )

    def decode(
        self,
        head: Request,
        route: _Route,
        prefill_end_ns: float,
        decode_tokens: int,
        rng: random.Random,
    ) -> DecodeResult:
        runtime = self.runtime
        engine = self._engine_for(head)
        model_key = self._model_key(head)
        on_pim = decode_on_pim(route.policy) and route.pim_allowed
        resource = "pim" if on_pim else "soc"
        decode_ns = engine.decode_total_ns(
            head.prefill_tokens, decode_tokens, on_pim
        ) + self._switch_cost(resource, model_key)
        start = max(prefill_end_ns, self.free[resource])
        end, ok, retries, backoff = runtime._run_phase(
            start, decode_ns, resource, rng
        )
        self.free[resource] = end
        if ok:
            self.served[model_key] += 1
            self.tokens[model_key] += decode_tokens
        return DecodeResult(
            end_ns=end,
            ok=ok,
            retries=retries,
            backoff_ns=backoff,
            tokens_served=decode_tokens if ok else 0,
            resource=resource,
        )

    # -- reporting -----------------------------------------------------

    def decode_span_args(self, head: Request) -> Dict:
        return {"model": self._model_key(head)}

    def section(self) -> Dict:
        shared = sorted(
            set(self.map_ids.get("primary", ()))
            & set(self.map_ids.get("secondary", ()))
        )
        return {
            "name": self.name,
            "primary_model": self.runtime.engine.model.name,
            "secondary_model": self.spec.secondary_model,
            "secondary_tenant": self.spec.secondary_tenant,
            "switch_penalty_ns": self.spec.switch_penalty_ns,
            "primary_map_ids": list(self.map_ids.get("primary", ())),
            "secondary_map_ids": list(self.map_ids.get("secondary", ())),
            "shared_map_ids": shared,
            "interference_switches": self.switches,
            "interference_ns": self.switch_ns,
            "served_primary": self.served["primary"],
            "served_secondary": self.served["secondary"],
            "tokens_primary": self.tokens["primary"],
            "tokens_secondary": self.tokens["secondary"],
            # the invariants the property tests and the bench gate assert
            "conservation_findings": len(self.findings),
            "findings": list(self.findings),
        }
