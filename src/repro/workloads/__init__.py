"""Serving workloads beyond single-model chat (extension).

Three first-class workloads — speculative decoding, MoE expert
placement, and two-model co-residency — run on the same discrete-event
serving skeleton as the legacy chat loop (admission, deadlines,
breakers, retries) and differ only in how decode is priced and what
placement state they conserve.  A :class:`repro.serving.ServingRuntime`
built with ``workload=<spec>`` dispatches here; without a workload spec
the chat path is untouched and its reports stay byte-identical.
"""

from repro.workloads.coresident import CoResidencyLoop
from repro.workloads.moe import ExpertPlacementLoop, ExpertPool, route_experts
from repro.workloads.runtime import (
    DecodeResult,
    WorkloadLoop,
    run_workload_serving,
)
from repro.workloads.specs import (
    WORKLOAD_NAMES,
    CoResidencySpec,
    ExpertPlacementSpec,
    SpeculativeSpec,
)
from repro.workloads.speculative import SpeculativeLoop, draft_round

__all__ = [
    "CoResidencyLoop",
    "CoResidencySpec",
    "DecodeResult",
    "ExpertPlacementLoop",
    "ExpertPool",
    "ExpertPlacementSpec",
    "SpeculativeLoop",
    "SpeculativeSpec",
    "WORKLOAD_NAMES",
    "WorkloadLoop",
    "draft_round",
    "route_experts",
    "run_workload_serving",
]
