"""Speculative decoding as a serving workload (extension).

Draft+verify decoding replaces the target model's token-at-a-time GEMV
decode with **rounds**: the draft model proposes ``gamma`` tokens (gamma
cheap GEMV steps, PIM's forte), then the target model verifies the whole
batch in one GEMM pass (the SoC's forte — or PIM's, whichever the
policy's prefill router picks for a gamma-token batch).  The rapid
GEMV/GEMM interleave is exactly the phase switching FACIL's flexible
per-tensor mappings exist to serve: the same weights are read by both
access patterns round after round with no re-layout between.

The seeded acceptance model is the standard one: each drafted token is
accepted independently with probability ``acceptance_rate`` until the
first rejection truncates the round, and the verify pass always yields
one extra token (the correction at the rejection position, or the bonus
token after a clean round) — so a round produces ``accepted + 1`` tokens
and ``accepted + rejected == gamma`` holds exactly, per round.

KV discipline: speculated tokens are written on a **copy-on-write fork**
of the sequence (:meth:`KvCacheManager.fork`).  Settling the round
releases the fork — rejected tokens vanish with it, with pool refcounts
reconciling exactly — and commits only the produced tokens on the
parent.  Pool exhaustion mid-round preempts the sequence through the
existing preempt-and-recompute path and re-admits it against the prefix
cache.  ``audit()`` runs post-teardown; its findings gate the bench.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.engine.policies import InferenceEngine, decode_on_pim
from repro.kvcache.block import KvPoolExhausted
from repro.kvcache.manager import KvCacheManager
from repro.kvcache.pool import BlockPool, KvSpec
from repro.llm.model_config import model_by_name
from repro.serving.runtime import ServingRuntime, _Route
from repro.serving.workload import Request
from repro.workloads.runtime import DecodeResult, WorkloadLoop, require_placed
from repro.workloads.specs import SpeculativeSpec

__all__ = ["SpeculativeLoop", "draft_round"]


def draft_round(
    rng: random.Random, gamma: int, acceptance_rate: float
) -> Tuple[int, int]:
    """One seeded acceptance draw: ``(accepted, rejected)`` with
    ``accepted + rejected == gamma`` always.

    Exactly *gamma* variates are consumed whatever the outcome, so the
    RNG stream position is a pure function of the round count — the
    property the replay/determinism oracles lean on.
    """
    if gamma < 1:
        raise ValueError(f"gamma must be >= 1, got {gamma!r}")
    if not 0.0 <= acceptance_rate <= 1.0:
        raise ValueError(
            f"acceptance_rate must be in [0, 1], got {acceptance_rate!r}"
        )
    accepted = 0
    rejected_yet = False
    for _ in range(gamma):
        u = rng.random()
        if not rejected_yet and u < acceptance_rate:
            accepted += 1
        else:
            rejected_yet = True
    return accepted, gamma - accepted


class SpeculativeLoop(WorkloadLoop):
    """Serving loop with draft-GEMV / verify-GEMM decode rounds."""

    name = "speculative"

    def __init__(self, runtime: ServingRuntime, spec: SpeculativeSpec) -> None:
        super().__init__(runtime, spec)
        self.spec: SpeculativeSpec = spec
        self.draft_engine = InferenceEngine(
            runtime.engine.platform, model=model_by_name(spec.draft_model)
        )
        self.kv: Optional[KvCacheManager] = None
        #: prefill tokens admitted but not yet committed, per request
        self._pending_prefill: Dict[int, int] = {}
        #: child sequence ids live below every request id
        self._next_child = -1
        # conservation counters (per-run aggregates; per-round identity
        # accepted + rejected == gamma is enforced by draft_round)
        self.rounds = 0
        self.drafted = 0
        self.accepted = 0
        self.rejected = 0
        self.bonus = 0
        self.rollbacks = 0
        self.rollback_tokens = 0
        self.kv_rejections = 0
        self.kv_preemptions = 0
        self.audit_findings = 0

    # -- lifecycle -----------------------------------------------------

    def setup(self) -> None:
        spec = self.spec
        pool = BlockPool(
            spec.kv_blocks,
            KvSpec.for_model(self.runtime.engine.model, spec.block_tokens),
        )
        self.kv = KvCacheManager(pool, prefix_sharing=True)

    def begin_request(self, head: Request, start_ns: float) -> Optional[str]:
        try:
            admission = require_placed(self.kv, "kv pool").begin(
                head.req_id, head.req_id, head.prefill_tokens, start_ns
            )
        except KvPoolExhausted:
            self.kv_rejections += 1
            return "kv-pool-exhausted (speculative admission)"
        self._pending_prefill[head.req_id] = admission.recompute_tokens
        return None

    def abandon(self, head: Request, now_ns: float) -> None:
        # a preempt-then-readmit failure may already have dropped the seq
        kv = require_placed(self.kv, "kv pool")
        self._pending_prefill.pop(head.req_id, None)
        if kv.contains(head.req_id):
            kv.release(head.req_id, now_ns, retain=False)

    def finish(self, head: Request, now_ns: float) -> None:
        require_placed(self.kv, "kv pool").release(
            head.req_id, now_ns, retain=False
        )

    def teardown(self, end_ns: float) -> None:
        self.audit_findings = len(require_placed(self.kv, "kv pool").audit())

    # -- decode --------------------------------------------------------

    def _verify_component(self, policy: str, resource: str) -> str:
        if resource == "pim":
            return "pim"
        if policy == "facil":
            return "mapping"
        return "soc"

    def decode(
        self,
        head: Request,
        route: _Route,
        prefill_end_ns: float,
        decode_tokens: int,
        rng: random.Random,
    ) -> DecodeResult:
        runtime = self.runtime
        kv = require_placed(self.kv, "kv pool")
        spec = self.spec
        free = self.free
        seq = head.req_id
        ctx = head.prefill_tokens
        # draft steps follow the policy's decode placement (a soc-only
        # policy must not smuggle the draft model onto PIM)
        draft_on_pim = decode_on_pim(route.policy) and route.pim_allowed
        draft_res = "pim" if draft_on_pim else "soc"
        draft_step = (
            self.draft_engine.pim_decode_step_ns
            if draft_on_pim
            else self.draft_engine.soc_decode_step_ns
        )
        # prefill produced the first token; rounds produce the rest
        need = decode_tokens - 1
        produced = 0
        t = prefill_end_ns
        retries = 0
        backoff = 0.0
        last_resource = draft_res
        # consecutive preempt-and-recompute attempts with no produced
        # token: the serial loop has no other sequence to finish and
        # free blocks, so a bounded number of stalls means the pool
        # simply cannot hold this sequence plus a fork — shed, do not
        # hang (same rule as the paged-KV scheduler)
        stalls = 0

        def fail(end: float) -> DecodeResult:
            return DecodeResult(
                end_ns=end, ok=False, retries=retries, backoff_ns=backoff,
                resource=last_resource,
            )

        # the prefill phase just computed the admission's recompute
        # tokens; record them (mirrors the paged-KV scheduler) so forks
        # share only committed state
        pending = self._pending_prefill.pop(seq, 0)
        if pending:
            kv.commit(seq, pending, t)

        while need > 0:
            gamma = spec.gamma
            context = ctx + produced
            # -- draft phase: gamma draft-model GEMV steps -------------
            draft_ns = sum(
                draft_step(context + i) for i in range(gamma)
            )
            start = max(t, free[draft_res])
            end, ok, r, b = runtime._run_phase(start, draft_ns, draft_res, rng)
            free[draft_res] = end
            t = end
            retries += r
            backoff += b
            last_resource = draft_res
            if not ok:
                return fail(end)

            # -- speculate: gamma KV entries on a CoW fork -------------
            child = self._next_child
            self._next_child -= 1
            kv.fork(seq, child, now_ns=t)
            try:
                kv.ensure_capacity(child, gamma, t)
                kv.commit(child, gamma, t)
            except KvPoolExhausted:
                # roll the speculation back, preempt-and-recompute the
                # sequence against the prefix cache, and retry the round
                kv.release(child, t, retain=False)
                kv.preempt(seq, t)
                self.kv_preemptions += 1
                stalls += 1
                if stalls > 2:
                    self.kv_rejections += 1
                    return fail(t)
                try:
                    admission = kv.begin(seq, seq, context, t)
                except KvPoolExhausted:
                    self.kv_rejections += 1
                    return fail(t)
                recompute = max(1, admission.recompute_tokens)
                re_ns, re_res = runtime._price_prefill(
                    route.policy, recompute, allow_pim=route.pim_allowed
                )
                start = max(t, free[re_res])
                end, ok, r, b = runtime._run_phase(
                    start, re_ns,
                    self._verify_component(route.policy, re_res), rng,
                )
                free[re_res] = end
                t = end
                retries += r
                backoff += b
                last_resource = re_res
                if not ok:
                    return fail(end)
                if admission.recompute_tokens:
                    kv.commit(seq, admission.recompute_tokens, t)
                continue

            # -- acceptance draw (seeded, fixed draw count) ------------
            accepted, rejected = draft_round(rng, gamma, spec.acceptance_rate)
            self.rounds += 1
            self.drafted += gamma
            self.accepted += accepted
            self.rejected += rejected
            if accepted == gamma:
                self.bonus += 1

            # -- verify phase: one target-model GEMM over the batch ----
            verify_ns, verify_res = runtime._price_prefill(
                route.policy, gamma, allow_pim=route.pim_allowed
            )
            start = max(t, free[verify_res])
            end, ok, r, b = runtime._run_phase(
                start, verify_ns,
                self._verify_component(route.policy, verify_res), rng,
            )
            free[verify_res] = end
            t = end
            retries += r
            backoff += b
            last_resource = verify_res
            if not ok:
                kv.release(child, t, retain=False)
                return fail(end)

            # -- settle: roll the fork back, keep only produced tokens -
            kv.release(child, t, retain=False)
            self.rollbacks += 1
            self.rollback_tokens += rejected
            step = min(accepted + 1, need)
            try:
                kv.ensure_capacity(seq, step, t)
                kv.commit(seq, step, t)
            except KvPoolExhausted:
                kv.preempt(seq, t)
                self.kv_preemptions += 1
                self.kv_rejections += 1
                return fail(t)
            produced += step
            need -= step
            stalls = 0

        return DecodeResult(
            end_ns=t,
            ok=True,
            retries=retries,
            backoff_ns=backoff,
            tokens_served=decode_tokens,
            resource=last_resource,
        )

    # -- reporting -----------------------------------------------------

    def decode_span_args(self, head: Request) -> Dict:
        return {"gamma": self.spec.gamma}

    def section(self) -> Dict:
        kv = require_placed(self.kv, "kv pool")
        drafted = self.drafted
        return {
            "name": self.name,
            "draft_model": self.spec.draft_model,
            "gamma": self.spec.gamma,
            "acceptance_rate": self.spec.acceptance_rate,
            "rounds": self.rounds,
            "drafted_tokens": drafted,
            "accepted_tokens": self.accepted,
            "rejected_tokens": self.rejected,
            "bonus_rounds": self.bonus,
            "mean_acceptance": self.accepted / drafted if drafted else 0.0,
            "rollbacks": self.rollbacks,
            "rollback_tokens": self.rollback_tokens,
            "kv_rejections": self.kv_rejections,
            "kv_preemptions": self.kv_preemptions,
            "kv_forks": kv.forks,
            "kv_cow_copies": kv.cow_copies,
            "audit_findings": self.audit_findings,
            # the invariant the property tests and the bench gate assert
            "conservation_findings": (
                0 if self.accepted + self.rejected == drafted else 1
            ) + self.audit_findings,
        }
