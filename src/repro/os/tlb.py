"""Set-associative TLB caching page-table leaves (including MapID).

The paper notes (§V-A) that because the MapID lives in otherwise-unused
PTE bits, TLB entries carry it *without any TLB modification* — the TLB
already stores the full PTE word.  This model does the same: entries cache
:class:`~repro.os.page_table.WalkResult` objects keyed by virtual page
number, supporting both page sizes in one structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.os.page_table import HUGE_SHIFT, PAGE_SHIFT, WalkResult

__all__ = ["Tlb", "TlbStats"]


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class _Entry:
    vpn: int
    page_shift: int
    leaf: WalkResult
    stamp: int = 0


class Tlb:
    """LRU set-associative TLB over both 4 KB and 2 MB pages.

    Huge pages are looked up at their own granularity, so one entry covers
    512 base pages — the classic reach advantage that makes huge pages
    attractive for multi-GB LLM weights.
    """

    def __init__(self, n_sets: int = 16, ways: int = 4):
        if n_sets <= 0 or ways <= 0:
            raise ValueError("n_sets and ways must be positive")
        self.n_sets = n_sets
        self.ways = ways
        self._sets: List[List[_Entry]] = [[] for _ in range(n_sets)]
        self._clock = 0
        self.stats = TlbStats()
        #: reliability hook (see :mod:`repro.reliability.faults`): when
        #: set, ``fault_hook.on_invalidate(va, page_shift)`` returning
        #: False swallows a shootdown — the lost-invalidation fault that
        #: leaves a stale MapID being served.
        self.fault_hook = None

    def _set_index(self, vpn: int) -> int:
        return vpn % self.n_sets

    def lookup(self, va: int) -> Optional[WalkResult]:
        """Return the cached leaf covering *va*, or None on a miss."""
        self._clock += 1
        for shift in (HUGE_SHIFT, PAGE_SHIFT):
            vpn = va >> shift
            entry_set = self._sets[self._set_index(vpn)]
            for entry in entry_set:
                if entry.vpn == vpn and entry.page_shift == shift:
                    entry.stamp = self._clock
                    self.stats.hits += 1
                    return entry.leaf
        self.stats.misses += 1
        return None

    def fill(self, va: int, leaf: WalkResult) -> None:
        """Insert the leaf fetched by a walk, evicting LRU if needed."""
        self._clock += 1
        vpn = va >> leaf.page_shift
        entry_set = self._sets[self._set_index(vpn)]
        for entry in entry_set:
            if entry.vpn == vpn and entry.page_shift == leaf.page_shift:
                entry.leaf = leaf
                entry.stamp = self._clock
                return
        if len(entry_set) >= self.ways:
            victim = min(range(len(entry_set)), key=lambda i: entry_set[i].stamp)
            entry_set.pop(victim)
            self.stats.evictions += 1
        entry_set.append(
            _Entry(vpn=vpn, page_shift=leaf.page_shift, leaf=leaf, stamp=self._clock)
        )

    def invalidate(self, va: int, page_shift: int) -> None:
        if self.fault_hook is not None and not self.fault_hook.on_invalidate(
            va, page_shift
        ):
            return
        vpn = va >> page_shift
        entry_set = self._sets[self._set_index(vpn)]
        entry_set[:] = [
            e for e in entry_set if not (e.vpn == vpn and e.page_shift == page_shift)
        ]

    def flush(self) -> None:
        for entry_set in self._sets:
            entry_set.clear()
