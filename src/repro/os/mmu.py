"""MMU: virtual-to-physical translation with TLB and page-table walk.

The MMU is where FACIL's data path starts: a load/store presents a virtual
address; the MMU returns the physical address *plus the MapID* recorded in
the leaf PTE, both of which travel to the memory controller (paper
Fig. 7b/c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.os.page_table import PageTable, WalkResult
from repro.os.tlb import Tlb

__all__ = ["Mmu", "Translation"]


@dataclass(frozen=True)
class Translation:
    """What the MMU hands the memory controller for one access."""

    pa: int
    map_id: int
    flags: int
    page_shift: int


class Mmu:
    """TLB-fronted translation over a :class:`PageTable`."""

    def __init__(self, page_table: PageTable, tlb: Optional[Tlb] = None):
        self.page_table = page_table
        self.tlb = tlb if tlb is not None else Tlb()

    def translate(self, va: int) -> Translation:
        """Translate one virtual address (TLB hit or table walk)."""
        leaf = self.tlb.lookup(va)
        if leaf is None:
            leaf = self.page_table.walk(va)
            self.tlb.fill(va, leaf)
        offset = va & (leaf.page_bytes - 1)
        return Translation(
            pa=leaf.pa + offset,
            map_id=leaf.map_id,
            flags=leaf.flags,
            page_shift=leaf.page_shift,
        )

    def translate_range(self, va: int, nbytes: int) -> List[Tuple[int, int, int]]:
        """Split ``[va, va+nbytes)`` into physically-contiguous runs.

        Returns ``(pa, length, map_id)`` triples, one per page-crossing
        segment, in virtual-address order.  This is the unit at which the
        memory controller can be driven with a single MapID.
        """
        runs: List[Tuple[int, int, int]] = []
        end = va + nbytes
        cursor = va
        while cursor < end:
            t = self.translate(cursor)
            page_end = (cursor | ((1 << t.page_shift) - 1)) + 1
            length = min(end, page_end) - cursor
            if runs and runs[-1][0] + runs[-1][1] == t.pa and runs[-1][2] == t.map_id:
                pa, prev_len, map_id = runs[-1]
                runs[-1] = (pa, prev_len + length, map_id)
            else:
                runs.append((t.pa, length, t.map_id))
            cursor += length
        return runs
