"""Virtual-memory front door: an ``mmap``-style interface with FACIL's
optional MapID argument (paper §V-A).

``AddressSpace.mmap`` allocates physical frames from the buddy allocator,
installs leaf PTEs (huge or base pages), and — when a MapID is supplied —
records it in the huge-page PTEs so every later access through the MMU
carries the mapping choice to the memory controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.os.buddy import BuddyAllocator
from repro.os.mmu import Mmu
from repro.os.page_table import (
    HUGE_SHIFT,
    PAGE_SHIFT,
    PageTable,
    PteFlags,
)
from repro.os.tlb import Tlb

__all__ = ["AddressSpace", "VmArea"]

_HUGE_ORDER = HUGE_SHIFT - PAGE_SHIFT  # order-9 buddy blocks back huge pages
_VA_BASE = 0x0000_1000_0000  # leave low VA unmapped, like a real process


@dataclass
class VmArea:
    """One mmap'ed region (a simplified Linux VMA)."""

    va: int
    length: int
    page_shift: int
    map_id: int
    flags: int
    frames: List[int] = field(default_factory=list)

    @property
    def page_bytes(self) -> int:
        return 1 << self.page_shift

    @property
    def n_pages(self) -> int:
        return self.length // self.page_bytes

    @property
    def end(self) -> int:
        return self.va + self.length


class AddressSpace:
    """A process address space: VA allocator + page table + TLB + frames."""

    def __init__(
        self,
        buddy: BuddyAllocator,
        page_table: Optional[PageTable] = None,
        tlb: Optional[Tlb] = None,
    ):
        self.buddy = buddy
        self.page_table = page_table if page_table is not None else PageTable()
        self.mmu = Mmu(self.page_table, tlb)
        self.areas: Dict[int, VmArea] = {}
        self._va_cursor = _VA_BASE
        #: pages copied by compaction while minting huge pages (cost model)
        self.compaction_moves = 0

    # -- mmap / munmap -----------------------------------------------------

    def mmap(
        self,
        length: int,
        huge: bool = False,
        map_id: int = 0,
        writable: bool = True,
        compact: bool = True,
    ) -> int:
        """Allocate and map *length* bytes; returns the virtual address.

        This is the paper's extended ``mmap()``: the extra *map_id*
        argument is legal only with huge pages, and lands in the PTEs.
        With ``compact=True`` huge-page allocation falls back to buddy
        compaction (counting moved pages in :attr:`compaction_moves`)
        instead of failing when free memory is fragmented.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        if map_id != 0 and not huge:
            raise ValueError("MapID requires huge pages (paper §V-A)")
        page_shift = HUGE_SHIFT if huge else PAGE_SHIFT
        page_bytes = 1 << page_shift
        length = (length + page_bytes - 1) & ~(page_bytes - 1)

        va = (self._va_cursor + page_bytes - 1) & ~(page_bytes - 1)
        self._va_cursor = va + length

        flags = PteFlags.PRESENT | (PteFlags.WRITABLE if writable else 0)
        if map_id != 0:
            flags |= PteFlags.PIM
        area = VmArea(
            va=va, length=length, page_shift=page_shift, map_id=map_id, flags=flags
        )
        order = _HUGE_ORDER if huge else 0
        try:
            for index in range(area.n_pages):
                if huge and compact:
                    result = self.buddy.alloc_with_compaction(order)
                    frame = result.frame
                    self.compaction_moves += result.pages_moved
                else:
                    frame = self.buddy.alloc(order)
                try:
                    self.page_table.map_page(
                        va + index * page_bytes,
                        frame << PAGE_SHIFT,
                        huge=huge,
                        map_id=map_id,
                        flags=flags,
                    )
                except Exception:
                    self.buddy.free(frame)
                    raise
                area.frames.append(frame)
        except Exception:
            self._rollback(area)
            raise
        self.areas[va] = area
        return va

    def _rollback(self, area: VmArea) -> None:
        for index, frame in enumerate(area.frames):
            self.page_table.unmap_page(
                area.va + index * area.page_bytes,
                huge=area.page_shift == HUGE_SHIFT,
            )
            self.buddy.free(frame)

    def munmap(self, va: int) -> None:
        """Tear down the region starting at *va* and free its frames."""
        area = self.areas.pop(va, None)
        if area is None:
            raise ValueError(f"va {va:#x} is not the start of a mapped area")
        for index, frame in enumerate(area.frames):
            page_va = va + index * area.page_bytes
            self.page_table.unmap_page(page_va, huge=area.page_shift == HUGE_SHIFT)
            self.mmu.tlb.invalidate(page_va, area.page_shift)
            self.buddy.free(frame)

    def set_area_map_id(self, va: int, page_index: int, map_id: int) -> None:
        """Re-route one huge page of the area at *va* through *map_id*:
        rewrite its PTE's MapID field and shoot down the stale TLB copy.

        This is the per-page step of FACIL's phase switch; callers walk
        every page of the area (journaling each step) so a crash mid-walk
        is recoverable.
        """
        area = self.areas.get(va)
        if area is None:
            raise ValueError(f"va {va:#x} is not the start of a mapped area")
        if area.page_shift != HUGE_SHIFT:
            raise ValueError("MapID requires huge pages (paper §V-A)")
        if not 0 <= page_index < area.n_pages:
            raise ValueError(
                f"page index {page_index} outside area of {area.n_pages} pages"
            )
        page_va = va + page_index * area.page_bytes
        self.page_table.set_map_id(page_va, map_id)
        self.mmu.tlb.invalidate(page_va, area.page_shift)
        if page_index == area.n_pages - 1:
            area.map_id = map_id
            if map_id != 0:
                area.flags |= PteFlags.PIM

    # -- queries ---------------------------------------------------------------

    def area_page_map_ids(self, va: int) -> List[int]:
        """Per-huge-page MapIDs of the area at *va*, read from the PTEs.

        ``VmArea.map_id`` records the id of the last full-area rewrite;
        after a partial migration the area is *mixed* and only the PTEs
        describe it truthfully.  Recovery, the mapping audits, and the
        adaptive controller all use this as ground truth.
        """
        area = self.areas.get(va)
        if area is None:
            raise ValueError(f"va {va:#x} is not the start of a mapped area")
        if area.page_shift != HUGE_SHIFT:
            raise ValueError("MapID requires huge pages (paper §V-A)")
        return [
            self.page_table.map_id_of(va + index * area.page_bytes)
            for index in range(area.n_pages)
        ]

    def area_of(self, va: int) -> VmArea:
        for area in self.areas.values():
            if area.va <= va < area.end:
                return area
        raise KeyError(f"va {va:#x} not inside any mapped area")
