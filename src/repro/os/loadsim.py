"""Model-weight load-time simulation under fragmentation (paper Table I).

The paper measures, on a Jetson with an NVMe SSD, how much longer loading
Llama3-8B takes when the weights go into 2 MB huge pages, across degrees
of free-memory size and fragmentation (FMFI).  The cost drivers are:

* SSD streaming time (common to both paths);
* per-page population cost: minor faults for 4 KB pages vs.
  reservation+zeroing for 2 MB pages;
* **compaction**: when free memory is fragmented, minting each 2 MB
  block requires migrating in-use movable pages out of a 2 MB-aligned
  window — the number of migrations is what the buddy-allocator
  simulation produces.

The arena is built generatively: resident (movable) pages touch a tunable
fraction of the 2 MB windows at random offsets; a bisection on that
fraction hits the target FMFI band.  The simulation runs on a scaled-down
model (move counts per huge page are scale-invariant) and the cost
constants are calibrated once against the paper's baseline load time
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.bitfield import ceil_div
import numpy as np

from repro.os.buddy import BuddyAllocator

__all__ = [
    "LoadCostModel",
    "LoadOutcome",
    "build_fragmented_arena",
    "simulate_weight_load",
]

_PAGE = 4096
_HUGE_ORDER = 9
_HUGE = _PAGE << _HUGE_ORDER  # 2 MB


@dataclass(frozen=True)
class LoadCostModel:
    """Calibrated cost constants (see EXPERIMENTS.md, Table I entry).

    ``ssd_gbps`` reproduces the paper's implied baseline: 16.2 GB loading
    in ~8.8 s through the filesystem.  ``huge_fault_ns`` is dominated by
    zeroing 2 MB; ``move_ns`` is one 4 KB page migration (copy plus
    remap).
    """

    ssd_gbps: float = 1.9
    fault_4k_ns: float = 70.0
    huge_fault_ns: float = 173_000.0
    move_ns: float = 4_500.0


@dataclass(frozen=True)
class LoadOutcome:
    """Result of one simulated load."""

    seconds: float
    baseline_seconds: float
    pages_moved: int
    fmfi_before: float
    free_ratio: float
    used_huge_pages: bool

    @property
    def normalized(self) -> float:
        """Load time relative to the 4 KB-page baseline (the
        parenthesized numbers of Table I)."""
        return self.seconds / self.baseline_seconds


def build_fragmented_arena(
    total_pages: int,
    used_pages: int,
    target_fmfi: float,
    seed: int = 0,
    tolerance: float = 0.04,
) -> Tuple[BuddyAllocator, float]:
    """Construct an arena with *used_pages* allocated and free-memory
    fragmentation near *target_fmfi* at the huge-page order.

    Resident pages (page cache, anonymous memory) touch a *fraction* of
    the 2 MB-aligned windows: touched windows get a multinomial share of
    the used pages at random offsets, untouched windows stay pristine.
    A freshly booted device has residents packed into few windows (low
    FMFI); long uptime sprinkles them everywhere (FMFI -> 1).  A bisection
    on the touched fraction hits the target band.  Returns the arena and
    the achieved FMFI.
    """
    if used_pages >= total_pages:
        raise ValueError("used_pages must leave some memory free")
    window_pages = 1 << _HUGE_ORDER
    n_windows = total_pages // window_pages
    min_touched = ceil_div(used_pages, window_pages)

    def build(touched: int) -> Tuple[BuddyAllocator, float]:
        rng = np.random.default_rng(seed)
        windows = rng.choice(n_windows, size=touched, replace=False)
        counts = rng.multinomial(used_pages, np.full(touched, 1.0 / touched))
        # Clip to capacity, dumping overflow into the emptiest windows.
        counts = np.minimum(counts, window_pages)
        overflow = used_pages - int(counts.sum())
        while overflow > 0:
            slot = int(np.argmin(counts))
            room = window_pages - int(counts[slot])
            if room == 0:
                break
            grant = min(room, overflow)
            counts[slot] += grant
            overflow -= grant
        allocated = set()
        for w, count in zip(windows, counts):
            if count:
                offsets = rng.choice(window_pages, size=int(count), replace=False)
                base = int(w) * window_pages
                allocated.update(int(base + o) for o in offsets)
        arena = BuddyAllocator.from_allocated(
            total_pages, allocated, max_order=_HUGE_ORDER
        )
        return arena, arena.fmfi(_HUGE_ORDER)

    # FMFI increases with the touched-window count.
    low, high = min_touched, n_windows
    best: Optional[Tuple[BuddyAllocator, float]] = None
    best_err = float("inf")
    for _ in range(14):
        mid = (low + high) // 2
        arena, fmfi = build(mid)
        err = abs(fmfi - target_fmfi)
        if err < best_err:
            best, best_err = (arena, fmfi), err
        if err <= tolerance:
            break
        if fmfi < target_fmfi:
            low = mid + 1
        else:
            high = mid - 1
        if low > high:
            break
    if best is None:
        raise RuntimeError("fragmentation search produced no candidate arena")
    return best


def simulate_weight_load(
    model_bytes: int,
    free_ratio: float,
    target_fmfi: float,
    use_huge_pages: bool = True,
    costs: LoadCostModel = LoadCostModel(),
    sim_model_bytes: int = 128 << 20,
    seed: int = 0,
) -> LoadOutcome:
    """Simulate loading *model_bytes* of weights (Table I cell).

    Args:
        free_ratio: free memory relative to the model size (Table I
            columns: 2.5x ... 1.1x).
        target_fmfi: free-memory fragmentation index band center (rows).
        use_huge_pages: False reproduces the baseline path.
        sim_model_bytes: scaled-down model size the buddy simulation
            runs at; per-huge-page move counts are scale-invariant, so
            total moves extrapolate linearly.
    """
    if free_ratio <= 1.0:
        raise ValueError("free memory must exceed the model size")
    baseline_seconds = (
        model_bytes / (costs.ssd_gbps * 1e9)
        + (model_bytes // _PAGE) * costs.fault_4k_ns * 1e-9
    )
    if not use_huge_pages:
        return LoadOutcome(
            seconds=baseline_seconds,
            baseline_seconds=baseline_seconds,
            pages_moved=0,
            fmfi_before=0.0,
            free_ratio=free_ratio,
            used_huge_pages=False,
        )

    scale = model_bytes / sim_model_bytes
    sim_huge_pages = ceil_div(sim_model_bytes, _HUGE)
    free_pages = int(sim_model_bytes * free_ratio) // _PAGE
    # The arena also holds the device's other (movable) resident memory,
    # comparable in size to the model itself.
    used_pages = sim_model_bytes // _PAGE
    total_pages = free_pages + used_pages

    arena, fmfi = build_fragmented_arena(
        total_pages, used_pages, target_fmfi, seed=seed
    )
    moves = 0
    for _ in range(sim_huge_pages):
        result = arena.alloc_with_compaction(_HUGE_ORDER)
        moves += result.pages_moved

    total_moves = moves * scale
    n_huge = ceil_div(model_bytes, _HUGE)
    seconds = (
        model_bytes / (costs.ssd_gbps * 1e9)
        + n_huge * costs.huge_fault_ns * 1e-9
        + total_moves * costs.move_ns * 1e-9
    )
    return LoadOutcome(
        seconds=seconds,
        baseline_seconds=baseline_seconds,
        pages_moved=int(total_moves),
        fmfi_before=fmfi,
        free_ratio=free_ratio,
        used_huge_pages=True,
    )
