"""OS substrate: buddy allocator, paging with MapID PTEs, TLB, MMU, mmap."""

from repro.os.buddy import BuddyAllocator, CompactionResult, OutOfMemoryError
from repro.os.loadsim import (
    LoadCostModel,
    LoadOutcome,
    build_fragmented_arena,
    simulate_weight_load,
)
from repro.os.mmu import Mmu, Translation
from repro.os.page_table import (
    HUGE_SHIFT,
    PAGE_SHIFT,
    PageFaultError,
    PageTable,
    PteFlags,
    WalkResult,
    pack_pte,
    unpack_pte,
)
from repro.os.tlb import Tlb, TlbStats
from repro.os.vm import AddressSpace, VmArea

__all__ = [
    "AddressSpace",
    "BuddyAllocator",
    "CompactionResult",
    "HUGE_SHIFT",
    "LoadCostModel",
    "LoadOutcome",
    "Mmu",
    "OutOfMemoryError",
    "PAGE_SHIFT",
    "PageFaultError",
    "PageTable",
    "PteFlags",
    "Tlb",
    "TlbStats",
    "Translation",
    "VmArea",
    "WalkResult",
    "build_fragmented_arena",
    "pack_pte",
    "simulate_weight_load",
    "unpack_pte",
]
