"""Buddy physical-page allocator with fragmentation metrics.

FACIL stores weight matrices in 2 MB huge pages, so its practicality rests
on the OS being able to mint physically-contiguous 2 MB blocks.  This
module implements the classic binary-buddy allocator, the *free memory
fragmentation index* (FMFI) of Gorman & Whitcroft used by the paper's
Table I, controlled fragmentation injection for experiments, and a
compaction model that counts how many in-use pages must move to
reconstitute a high-order block.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

__all__ = ["BuddyAllocator", "CompactionResult", "OutOfMemoryError"]


class OutOfMemoryError(Exception):
    """No block of the requested order can be produced, even by compaction."""


@dataclass
class CompactionResult:
    """Outcome of minting one high-order block via compaction."""

    frame: int
    pages_moved: int


class BuddyAllocator:
    """Binary buddy allocator over page frames.

    Args:
        total_pages: number of order-0 page frames managed.
        max_order: largest block order (2**max_order pages); order 9 with
            4 KB pages is a 2 MB huge page.
    """

    def __init__(self, total_pages: int, max_order: int = 9):
        if total_pages <= 0:
            raise ValueError("total_pages must be positive")
        self.total_pages = total_pages
        self.max_order = max_order
        self.free_lists: List[Set[int]] = [set() for _ in range(max_order + 1)]
        #: frame -> order of the allocation starting at that frame
        self.allocated: Dict[int, int] = {}
        #: pages pinned by fragment_to (model long-lived unmovable pages)
        self.pinned: List[int] = []
        frame = 0
        block = 1 << max_order
        while frame + block <= total_pages:
            self.free_lists[max_order].add(frame)
            frame += block
        # Tail pages that do not fill a max-order block.
        remaining = total_pages - frame
        order = max_order - 1
        while remaining > 0 and order >= 0:
            block = 1 << order
            if remaining >= block:
                self.free_lists[order].add(frame)
                frame += block
                remaining -= block
            else:
                order -= 1

    @classmethod
    def from_allocated(
        cls, total_pages: int, allocated_pages: Set[int], max_order: int = 9
    ) -> "BuddyAllocator":
        """Construct an arena whose *allocated_pages* (order-0 frames) are
        in use and whose complement is coalesced into maximal free blocks.

        Used by the fragmentation experiments to build arbitrary
        occupancy patterns directly instead of replaying allocation
        histories.
        """
        arena = cls(total_pages, max_order)
        for order in range(max_order + 1):
            arena.free_lists[order].clear()
        arena.allocated = {frame: 0 for frame in allocated_pages}
        current = sorted(set(range(total_pages)) - set(allocated_pages))
        level: Set[int] = set(current)
        for order in range(max_order):
            promoted: Set[int] = set()
            block = 1 << order
            for frame in level:
                if frame & ((block << 1) - 1):
                    continue  # not aligned for promotion
                if frame + block in level:
                    promoted.add(frame)
            leftovers = level - promoted - {f + block for f in promoted}
            arena.free_lists[order].update(leftovers)
            level = promoted
        arena.free_lists[max_order].update(level)
        return arena

    # -- bookkeeping -------------------------------------------------------

    @property
    def free_pages(self) -> int:
        return sum(len(blocks) << order for order, blocks in enumerate(self.free_lists))

    @property
    def used_pages(self) -> int:
        return self.total_pages - self.free_pages

    def free_blocks(self, order: int) -> int:
        return len(self.free_lists[order])

    # -- allocation ------------------------------------------------------------

    def alloc(self, order: int = 0) -> int:
        """Allocate a block of 2**order pages; returns the first frame.

        Raises:
            OutOfMemoryError: when no block of sufficient order is free.
        """
        if not 0 <= order <= self.max_order:
            raise ValueError(f"order {order} out of range")
        for source in range(order, self.max_order + 1):
            if self.free_lists[source]:
                frame = min(self.free_lists[source])
                self.free_lists[source].discard(frame)
                # Split down to the requested order, freeing the buddies.
                for split in range(source - 1, order - 1, -1):
                    self.free_lists[split].add(frame + (1 << split))
                self.allocated[frame] = order
                return frame
        raise OutOfMemoryError(f"no free block of order {order}")

    def free(self, frame: int) -> None:
        """Free a previously allocated block, merging buddies eagerly."""
        order = self.allocated.pop(frame, None)
        if order is None:
            raise ValueError(f"frame {frame} is not the start of an allocation")
        while order < self.max_order:
            buddy = frame ^ (1 << order)
            if buddy in self.free_lists[order] and buddy + (1 << order) <= self.total_pages:
                self.free_lists[order].discard(buddy)
                frame = min(frame, buddy)
                order += 1
            else:
                break
        self.free_lists[order].add(frame)

    # -- fragmentation -----------------------------------------------------------

    def fmfi(self, order: int) -> float:
        """Free memory fragmentation index for *order* (Gorman & Whitcroft).

        0 means all free memory already sits in blocks of at least *order*;
        values near 1 mean the free memory is shattered into smaller blocks.
        """
        free = self.free_pages
        if free == 0:
            return 1.0
        requested_blocks = free / (1 << order)
        satisfiable = sum(
            len(self.free_lists[i]) << (i - order)
            for i in range(order, self.max_order + 1)
        )
        return max(0.0, (requested_blocks - satisfiable) / requested_blocks)

    def fragment_to(
        self,
        target_fmfi: float,
        order: int,
        rng: Optional[random.Random] = None,
        tolerance: float = 0.05,
    ) -> float:
        """Inject fragmentation until ``fmfi(order)`` reaches *target_fmfi*.

        Strategy: temporarily allocate order-0 pages scattered across free
        high-order blocks (pinning one page per block shatters it), until
        the index reaches the target.  The pinned pages remain allocated —
        they model long-lived kernel/app pages — and are tracked so tests
        can release them.

        Returns the achieved FMFI.
        """
        rng = rng or random.Random(0)
        guard = 0
        while self.fmfi(order) + tolerance < target_fmfi:
            candidates = [
                (source, frame)
                for source in range(order, self.max_order + 1)
                for frame in self.free_lists[source]
            ]
            if not candidates:
                break
            source, frame = rng.choice(candidates)
            # Pin one page in the middle of the block, splitting it.
            self.free_lists[source].discard(frame)
            for split in range(source - 1, -1, -1):
                self.free_lists[split].add(frame + (1 << split))
            self.allocated[frame] = 0
            self.pinned.append(frame)
            guard += 1
            if guard > self.total_pages:
                break
        return self.fmfi(order)

    # -- compaction ------------------------------------------------------------

    def alloc_with_compaction(self, order: int) -> CompactionResult:
        """Allocate a block of *order*, compacting if necessary.

        Compaction model: pick the aligned frame window with the fewest
        in-use pages whose occupants are all movable, migrate those pages
        into other free space, and mint the block.  The number of moved
        pages is the cost the load-time model charges (Table I).
        """
        try:
            return CompactionResult(frame=self.alloc(order), pages_moved=0)
        except OutOfMemoryError:
            pass
        block = 1 << order
        if self.free_pages < block:
            raise OutOfMemoryError(
                f"only {self.free_pages} pages free; need {block}"
            )
        window = self._cheapest_window(order)
        if window is None:
            raise OutOfMemoryError(f"no compactable window of order {order}")
        moved = self._evacuate_window(window, order)
        return CompactionResult(frame=window, pages_moved=moved)

    def _free_page_set(self) -> Set[int]:
        pages: Set[int] = set()
        for order, blocks in enumerate(self.free_lists):
            for frame in blocks:
                pages.update(range(frame, frame + (1 << order)))
        return pages

    def _cheapest_window(self, order: int) -> Optional[int]:
        """Aligned window with the most free pages (fewest moves)."""
        free_pages = self._free_page_set()
        block = 1 << order
        best_frame, best_free = None, -1
        for frame in range(0, self.total_pages - block + 1, block):
            free_count = sum(1 for page in range(frame, frame + block) if page in free_pages)
            if free_count > best_free:
                best_frame, best_free = frame, free_count
            if best_free == block:  # already free; alloc() would have found it
                break
        return best_frame

    def _evacuate_window(self, window: int, order: int) -> int:
        """Move every allocation overlapping the window elsewhere and leave
        the whole window allocated as one block of *order*.

        A resident block is freed and re-allocated outside the reserved
        window (the cost of copying its pages is what the caller charges).
        Returns the number of pages moved.
        """
        block = 1 << order
        window_pages = set(range(window, window + block))
        residents = [
            (frame, res_order)
            for frame, res_order in list(self.allocated.items())
            if set(range(frame, frame + (1 << res_order))) & window_pages
        ]
        for frame, _ in residents:
            self.free(frame)
        self._reserve_range(window, block)
        self.allocated[window] = order
        moved = 0
        for frame, res_order in residents:
            moved += 1 << res_order
            self.alloc(res_order)  # new home for the displaced data
        gone = {frame for frame, _ in residents}
        self.pinned = [f for f in self.pinned if f not in gone]
        return moved

    def _reserve_range(self, start: int, count: int) -> None:
        """Remove the exact pages ``[start, start+count)`` from the free
        lists, splitting any free block that overlaps the range.

        Raises:
            OutOfMemoryError: if any page in the range is currently in use.
        """
        end = start + count
        remaining = count
        progress = True
        while remaining > 0 and progress:
            progress = False
            for order in range(self.max_order, -1, -1):
                for frame in list(self.free_lists[order]):
                    size = 1 << order
                    if frame + size <= start or frame >= end:
                        continue
                    self.free_lists[order].discard(frame)
                    progress = True
                    if start <= frame and frame + size <= end:
                        remaining -= size  # fully consumed
                    else:
                        # Straddles the range boundary: split and retry.
                        half = size >> 1
                        self.free_lists[order - 1].add(frame)
                        self.free_lists[order - 1].add(frame + half)
                    break
                if progress:
                    break
        if remaining > 0:
            raise OutOfMemoryError(
                f"range [{start}, {end}) is not entirely free "
                f"({remaining} pages missing)"
            )
