"""Radix page table with FACIL's MapID-augmented page-table entries.

The paper (Fig. 11) repurposes *unused* bits of a huge-page PTE to carry
the MapID: a 2 MB page needs 9 fewer physical-frame-number bits than a
4 KB page (21 - 12 = 9 unused bits), and at most 14 extra mappings need
only 4 bits.  This module packs/unpacks 64-bit PTEs with exactly that
layout and implements a 4-level x86-style radix walk supporting both 4 KB
leaves (level 1) and 2 MB huge leaves (level 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "PAGE_SHIFT",
    "HUGE_SHIFT",
    "PteFlags",
    "pack_pte",
    "unpack_pte",
    "PageTable",
    "PageFaultError",
    "WalkResult",
]

PAGE_SHIFT = 12  # 4 KB base pages
HUGE_SHIFT = 21  # 2 MB huge pages
LEVEL_BITS = 9  # 512 entries per level
N_LEVELS = 4  # 48-bit virtual addresses

#: Number of PTE bits freed when the leaf is a huge page (paper: 21-12=9).
UNUSED_HUGE_BITS = HUGE_SHIFT - PAGE_SHIFT
#: Width of the MapID field FACIL stores in those unused bits.
MAP_ID_BITS = 4
MAP_ID_SHIFT = PAGE_SHIFT  # MapID occupies PTE bits [12, 12+4)

_PFN_SHIFT = PAGE_SHIFT
_PFN_MASK = (1 << 40) - 1  # 40-bit physical frame numbers


class PageFaultError(Exception):
    """Translation attempted on an unmapped virtual address."""


class PteFlags:
    """PTE flag bits (subset of the x86-64 layout)."""

    PRESENT = 1 << 0
    WRITABLE = 1 << 1
    USER = 1 << 2
    HUGE = 1 << 7  # page-size bit: leaf at the PMD level
    PIM = 1 << 9  # software bit: region allocated via pimalloc

    LOW_MASK = PRESENT | WRITABLE | USER | HUGE | PIM


def pack_pte(pfn: int, flags: int, map_id: int = 0) -> int:
    """Pack a 64-bit PTE.

    For huge pages, the physical address bits [12, 21) are necessarily
    zero, so FACIL stores the MapID there — no PTE widening, no extra
    memory (paper Fig. 11).  For 4 KB pages ``map_id`` must be 0: regular
    pages always use the conventional mapping.
    """
    if pfn < 0 or pfn > _PFN_MASK:
        raise ValueError(f"pfn {pfn:#x} out of range")
    if not 0 <= map_id < (1 << MAP_ID_BITS):
        raise ValueError(
            f"map_id {map_id} needs more than {MAP_ID_BITS} bits; the paper "
            "bounds the mapping count so 4 bits always suffice"
        )
    huge = bool(flags & PteFlags.HUGE)
    if not huge and map_id != 0:
        raise ValueError("MapID can only be stored in huge-page PTEs")
    if huge and pfn & ((1 << UNUSED_HUGE_BITS) - 1):
        raise ValueError(
            f"huge-page pfn {pfn:#x} must be 2 MB aligned "
            f"({UNUSED_HUGE_BITS} low bits clear)"
        )
    pte = (pfn << _PFN_SHIFT) | (flags & PteFlags.LOW_MASK)
    if huge:
        pte |= map_id << MAP_ID_SHIFT
    return pte


def unpack_pte(pte: int) -> "WalkResult":
    """Inverse of :func:`pack_pte` (virtual address left as 0)."""
    flags = pte & PteFlags.LOW_MASK
    huge = bool(flags & PteFlags.HUGE)
    if huge:
        map_id = (pte >> MAP_ID_SHIFT) & ((1 << MAP_ID_BITS) - 1)
        pfn = (pte >> _PFN_SHIFT) & _PFN_MASK & ~((1 << UNUSED_HUGE_BITS) - 1)
    else:
        map_id = 0
        pfn = (pte >> _PFN_SHIFT) & _PFN_MASK
    return WalkResult(
        pa=pfn << PAGE_SHIFT,
        page_shift=HUGE_SHIFT if huge else PAGE_SHIFT,
        map_id=map_id,
        flags=flags,
    )


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a page-table walk for one leaf."""

    pa: int  # physical base address of the page
    page_shift: int  # 12 or 21
    map_id: int
    flags: int

    @property
    def page_bytes(self) -> int:
        return 1 << self.page_shift

    @property
    def is_huge(self) -> bool:
        return self.page_shift == HUGE_SHIFT


class PageTable:
    """4-level radix page table keyed by 48-bit virtual addresses."""

    def __init__(self) -> None:
        self._root: Dict[int, object] = {}
        self.walks = 0
        #: reliability hook (see :mod:`repro.reliability.faults`): when
        #: set, ``fault_hook.on_walk(va, result)`` may substitute the
        #: leaf a walk returns (transient walker faults).
        self.fault_hook = None

    @staticmethod
    def _indices(va: int) -> tuple:
        indices = []
        shift = PAGE_SHIFT + LEVEL_BITS * (N_LEVELS - 1)
        for _ in range(N_LEVELS):
            indices.append((va >> shift) & ((1 << LEVEL_BITS) - 1))
            shift -= LEVEL_BITS
        return tuple(indices)

    def map_page(
        self,
        va: int,
        pa: int,
        huge: bool = False,
        map_id: int = 0,
        flags: int = PteFlags.PRESENT | PteFlags.WRITABLE,
    ) -> None:
        """Install one leaf mapping va -> pa.

        Raises:
            ValueError: on misalignment or an already-mapped address.
        """
        shift = HUGE_SHIFT if huge else PAGE_SHIFT
        if va & ((1 << shift) - 1) or pa & ((1 << shift) - 1):
            raise ValueError(
                f"va {va:#x} / pa {pa:#x} not aligned to {1 << shift} bytes"
            )
        full_flags = flags | PteFlags.PRESENT | (PteFlags.HUGE if huge else 0)
        pte = pack_pte(pa >> PAGE_SHIFT, full_flags, map_id)
        indices = self._indices(va)
        depth = N_LEVELS - 2 if huge else N_LEVELS - 1
        node = self._root
        for level in range(depth):
            child = node.get(indices[level])
            if child is None:
                child = {}
                node[indices[level]] = child
            if not isinstance(child, dict):
                raise ValueError(f"va {va:#x} overlaps an existing huge mapping")
            node = child
        if indices[depth] in node:
            raise ValueError(f"va {va:#x} is already mapped")
        node[indices[depth]] = pte

    def unmap_page(self, va: int, huge: bool = False) -> None:
        indices = self._indices(va)
        depth = N_LEVELS - 2 if huge else N_LEVELS - 1
        node = self._root
        for level in range(depth):
            child = node.get(indices[level])
            if not isinstance(child, dict):
                raise PageFaultError(f"va {va:#x} not mapped")
            node = child
        if indices[depth] not in node:
            raise PageFaultError(f"va {va:#x} not mapped")
        del node[indices[depth]]

    def walk(self, va: int) -> WalkResult:
        """Walk the tree; returns the leaf for *va*.

        Raises:
            PageFaultError: when no leaf covers *va*.
        """
        self.walks += 1
        indices = self._indices(va)
        node = self._root
        for level in range(N_LEVELS):
            entry = node.get(indices[level])
            if entry is None:
                raise PageFaultError(f"va {va:#x} not mapped (level {level})")
            if isinstance(entry, dict):
                node = entry
                continue
            result = unpack_pte(entry)
            expected_level = N_LEVELS - 2 if result.is_huge else N_LEVELS - 1
            if level != expected_level:
                raise PageFaultError(
                    f"malformed table: leaf at level {level} for va {va:#x}"
                )
            if self.fault_hook is not None:
                result = self.fault_hook.on_walk(va, result)
            return result
        raise PageFaultError(f"va {va:#x}: walk reached depth without a leaf")

    def set_map_id(self, va: int, map_id: int) -> int:
        """Rewrite the MapID field of the huge-page leaf PTE covering
        *va* (FACIL's phase switch: the region's bytes are re-routed
        through a different registered mapping).

        Returns the updated PTE value.

        Raises:
            PageFaultError: when no leaf covers *va*.
            ValueError: for a non-huge leaf (4 KB pages have no MapID
                field) or an unencodable *map_id*.
        """
        if not 0 <= map_id < (1 << MAP_ID_BITS):
            raise ValueError(
                f"map_id {map_id} needs more than {MAP_ID_BITS} bits"
            )
        indices = self._indices(va)
        node = self._root
        for level in range(N_LEVELS):
            entry = node.get(indices[level])
            if entry is None:
                raise PageFaultError(f"va {va:#x} not mapped (level {level})")
            if isinstance(entry, dict):
                node = entry
                continue
            if not entry & PteFlags.HUGE:
                raise ValueError(
                    f"va {va:#x} is a base-page mapping; MapID lives only "
                    "in huge-page PTEs"
                )
            mask = ((1 << MAP_ID_BITS) - 1) << MAP_ID_SHIFT
            updated = (entry & ~mask) | (map_id << MAP_ID_SHIFT)
            if map_id != 0:
                updated |= PteFlags.PIM
            else:
                updated &= ~PteFlags.PIM
            node[indices[level]] = updated
            return updated
        raise PageFaultError(f"va {va:#x}: walk reached depth without a leaf")

    def map_id_of(self, va: int) -> int:
        """MapID field of the leaf PTE covering *va*, read without MMU
        side effects — no walk counter, no TLB, no fault hook.

        A partial migration (see ``PimAllocator.migrate_pages``) leaves
        an area whose pages carry *different* MapIDs; the PTEs are the
        only truthful record of the split, so audits and the adaptive
        controller read them through this instead of ``VmArea.map_id``.

        Raises:
            PageFaultError: when no leaf covers *va*.
        """
        indices = self._indices(va)
        node = self._root
        for level in range(N_LEVELS):
            entry = node.get(indices[level])
            if entry is None:
                raise PageFaultError(f"va {va:#x} not mapped (level {level})")
            if isinstance(entry, dict):
                node = entry
                continue
            return unpack_pte(entry).map_id
        raise PageFaultError(f"va {va:#x}: walk reached depth without a leaf")

    def corrupt_pte(self, va: int, xor_mask: int) -> int:
        """Fault-injection backdoor: XOR *xor_mask* into the leaf PTE
        covering *va* (e.g. flip a MapID bit, paper Fig. 11's worry).

        Returns the corrupted PTE value so campaigns can log it.

        Raises:
            PageFaultError: when no leaf covers *va*.
        """
        indices = self._indices(va)
        node = self._root
        for level in range(N_LEVELS):
            entry = node.get(indices[level])
            if entry is None:
                raise PageFaultError(f"va {va:#x} not mapped (level {level})")
            if isinstance(entry, dict):
                node = entry
                continue
            corrupted = entry ^ xor_mask
            node[indices[level]] = corrupted
            return corrupted
        raise PageFaultError(f"va {va:#x}: walk reached depth without a leaf")

    def translate(self, va: int) -> WalkResult:
        """Alias of :meth:`walk` (kept for API symmetry with the MMU)."""
        return self.walk(va)
