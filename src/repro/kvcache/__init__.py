"""Paged, MapID-aware KV-cache management (extension).

The paper treats the KV cache as an analytic byte count; a serving
system has to *place* it.  This package manages the decode-time KV
cache the way vLLM does — fixed-size token blocks, per-sequence block
tables, hash-based prefix sharing with copy-on-write forks — but
carves the blocks out of huge pages allocated through ``pimalloc``, so
every block's physical placement goes through the FACIL mapping
selector and PIM attention reads stay chunk-aligned:

* :mod:`repro.kvcache.block` — block handles, generation-checked
  references, and the error taxonomy;
* :mod:`repro.kvcache.pool` — the bounded :class:`BlockPool` with
  refcounted, journal-protected alloc/free (its own write-ahead
  :class:`~repro.core.journal.MapJournal` instance plus
  :func:`recover_pool` replay);
* :mod:`repro.kvcache.prefix` — the hash-chained :class:`PrefixTree`
  of cached full blocks with LRU leaf eviction;
* :mod:`repro.kvcache.manager` — :class:`KvCacheManager`, the
  sequence-facing API (admit, grow, fork, preempt, release) exposing
  KV pressure as a first-class signal;
* :mod:`repro.kvcache.scheduler` — the continuous-batching serving
  loop the runtime delegates to when ``ServingConfig.kv_blocks > 0``.

See docs/KVCACHE.md for the block/page/MapID layout and the eviction
and copy-on-write invariants.
"""

from repro.kvcache.block import (
    BlockRef,
    KvBlock,
    KvCacheError,
    KvPoolExhausted,
    SharedBlockWriteError,
    StaleBlockError,
)
from repro.kvcache.manager import KvCacheManager, SeqAdmission
from repro.kvcache.pool import KV_CRASH_SITES, BlockPool, KvSpec, recover_pool
from repro.kvcache.prefix import PrefixNode, PrefixTree

__all__ = [
    "BlockPool",
    "BlockRef",
    "KV_CRASH_SITES",
    "KvBlock",
    "KvCacheError",
    "KvCacheManager",
    "KvPoolExhausted",
    "KvSpec",
    "PrefixNode",
    "PrefixTree",
    "SeqAdmission",
    "SharedBlockWriteError",
    "StaleBlockError",
    "recover_pool",
]
