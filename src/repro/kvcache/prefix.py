"""Hash-chained prefix tree of cached full KV blocks.

vLLM-style automatic prefix caching: a *full* block of a conversation
is published under a chain key — a deterministic hash folding the
parent block's key with the block's content key — so a later turn (or
a fork) walking the same chain re-acquires the cached KV instead of
recomputing it.  Only full blocks are shared; partial tails stay
private to their sequence.

Nodes carry a ``seq_refs`` count of the sequences currently attached.
A node with ``seq_refs == 0`` is *cached but idle*: reclaimable.
Eviction is LRU over idle **leaves** — interior nodes are pinned by
their children, so chains evict tail-first and a shared prefix
survives as long as any extension of it is warm.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.kvcache.block import BlockRef

__all__ = ["PrefixNode", "PrefixTree", "chain_hash", "token_block_key"]

_HASH_MASK = (1 << 62) - 1


def chain_hash(parent_key: int, token_key: int) -> int:
    """Fold one block's content key into its parent's chain key.

    Deterministic across runs (no ``PYTHONHASHSEED`` dependence): plain
    integer arithmetic, FNV-style."""
    return ((parent_key * 1000003) ^ token_key) & _HASH_MASK


def token_block_key(conv_key: int, block_index: int) -> int:
    """Content key of block *block_index* of conversation *conv_key*.

    The simulation does not materialize token ids, so the conversation
    identity stands in for the token content: two sequences share KV
    exactly when they belong to the same conversation prefix."""
    return chain_hash((conv_key * 2654435761) & _HASH_MASK, block_index + 1)


class PrefixNode:
    """One cached full block in the chain tree."""

    __slots__ = ("key", "parent", "children", "ref", "seq_refs", "last_use_ns")

    def __init__(
        self, key: int, parent: Optional["PrefixNode"], ref: BlockRef
    ) -> None:
        self.key = key
        self.parent = parent
        self.children: Dict[int, "PrefixNode"] = {}
        self.ref = ref
        self.seq_refs = 0
        self.last_use_ns = 0.0

    @property
    def is_leaf(self) -> bool:
        return not self.children


class PrefixTree:
    """Chain-keyed tree of cached full blocks with LRU leaf eviction."""

    def __init__(self) -> None:
        # the root is a sentinel holding no block
        self.root = PrefixNode(key=0, parent=None, ref=BlockRef(-1, -1))
        self._n_nodes = 0

    def __len__(self) -> int:
        return self._n_nodes

    # -- lookup / insert ---------------------------------------------------

    def walk(self, token_keys: Iterable[int]) -> List[PrefixNode]:
        """Longest cached chain matching *token_keys*, root-first."""
        node = self.root
        hits: List[PrefixNode] = []
        for key in token_keys:
            child = node.children.get(key)
            if child is None:
                break
            hits.append(child)
            node = child
        return hits

    def insert(
        self,
        parent: Optional[PrefixNode],
        token_key: int,
        ref: BlockRef,
        now_ns: float,
    ) -> PrefixNode:
        """Publish a full block under *parent* (None = root).

        The caller transfers its block hold to the tree; the tree frees
        it at eviction time."""
        base = parent if parent is not None else self.root
        if token_key in base.children:
            raise ValueError(f"chain key {token_key} already cached")
        node = PrefixNode(key=token_key, parent=base, ref=ref)
        node.last_use_ns = now_ns
        base.children[token_key] = node
        self._n_nodes += 1
        return node

    def lookup(self, parent: Optional[PrefixNode], token_key: int) -> Optional[PrefixNode]:
        base = parent if parent is not None else self.root
        return base.children.get(token_key)

    # -- sequence attachment ----------------------------------------------

    def acquire(self, node: PrefixNode, now_ns: float) -> None:
        node.seq_refs += 1
        node.last_use_ns = now_ns

    def release(self, node: PrefixNode, now_ns: float) -> None:
        if node.seq_refs <= 0:
            raise ValueError(f"node {node.key} released more than acquired")
        node.seq_refs -= 1
        node.last_use_ns = now_ns

    # -- eviction ----------------------------------------------------------

    def _iter_nodes(self) -> Iterable[PrefixNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is not self.root:
                yield node
            stack.extend(node.children.values())

    def nodes(self) -> List[PrefixNode]:
        return list(self._iter_nodes())

    def idle_nodes(self) -> List[PrefixNode]:
        """Cached-but-unreferenced nodes: the reclaimable tail of the
        pool's occupancy (feeds the pressure signal)."""
        return [n for n in self._iter_nodes() if n.seq_refs == 0]

    def lru_leaf(self) -> Optional[PrefixNode]:
        """The least-recently-used idle leaf, or None."""
        best: Optional[PrefixNode] = None
        for node in self._iter_nodes():
            if node.seq_refs != 0 or not node.is_leaf:
                continue
            if best is None or (node.last_use_ns, node.key) < (
                best.last_use_ns,
                best.key,
            ):
                best = node
        return best

    def evict(self, node: PrefixNode) -> BlockRef:
        """Detach an idle leaf; returns the block hold for the caller to
        free."""
        if node.seq_refs != 0:
            raise ValueError(f"node {node.key} is attached to {node.seq_refs} seq(s)")
        if not node.is_leaf:
            raise ValueError(f"node {node.key} has children; evict tail-first")
        parent = node.parent
        if parent is None:
            raise ValueError("cannot evict the root sentinel")
        del parent.children[node.key]
        node.parent = None
        self._n_nodes -= 1
        return node.ref
