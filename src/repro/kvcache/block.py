"""KV-cache block handles and the error taxonomy.

A block is the unit of KV-cache allocation: ``block_tokens`` token
rows, each padded to the selector's leading dimension, so one block is
a whole number of PIM chunk rows.  Blocks never move; identity is the
``block_id`` and *incarnation* is the ``generation`` counter, bumped
every time the block returns to the free list.  A :class:`BlockRef`
names one incarnation — any access through a ref whose generation no
longer matches is a use-after-free and raises
:class:`StaleBlockError` instead of silently reading another
sequence's KV state.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BLOCK_FREE",
    "BLOCK_LIVE",
    "BlockRef",
    "KvBlock",
    "KvCacheError",
    "KvPoolExhausted",
    "SharedBlockWriteError",
    "StaleBlockError",
]

#: block states: FREE blocks sit on the pool's free list with a zero
#: refcount; LIVE blocks are held (refcount >= 1) by sequences, forks,
#: or the prefix tree.
BLOCK_FREE = "free"
BLOCK_LIVE = "live"


class KvCacheError(RuntimeError):
    """Base class for KV-cache invariant violations."""


class KvPoolExhausted(KvCacheError):
    """No free block and nothing evictable — the caller must shed load,
    defer, or preempt a sequence."""


class StaleBlockError(KvCacheError):
    """A block was accessed through a reference whose generation no
    longer matches: the block was freed (and possibly reallocated) under
    the holder — the paged-KV equivalent of a dangling pointer."""


class SharedBlockWriteError(KvCacheError):
    """A write targeted a block with refcount > 1.  Shared blocks are
    immutable; appends must copy-on-write first."""


@dataclass(frozen=True)
class BlockRef:
    """Capability to one block incarnation: ``(block_id, generation)``."""

    block_id: int
    generation: int


@dataclass
class KvBlock:
    """One fixed-size KV block and its placement inside the pool arena.

    ``page_index``/``page_offset`` locate the block inside the huge-page
    run backing the pool (all pages of one ``pimalloc`` arena share one
    MapID, so the placement is fully determined by the byte offset).
    """

    block_id: int
    page_index: int = 0
    page_offset: int = 0
    state: str = BLOCK_FREE
    ref_count: int = 0
    generation: int = 0
    #: committed tokens stored in this block (<= pool.block_tokens)
    tokens: int = 0
    last_use_ns: float = 0.0

    @property
    def ref(self) -> BlockRef:
        return BlockRef(self.block_id, self.generation)
