"""The sequence-facing KV-cache manager.

Each sequence owns a *block table*: a run of shared full blocks
(prefix-tree nodes, root-first) followed by private blocks, the last of
which may be a partial tail.  The manager enforces the paged-KV
invariants end to end:

* **admission** (:meth:`KvCacheManager.begin`) walks the prefix tree —
  cached blocks are acquired, only the remainder is allocated, and the
  caller prices prefill over ``recompute_tokens`` alone;
* **growth** (:meth:`ensure_capacity` + :meth:`commit`) appends decode
  tokens, evicting LRU idle leaves on demand and raising
  :class:`~repro.kvcache.block.KvPoolExhausted` when nothing is
  reclaimable — the scheduler's cue to preempt;
* **copy-on-write**: a fork shares every parent block by refcount; the
  first append to a shared tail copies it first
  (:class:`~repro.kvcache.block.SharedBlockWriteError` is the enforced
  backstop — shared blocks are never mutated in place);
* **publication**: full private blocks of a conversation are promoted
  into the tree at commit/release, so later turns (and recompute after
  preemption) hit the shared prefix;
* **pressure** (:meth:`pressure`) is the fraction of the pool that is
  *not* reclaimable — the first-class signal the serving runtime's
  admission and brown-out logic consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.bitfield import ceil_div
from repro.engine.metrics import percentile
from repro.kvcache.block import (
    BlockRef,
    KvBlock,
    KvCacheError,
    KvPoolExhausted,
    StaleBlockError,
)
from repro.kvcache.pool import BlockPool
from repro.kvcache.prefix import PrefixNode, PrefixTree, token_block_key

__all__ = ["KvCacheManager", "SeqAdmission"]


@dataclass(frozen=True)
class SeqAdmission:
    """Outcome of admitting one sequence to the KV cache."""

    seq_id: int
    total_tokens: int
    cached_tokens: int
    recompute_tokens: int
    new_blocks: int


class _Sequence:
    __slots__ = ("seq_id", "conv_key", "shared", "private", "tokens")

    def __init__(self, seq_id: int, conv_key: Optional[int]) -> None:
        self.seq_id = seq_id
        self.conv_key = conv_key
        self.shared: List[PrefixNode] = []
        self.private: List[BlockRef] = []
        self.tokens = 0  # committed tokens

    def capacity(self, block_tokens: int) -> int:
        return (len(self.shared) + len(self.private)) * block_tokens


class KvCacheManager:
    """Block tables, prefix sharing, CoW forks, eviction, preemption."""

    def __init__(self, pool: BlockPool, prefix_sharing: bool = True) -> None:
        self.pool = pool
        self.tree = PrefixTree()
        self.prefix_sharing = prefix_sharing
        self._seqs: Dict[int, _Sequence] = {}
        #: cumulative counters
        self.evictions = 0
        self.preemptions = 0
        self.cow_copies = 0
        self.forks = 0
        self.prefix_lookup_tokens = 0
        self.prefix_hit_tokens = 0

    @property
    def block_tokens(self) -> int:
        return self.pool.block_tokens

    @property
    def num_blocks(self) -> int:
        return self.pool.num_blocks

    def live_sequences(self) -> int:
        return len(self._seqs)

    def contains(self, seq_id: int) -> bool:
        """True while *seq_id* is admitted (not yet released/preempted)."""
        return seq_id in self._seqs

    # -- allocation with eviction -----------------------------------------

    def _alloc_block(self, now_ns: float) -> KvBlock:
        while True:
            try:
                return self.pool.alloc(now_ns)
            except KvPoolExhausted:
                leaf = self.tree.lru_leaf()
                if leaf is None:
                    raise
                self.pool.free(self.tree.evict(leaf), now_ns)
                self.evictions += 1

    # -- admission ---------------------------------------------------------

    def peek_cached(self, conv_key: Optional[int], total_tokens: int) -> int:
        """Cached-token count a :meth:`begin` would hit, without
        acquiring anything (read-only: for routing/pricing)."""
        if not self.prefix_sharing or conv_key is None:
            return 0
        B = self.block_tokens
        keys = [token_block_key(conv_key, i) for i in range(total_tokens // B)]
        return len(self.tree.walk(keys)) * B

    def begin(
        self,
        seq_id: int,
        conv_key: Optional[int],
        total_tokens: int,
        now_ns: float = 0.0,
    ) -> SeqAdmission:
        """Admit a sequence whose first *total_tokens* tokens (context +
        prefill) are about to be computed.  Cached prefix blocks are
        acquired; the remainder is allocated (evicting idle leaves on
        demand).  Raises :class:`KvPoolExhausted` with nothing held when
        the pool cannot cover the remainder."""
        if seq_id in self._seqs:
            raise ValueError(f"sequence {seq_id} already admitted")
        if total_tokens < 0:
            raise ValueError("total_tokens must be >= 0")
        B = self.block_tokens
        seq = _Sequence(seq_id, conv_key)
        hits: List[PrefixNode] = []
        if self.prefix_sharing and conv_key is not None and total_tokens >= B:
            keys = [token_block_key(conv_key, i) for i in range(total_tokens // B)]
            hits = self.tree.walk(keys)
        self.prefix_lookup_tokens += total_tokens
        cached = len(hits) * B
        self.prefix_hit_tokens += cached
        # acquire before allocating, so eviction cannot reclaim a hit
        for node in hits:
            self.tree.acquire(node, now_ns)
        need_blocks = ceil_div(total_tokens - cached, B) if total_tokens > cached else 0
        new_refs: List[BlockRef] = []
        try:
            for _ in range(need_blocks):
                new_refs.append(self._alloc_block(now_ns).ref)
        except KvPoolExhausted:
            for ref in new_refs:
                self.pool.free(ref, now_ns)
            for node in hits:
                self.tree.release(node, now_ns)
            raise
        seq.shared = hits
        seq.private = new_refs
        seq.tokens = cached
        self._seqs[seq_id] = seq
        return SeqAdmission(
            seq_id=seq_id,
            total_tokens=total_tokens,
            cached_tokens=cached,
            recompute_tokens=total_tokens - cached,
            new_blocks=len(new_refs),
        )

    # -- growth ------------------------------------------------------------

    def _make_tail_writable(self, seq: _Sequence, now_ns: float) -> None:
        """Copy-on-write: the block about to receive token ``seq.tokens``
        must be privately held before it is written."""
        B = self.block_tokens
        index = seq.tokens // B
        p = index - len(seq.shared)
        if p < 0 or p >= len(seq.private):
            return
        ref = seq.private[p]
        block = self.pool.get(ref)
        if block.ref_count == 1:
            return
        fresh = self._alloc_block(now_ns)
        fresh.tokens = block.tokens
        self.pool.free(ref, now_ns)
        seq.private[p] = fresh.ref
        self.cow_copies += 1

    def ensure_capacity(
        self, seq_id: int, n_tokens: int = 1, now_ns: float = 0.0
    ) -> None:
        """Guarantee room to commit *n_tokens* more tokens, allocating
        (and CoW-copying a shared tail) as needed.  Raises
        :class:`KvPoolExhausted` when the pool cannot provide — the
        sequence's existing blocks are untouched."""
        seq = self._seqs[seq_id]
        self._make_tail_writable(seq, now_ns)
        added: List[BlockRef] = []
        try:
            while seq.tokens + n_tokens > seq.capacity(self.block_tokens):
                ref = self._alloc_block(now_ns).ref
                seq.private.append(ref)
                added.append(ref)
        except KvPoolExhausted:
            for ref in added:
                seq.private.remove(ref)
                self.pool.free(ref, now_ns)
            raise

    def commit(self, seq_id: int, n_tokens: int, now_ns: float = 0.0) -> None:
        """Record *n_tokens* newly computed tokens (capacity must already
        exist); full private blocks of a conversation are published to
        the prefix tree."""
        seq = self._seqs[seq_id]
        B = self.block_tokens
        if seq.tokens + n_tokens > seq.capacity(B):
            raise KvCacheError(
                f"sequence {seq_id} commits past its capacity; call "
                "ensure_capacity first"
            )
        # the write guard: every block receiving tokens must be private
        start, end = seq.tokens, seq.tokens + n_tokens
        for index in range(start // B, ceil_div(end, B) if end else 0):
            p = index - len(seq.shared)
            if 0 <= p < len(seq.private):
                self.pool.check_writable(seq.private[p])
        seq.tokens = end
        for index in range(start // B, ceil_div(end, B) if end else 0):
            p = index - len(seq.shared)
            if 0 <= p < len(seq.private):
                block = self.pool.get(seq.private[p])
                block.tokens = min(B, seq.tokens - index * B)
                block.last_use_ns = now_ns
        self._promote(seq, now_ns)

    def _promote(self, seq: _Sequence, now_ns: float) -> None:
        """Publish full private blocks (in order) into the prefix tree,
        transferring the sequence's block hold to the tree."""
        if not self.prefix_sharing or seq.conv_key is None:
            return
        B = self.block_tokens
        while seq.private:
            index = len(seq.shared)
            if seq.tokens < (index + 1) * B:
                break  # not full yet
            ref = seq.private[0]
            block = self.pool.get(ref)
            if block.ref_count != 1:
                break  # CoW-shared with a fork: stays private
            parent = seq.shared[-1] if seq.shared else None
            key = token_block_key(seq.conv_key, index)
            if self.tree.lookup(parent, key) is not None:
                break  # another sequence published this block first
            node = self.tree.insert(parent, key, ref, now_ns)
            self.tree.acquire(node, now_ns)
            block.tokens = B
            seq.shared.append(node)
            seq.private.pop(0)

    # -- forks -------------------------------------------------------------

    def fork(self, parent_id: int, child_id: int, now_ns: float = 0.0) -> None:
        """Copy-on-write fork: the child shares every parent block; the
        first divergent append copies the shared tail."""
        if child_id in self._seqs:
            raise ValueError(f"sequence {child_id} already admitted")
        parent = self._seqs[parent_id]
        child = _Sequence(child_id, parent.conv_key)
        for node in parent.shared:
            self.tree.acquire(node, now_ns)
        for ref in parent.private:
            self.pool.share(ref)
        child.shared = list(parent.shared)
        child.private = list(parent.private)
        child.tokens = parent.tokens
        self._seqs[child_id] = child
        self.forks += 1

    # -- teardown ----------------------------------------------------------

    def release(self, seq_id: int, now_ns: float = 0.0, retain: bool = True) -> None:
        """Drop the sequence.  With ``retain`` (and sharing enabled) its
        full conversation blocks stay cached in the tree for later
        turns; partial tails are always freed."""
        seq = self._seqs.pop(seq_id)
        if retain:
            self._promote(seq, now_ns)
        for node in seq.shared:
            self.tree.release(node, now_ns)
        for ref in seq.private:
            self.pool.free(ref, now_ns)

    def preempt(self, seq_id: int, now_ns: float = 0.0) -> None:
        """Preempt-and-recompute: free the sequence's private blocks but
        keep its published prefix cached, so the recompute prefill hits
        the tree instead of starting from scratch."""
        self.release(seq_id, now_ns, retain=True)
        self.preemptions += 1

    # -- pressure and health ----------------------------------------------

    def pressure(self) -> float:
        """Fraction of the pool that is live and **not** reclaimable
        (idle cached leaves are reclaimable by eviction)."""
        idle = len(self.tree.idle_nodes())
        return (self.pool.used - idle) / self.pool.num_blocks

    def audit(self) -> List[str]:
        """Cross-layer invariant check; returns violations (empty = clean)."""
        violations = list(self.pool.audit())
        expected: Dict[int, int] = {}
        for node in self.tree.nodes():
            try:
                self.pool.get(node.ref)
            except StaleBlockError as exc:
                violations.append(f"prefix tree holds a stale ref: {exc}")
                continue
            expected[node.ref.block_id] = expected.get(node.ref.block_id, 0) + 1
        for seq in self._seqs.values():
            for ref in seq.private:
                try:
                    self.pool.get(ref)
                except StaleBlockError as exc:
                    violations.append(
                        f"sequence {seq.seq_id} holds a stale ref: {exc}"
                    )
                    continue
                expected[ref.block_id] = expected.get(ref.block_id, 0) + 1
            if seq.tokens > seq.capacity(self.block_tokens):
                violations.append(
                    f"sequence {seq.seq_id} committed past its capacity"
                )
        actual = self.pool.refcounts()
        if expected != actual:
            leaked = {
                bid: n for bid, n in actual.items() if expected.get(bid, 0) != n
            }
            violations.append(
                f"refcount reconciliation failed: live {leaked} vs "
                f"holders {({b: expected.get(b, 0) for b in leaked})}"
            )
        return violations

    @property
    def prefix_hit_rate(self) -> float:
        if self.prefix_lookup_tokens == 0:
            return 0.0
        return self.prefix_hit_tokens / self.prefix_lookup_tokens

    def publish_metrics(self, registry: object) -> None:
        """Publish pool/prefix counters into a telemetry registry
        (duck-typed ``repro.telemetry.MetricsRegistry`` — the KV layer
        never imports the telemetry package).  Reads :meth:`stats` only,
        so the serving hot path is untouched."""
        gauge = registry.gauge(  # type: ignore[attr-defined]
            "kv_manager_stat", "paged KV pool counters", labelnames=("stat",)
        )
        for key, value in self.stats().items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            gauge.set(float(value), stat=key)
        registry.gauge(  # type: ignore[attr-defined]
            "kv_pool_pressure", "fraction of KV blocks in use"
        ).set(self.pressure())

    def stats(self) -> Dict:
        """Machine-readable counters (the runtime folds these into its
        SLO report)."""
        samples = self.pool.occupancy_samples
        return {
            "num_blocks": self.pool.num_blocks,
            "block_tokens": self.block_tokens,
            "block_bytes": self.pool.block_bytes,
            "prefix_sharing": self.prefix_sharing,
            "used_blocks": self.pool.used,
            "cached_blocks": len(self.tree),
            "occupancy_peak": self.pool.peak_occupancy,
            "occupancy_p99": percentile([float(s) for s in samples], 99.0),
            "allocs": self.pool.allocs,
            "frees": self.pool.frees,
            "evictions": self.evictions,
            "preemptions": self.preemptions,
            "cow_copies": self.cow_copies,
            "forks": self.forks,
            "prefix_lookup_tokens": self.prefix_lookup_tokens,
            "prefix_hit_tokens": self.prefix_hit_tokens,
            "prefix_hit_rate": self.prefix_hit_rate,
        }
