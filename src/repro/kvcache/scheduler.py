"""Continuous-batching serving loop over a bounded KV block pool.

:class:`~repro.serving.runtime.ServingRuntime` delegates here when
``ServingConfig.kv_blocks > 0``.  The legacy loop prices whole requests
on two serialized timelines; this one makes the KV cache a first-class
resource:

* **admission** is gated on real block-pool state: a request whose
  solo KV demand exceeds the pool is rejected outright (it could never
  finish), oversized decode budgets are clipped to fit, and a pressure
  governor — a :class:`~repro.serving.breaker.BrownoutController` over
  :meth:`KvCacheManager.pressure` — degrades admissions while the pool
  runs hot;
* **prefill** is priced on ``recompute_tokens`` only: the prefix-tree
  hit for a conversation's earlier turns is subtracted before routing,
  so shared-prefix turns are measurably cheaper;
* **decode on PIM** runs as one continuous batch in *rounds* (one
  token per running sequence per round, round cost = sum of the
  per-sequence step costs); sequences join at round boundaries after
  their prefill and leave when their budget is spent.  Transient-fault
  pricing applies to prefills and SoC decodes; batched rounds are
  modeled fault-free (a per-round retry would stall every member);
* **preemption**: a sequence that cannot grow by one block when the
  pool is exhausted (and nothing is evictable) preempts the youngest
  running sequence — its blocks are freed, its published prefix stays
  cached, and it re-enters through a priority recompute queue whose
  prefill hits that cached prefix.

Every outcome is a standard :class:`RequestOutcome`; the KV-side
counters land in ``ServingReport.kv``.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.engine.policies import decode_on_pim
from repro.kvcache.block import KvPoolExhausted
from repro.kvcache.manager import KvCacheManager, SeqAdmission
from repro.kvcache.pool import BlockPool, KvSpec
from repro.serving.breaker import BrownoutController
from repro.serving.queue import AdmissionQueue
from repro.serving.workload import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.runtime import ServingReport, ServingRuntime

__all__ = ["run_kv_serving"]


class _Seq:
    """Mutable per-request serving state (one per admitted request)."""

    __slots__ = (
        "request",
        "degraded",
        "decode_budget",
        "admission",
        "wait_ns",
        "ttft_ns",
        "retries",
        "backoff_ns",
        "fallbacks",
        "ctx",
        "remaining",
        "served_tokens",
        "recomputes",
        "policy_served",
    )

    def __init__(self, request: Request, degraded: bool, decode_budget: int) -> None:
        self.request = request
        self.degraded = degraded
        self.decode_budget = decode_budget
        self.admission: Optional[SeqAdmission] = None
        self.wait_ns = 0.0
        self.ttft_ns = 0.0
        self.retries = 0
        self.backoff_ns = 0.0
        self.fallbacks: Tuple[str, ...] = ()
        self.ctx = 0  # tokens committed to KV (context so far)
        self.remaining = decode_budget
        self.served_tokens = 0
        self.recomputes = 0
        self.policy_served = ""

    @property
    def conv_key(self) -> Optional[int]:
        return self.request.conversation_id

    @property
    def prefill_total(self) -> int:
        """Tokens the next prefill must cover: the original prompt on
        first admission, the full regrown context on recompute."""
        return self.ctx if self.recomputes else self.request.prefill_tokens


def run_kv_serving(
    runtime: "ServingRuntime", requests: List[Request]
) -> "ServingReport":
    """Run *requests* through *runtime* with paged-KV continuous batching."""
    from repro.serving.runtime import (
        ABORTED,
        DROPPED,
        REJECTED,
        SERVED,
        SERVED_DEGRADED,
        TIMED_OUT,
        RequestOutcome,
        ServingReport,
    )

    cfg = runtime.config
    engine = runtime.engine
    tel = runtime.telemetry
    if tel is not None:
        tel.ensure_calibrated(engine)
    rng = random.Random(cfg.seed)
    B = cfg.block_tokens
    pool = BlockPool(cfg.kv_blocks, KvSpec(block_tokens=B))
    kv = KvCacheManager(pool, prefix_sharing=cfg.prefix_sharing)
    governor = BrownoutController(cfg.kv_pressure_high, cfg.kv_pressure_low)
    queue = AdmissionQueue(cfg.queue_capacity, cfg.shed_policy, cfg.degrade_watermark)
    free = {"soc": 0.0, "pim": 0.0}

    pending = sorted(requests, key=lambda r: (r.arrival_ns, r.req_id))
    next_arrival = 0
    seqs: Dict[int, _Seq] = {}  # req_id -> state, set at admission
    recompute: Deque[_Seq] = deque()
    running: List[_Seq] = []
    prefill_inflight: Optional[Tuple[float, _Seq, bool, int, float]] = None
    round_inflight: Optional[Tuple[float, List[_Seq]]] = None
    soc_jobs: List[Tuple[float, _Seq, bool, int, float]] = []
    outcomes: List[RequestOutcome] = []
    clock = 0.0
    last_event = 0.0
    stalled = False  # KV-exhausted with work in flight: wait for a completion
    kv_rejections = 0
    kv_clipped = 0
    kv_degraded = 0

    cap_tokens = cfg.kv_blocks * B

    def finish(seq: _Seq, status: str, now: float, ttlt: bool = False) -> None:
        outcomes.append(
            RequestOutcome(
                req_id=seq.request.req_id,
                tenant=seq.request.tenant,
                status=status,
                policy_requested=seq.request.policy,
                policy_served=seq.policy_served,
                wait_ns=seq.wait_ns,
                ttft_ns=seq.ttft_ns,
                ttlt_ns=(now - seq.request.arrival_ns) if ttlt else 0.0,
                decode_tokens_served=seq.served_tokens,
                retries=seq.retries,
                backoff_ns=seq.backoff_ns,
                fallbacks=seq.fallbacks,
            )
        )
        if tel is not None:
            # Reconstruct the phase boundaries from the per-sequence
            # timing fields the outcome already carries — the span tree
            # is derived data, never an extra clock.
            request = seq.request
            arrival = request.arrival_ns
            start = arrival + seq.wait_ns if seq.policy_served else None
            if seq.ttft_ns > 0.0:
                prefill_end: Optional[float] = arrival + seq.ttft_ns
            elif status == ABORTED and start is not None:
                prefill_end = now  # the failed prefill itself
            else:
                prefill_end = None
            decode_start = (
                prefill_end
                if prefill_end is not None and now > prefill_end
                else None
            )
            tel.trace_query(
                request.req_id,
                request.tenant,
                arrival,
                status,
                request.policy,
                start_ns=start,
                prefill_end_ns=prefill_end,
                decode_start_ns=decode_start,
                end_ns=now if decode_start is not None else None,
                prefill_resource=seq.policy_served,
                decode_resource=seq.policy_served,
                context_tokens=seq.ctx,
                decode_tokens=seq.served_tokens,
                retries=seq.retries,
                recomputes=seq.recomputes,
                kv_loop=True,
            )

    def admit(request: Request, now: float) -> None:
        nonlocal kv_rejections, kv_clipped, kv_degraded
        # a request that could never fit the pool alone is shed here,
        # before it burns queue capacity or compute
        if request.prefill_tokens + 1 > cap_tokens:
            kv_rejections += 1
            outcomes.append(
                RequestOutcome(
                    req_id=request.req_id,
                    tenant=request.tenant,
                    status=REJECTED,
                    policy_requested=request.policy,
                )
            )
            if tel is not None:
                tel.trace_query(
                    request.req_id, request.tenant, request.arrival_ns,
                    REJECTED, request.policy, kv_loop=True,
                    reason="kv-demand-exceeds-pool",
                )
            return
        verdict, evicted = queue.offer(request)
        if evicted is not None:
            seqs.pop(evicted.req_id, None)
            outcomes.append(
                RequestOutcome(
                    req_id=evicted.req_id,
                    tenant=evicted.tenant,
                    status=DROPPED,
                    policy_requested=evicted.policy,
                    wait_ns=request.arrival_ns - evicted.arrival_ns,
                )
            )
            if tel is not None:
                tel.trace_query(
                    evicted.req_id, evicted.tenant, evicted.arrival_ns,
                    DROPPED, evicted.policy,
                    start_ns=request.arrival_ns, kv_loop=True,
                )
        if verdict == "rejected":
            outcomes.append(
                RequestOutcome(
                    req_id=request.req_id,
                    tenant=request.tenant,
                    status=REJECTED,
                    policy_requested=request.policy,
                )
            )
            if tel is not None:
                tel.trace_query(
                    request.req_id, request.tenant, request.arrival_ns,
                    REJECTED, request.policy, kv_loop=True,
                )
            return
        degraded = verdict == "admitted-degraded"
        if governor.observe(kv.pressure(), now) and not degraded:
            degraded = True
            kv_degraded += 1
        budget = request.decode_tokens
        if degraded:
            budget = max(1, min(budget, cfg.degraded_decode_tokens))
        if request.prefill_tokens + budget > cap_tokens:
            budget = max(1, cap_tokens - request.prefill_tokens)
            kv_clipped += 1
        seqs[request.req_id] = _Seq(request, degraded, budget)

    def youngest_running(exclude: Optional[_Seq] = None) -> Optional[_Seq]:
        candidates = [s for s in running if s is not exclude]
        if not candidates:
            return None
        return max(candidates, key=lambda s: (s.request.arrival_ns, s.request.req_id))

    def preempt(seq: _Seq, now: float) -> None:
        nonlocal stalled
        kv.preempt(seq.request.req_id, now)
        running.remove(seq)
        seq.remaining = seq.decode_budget - seq.served_tokens
        seq.recomputes += 1
        recompute.append(seq)
        stalled = False  # preemption freed blocks: a deferred begin may fit now

    def start_round(now: float) -> bool:
        nonlocal round_inflight, last_event
        rstart = max(now, free["pim"])
        acted = False
        participants: List[_Seq] = []
        for seq in list(running):
            if seq not in running:
                continue  # preempted as a victim earlier in this pass
            while True:
                try:
                    kv.ensure_capacity(seq.request.req_id, 1, rstart)
                    participants.append(seq)
                    break
                except KvPoolExhausted:
                    victim = youngest_running()
                    if victim is None:
                        return acted
                    preempt(victim, rstart)
                    acted = True
                    if victim is seq:
                        break
        participants = [s for s in participants if s in running]
        if not participants:
            return acted
        round_ns = sum(engine.pim_decode_step_ns(s.ctx) for s in participants)
        end = rstart + round_ns
        free["pim"] = end
        last_event = max(last_event, end)
        # batched rounds are modeled fault-free; keep the breaker warm
        runtime.pim_breaker.record_success(end)
        round_inflight = (end, participants)
        return True

    def start_prefill(now: float) -> bool:
        """Try to put one prefill in flight (recompute queue first)."""
        nonlocal prefill_inflight, stalled, kv_rejections, clock, last_event
        if stalled:
            return False
        is_recompute = bool(recompute)
        if is_recompute:
            seq = recompute[0]
            request = seq.request
            est = max(now, request.arrival_ns)
        else:
            if not len(queue):
                return False
            request = queue.peek()
            if request is None:  # unreachable: guarded by len(queue)
                raise RuntimeError("admission queue non-empty but has no head")
            seq = seqs[request.req_id]
            est = max(now, request.arrival_ns)
            # arrivals strictly before the earliest possible service come
            # first (they may evict this head under drop-oldest)
            if (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_ns <= est
            ):
                return False
        total = seq.prefill_total
        cached = kv.peek_cached(seq.conv_key, total)
        priced = max(1, total - cached)
        route = runtime._route(
            request, est, max(0.0, free["pim"] - est), prefill_tokens=priced
        )
        start = max(est, free[route.prefill_resource])
        if (
            not is_recompute
            and next_arrival < len(pending)
            and pending[next_arrival].arrival_ns <= start
        ):
            return False

        if not is_recompute:
            # boundary 1: admission -> prefill
            if start > request.deadline_abs_ns:
                queue.pop(start)
                seq.wait_ns = start - request.arrival_ns
                seq.policy_served = route.policy
                seq.fallbacks = route.fallbacks
                finish(seq, TIMED_OUT, start)
                seqs.pop(request.req_id, None)
                clock = start
                last_event = max(last_event, start)
                return True

        try:
            seq.admission = kv.begin(request.req_id, seq.conv_key, total, start)
        except KvPoolExhausted:
            if prefill_inflight or round_inflight or soc_jobs or running:
                stalled = True  # a completion will free blocks; retry then
                return False
            # nothing in flight and still no room: the pool is too small
            # even after evicting every cached block — shed, do not hang
            if is_recompute:
                recompute.popleft()
            else:
                queue.pop(start)
            kv_rejections += 1
            seq.policy_served = route.policy
            finish(seq, REJECTED, start)
            seqs.pop(request.req_id, None)
            clock = start
            return True

        if not is_recompute:
            queue.pop(start)
            seq.wait_ns = start - request.arrival_ns
        else:
            recompute.popleft()
        seq.policy_served = route.policy
        seq.fallbacks = seq.fallbacks + tuple(
            f for f in route.fallbacks if f not in seq.fallbacks
        )
        clock = start
        end, ok, retries, backoff = runtime._run_phase(
            start, route.prefill_ns, route.prefill_component, rng
        )
        free[route.prefill_resource] = end
        last_event = max(last_event, end)
        seq.retries += retries
        seq.backoff_ns += backoff
        prefill_inflight = (end, seq, ok, decode_on_pim(route.policy) and route.pim_allowed, route.brownout_active)
        return True

    def on_prefill_end(now: float, seq: _Seq, ok: bool, pim_ok: bool, brownout: bool) -> None:
        nonlocal kv_clipped
        req_id = seq.request.req_id
        if not ok:
            kv.release(req_id, now)
            finish(seq, ABORTED, now)
            seqs.pop(req_id, None)
            return
        if seq.admission is None:
            raise RuntimeError(f"request {req_id} finished prefill unadmitted")
        kv.commit(req_id, seq.admission.recompute_tokens, now)
        seq.ctx = seq.prefill_total if seq.recomputes else seq.request.prefill_tokens
        first_token = seq.ttft_ns == 0.0
        if first_token:
            seq.ttft_ns = now - seq.request.arrival_ns
            # boundary 2: the first token must land inside the budget
            if now > seq.request.deadline_abs_ns:
                kv.release(req_id, now)
                finish(seq, TIMED_OUT, now)
                seqs.pop(req_id, None)
                return
        if seq.remaining <= 0:
            kv.release(req_id, now)
            finish(seq, SERVED_DEGRADED if seq.degraded else SERVED, now, ttlt=True)
            seqs.pop(req_id, None)
            return
        if pim_ok:
            running.append(seq)
            return
        # SoC decode: blocking, capacity reserved up front; when the pool
        # cannot cover the full budget, grow as far as it will go and
        # clip (demand pre-check guarantees a solo sequence fits)
        state = kv._seqs[req_id]
        fit = state.capacity(B) - state.tokens
        while fit < seq.remaining:
            try:
                kv.ensure_capacity(req_id, fit + B, now)
            except KvPoolExhausted:
                break
            fit = state.capacity(B) - state.tokens
        if fit <= 0:
            # cannot even grow one token: recompute later from the cache
            kv.preempt(req_id, now)
            seq.remaining = seq.decode_budget - seq.served_tokens
            seq.recomputes += 1
            recompute.append(seq)
            return
        if fit < seq.remaining:
            seq.remaining = fit
            kv_clipped += 1
        decode_ns = engine.decode_total_ns(seq.ctx, seq.remaining, False)
        start = max(now, free["soc"])
        end, ok_d, retries, backoff = runtime._run_phase(start, decode_ns, "soc", rng)
        free["soc"] = end
        seq.retries += retries
        seq.backoff_ns += backoff
        soc_jobs.append((end, seq, ok_d, retries, backoff))

    def on_round_end(now: float, participants: List[_Seq]) -> None:
        for seq in participants:
            req_id = seq.request.req_id
            kv.commit(req_id, 1, now)
            seq.ctx += 1
            seq.served_tokens += 1
            seq.remaining -= 1
            if seq.remaining <= 0:
                kv.release(req_id, now)
                running.remove(seq)
                finish(
                    seq, SERVED_DEGRADED if seq.degraded else SERVED, now, ttlt=True
                )
                seqs.pop(req_id, None)

    def on_soc_end(now: float, seq: _Seq, ok: bool) -> None:
        req_id = seq.request.req_id
        if not ok:
            kv.release(req_id, now)
            finish(seq, ABORTED, now)
            seqs.pop(req_id, None)
            return
        kv.commit(req_id, seq.remaining, now)
        seq.ctx += seq.remaining
        seq.served_tokens += seq.remaining
        seq.remaining = 0
        kv.release(req_id, now)
        finish(seq, SERVED_DEGRADED if seq.degraded else SERVED, now, ttlt=True)
        seqs.pop(req_id, None)

    # -- replay barriers ---------------------------------------------------

    def barrier_state() -> Dict[str, object]:
        """State components for one replay-diff barrier on the kv loop:
        RNG stream position, both resource timelines, pool occupancy +
        free-list order + journal cursor, and outcome progress."""
        state: Dict[str, object] = {
            "rng": rng.getstate(),
            "free_soc": free["soc"],
            "free_pim": free["pim"],
            "outcomes": len(outcomes),
            "pool": (pool.used, pool.allocs, pool.frees, tuple(pool._free)),
            "pool_journal": None if pool.journal is None
            else pool.journal.cursor(),
        }
        if tel is not None:
            state["metrics"] = tel.metrics.snapshot()
        return state

    bar = runtime.barriers

    # -- the event loop ----------------------------------------------------

    while True:
        if bar is not None:
            bar.observe(len(outcomes), barrier_state)
        # dispatch until quiescent: rounds and prefills may unblock each
        # other (a timed-out head pops, a preemption frees blocks, ...)
        progressed = True
        while progressed:
            progressed = False
            if round_inflight is None and running:
                progressed |= start_round(clock)
            if prefill_inflight is None:
                progressed |= start_prefill(clock)

        events: List[Tuple[float, int, str]] = []
        if next_arrival < len(pending):
            events.append((pending[next_arrival].arrival_ns, 0, "arrival"))
        if prefill_inflight is not None:
            events.append((prefill_inflight[0], 1, "prefill"))
        if round_inflight is not None:
            events.append((round_inflight[0], 2, "round"))
        if soc_jobs:
            events.append((min(j[0] for j in soc_jobs), 3, "soc"))
        if not events:
            if len(queue) or recompute:
                raise RuntimeError(
                    "scheduler wedged: waiting work with nothing in flight"
                )
            break

        t, _, kind = min(events)
        clock = max(clock, t)
        last_event = max(last_event, t)
        if kind == "arrival":
            admit(pending[next_arrival], t)
            next_arrival += 1
        elif kind == "prefill" and prefill_inflight is not None:
            _, seq, ok, pim_ok, brownout = prefill_inflight
            prefill_inflight = None
            stalled = False
            on_prefill_end(t, seq, ok, pim_ok, brownout)
        elif kind == "round" and round_inflight is not None:
            _, participants = round_inflight
            round_inflight = None
            stalled = False
            on_round_end(t, participants)
        else:  # soc
            soc_jobs.sort(key=lambda j: j[0])
            _, seq, ok_d, _, _ = soc_jobs.pop(0)
            stalled = False
            on_soc_end(t, seq, ok_d)

    end_ns = max(last_event, pending[-1].arrival_ns if pending else 0.0, clock)
    runtime.brownout.finish(end_ns)
    governor.finish(end_ns)
    if bar is not None:
        final = barrier_state()
        final["duration_ns"] = end_ns
        bar.snap("final", len(outcomes), final)
    audit_failures = kv.audit()
    outcomes.sort(key=lambda o: o.req_id)

    kv_stats = kv.stats()
    kv_stats.update(
        {
            "kv_rejections": kv_rejections,
            "kv_clipped": kv_clipped,
            "kv_degraded": kv_degraded,
            "prefill_tokens_saved": kv.prefix_hit_tokens,
            "pressure_windows": len(governor.intervals),
            "pressure_total_ms": sum(e - s for s, e in governor.intervals) / 1e6,
            "audit_failures": list(audit_failures),
        }
    )
    report = ServingReport(
        config=cfg,
        outcomes=outcomes,
        queue_stats=queue.stats,
        duration_ns=end_ns,
        breaker_transitions={
            name: [(t, a.value, b.value) for t, a, b in brk.transitions]
            for name, brk in runtime._breakers.items()
        },
        breaker_snapshots={
            name: brk.snapshot() for name, brk in runtime._breakers.items()
        },
        brownout_intervals=list(runtime.brownout.intervals),
        health=runtime.monitor.summary(),
        kv=kv_stats,
    )
    if tel is not None:
        kv.publish_metrics(tel.metrics)
        tel.record_serving_report(report)
        tel.tracer.close_all(end_ns)
    return report
