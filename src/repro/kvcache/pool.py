"""The bounded KV block pool: placement, refcounts, and journaling.

The pool owns ``num_blocks`` fixed-size blocks.  In *placed* mode (a
:class:`~repro.core.pimalloc.PimSystem` is attached) the blocks are
carved from one contiguous arena allocated through ``pimalloc`` — the
mapping selector picks the arena's MapID from the KV token-row shape,
so each block is a whole number of chunk rows and PIM attention sweeps
stay chunk-aligned (``analysis.mapverify.verify_kv_blocks`` proves
this; :meth:`BlockPool.verify` runs it on the live arena).  In
bookkeeping mode (no system) the pool models capacity only, which is
what the serving scheduler needs.

Alloc and free are **journaled** through the pool's own write-ahead
:class:`~repro.core.journal.MapJournal` instance (separate from the
allocator's journal, whose :func:`~repro.core.journal.recover` only
understands alloc/free/switch ops).  A crash between the free-list pop
and the activation, or between the deref and the reclaim, is replayed
by :func:`recover_pool`: interrupted allocations roll **back**,
interrupted frees roll **forward** — the same convention as the MapID
journal, so no block refcount is ever leaked (the crash campaign's
``kvcache`` case sweeps every :data:`KV_CRASH_SITES` checkpoint).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.core.journal import MapJournal, RecoveryAction, RecoveryReport
from repro.core.selector import MatrixConfig
from repro.kvcache.block import (
    BLOCK_FREE,
    BLOCK_LIVE,
    BlockRef,
    KvBlock,
    KvPoolExhausted,
    SharedBlockWriteError,
    StaleBlockError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pimalloc import PimSystem, PimTensor

__all__ = ["KV_CRASH_SITES", "BlockPool", "KvSpec", "recover_pool"]

#: journal checkpoints inside the pool's alloc/free paths; the crash
#: campaign's ``kvcache`` case cycles through all of them.
KV_CRASH_SITES = (
    "kvalloc:begin",
    "kvalloc:taken",
    "kvfree:begin",
    "kvfree:deref",
)


@dataclass(frozen=True)
class KvSpec:
    """Shape of one KV token row and the block granularity.

    ``kv_dim`` is the per-token K+V vector width in elements (for a
    transformer: ``2 * head_dim * n_kv_heads`` folded across the layer
    slab the pool serves).  One block stores ``block_tokens`` rows.
    """

    block_tokens: int = 16
    kv_dim: int = 1024
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.block_tokens <= 0:
            raise ValueError("block_tokens must be positive")
        if self.kv_dim <= 0:
            raise ValueError("kv_dim must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    def arena_matrix(self, num_blocks: int) -> MatrixConfig:
        """The pool arena as pimalloc sees it: one token row per matrix
        row, so the selector's padded leading dimension is the placed
        bytes-per-token."""
        return MatrixConfig(
            rows=num_blocks * self.block_tokens,
            cols=self.kv_dim,
            dtype_bytes=self.dtype_bytes,
        )

    @classmethod
    def for_model(cls, model, block_tokens: int = 16) -> "KvSpec":
        """Derive the token-row shape from an :class:`LlmConfig`."""
        return cls(
            block_tokens=block_tokens,
            kv_dim=2 * model.kv_dim,
            dtype_bytes=model.dtype_bytes,
        )


class BlockPool:
    """Bounded pool of KV blocks with refcounted, journaled alloc/free."""

    def __init__(
        self,
        num_blocks: int,
        spec: Optional[KvSpec] = None,
        system: Optional["PimSystem"] = None,
        journal: Optional[MapJournal] = None,
    ) -> None:
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        self.spec = spec if spec is not None else KvSpec()
        self.num_blocks = num_blocks
        self.block_tokens = self.spec.block_tokens
        self.journal = journal
        self.system = system
        self.arena: Optional["PimTensor"] = None
        self.block_bytes = self.spec.block_tokens * self.spec.kv_dim * self.spec.dtype_bytes
        if system is not None:
            self.arena = system.pimalloc(self.spec.arena_matrix(num_blocks))
            self.block_bytes = (
                self.spec.block_tokens * self.arena.selection.padded_row_bytes
            )
        page_bytes = system.huge_page_bytes if system is not None else self.block_bytes
        self.blocks: List[KvBlock] = [
            KvBlock(
                block_id=i,
                page_index=(i * self.block_bytes) // page_bytes,
                page_offset=(i * self.block_bytes) % page_bytes,
            )
            for i in range(num_blocks)
        ]
        self._free: Deque[int] = deque(range(num_blocks))
        #: cumulative counters
        self.allocs = 0
        self.frees = 0
        #: occupancy (used blocks) sampled at every alloc/free
        self.occupancy_samples: List[int] = [0]
        self.peak_occupancy = 0

    # -- journal plumbing --------------------------------------------------

    def _checkpoint(self, site: str) -> None:
        if self.journal is not None:
            self.journal.checkpoint(site)

    # -- queries -----------------------------------------------------------

    @property
    def used(self) -> int:
        return self.num_blocks - len(self._free)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def get(self, ref: BlockRef) -> KvBlock:
        """Resolve *ref*, enforcing the generation check — the read-side
        guarantee that no sequence ever observes a freed block."""
        block = self.blocks[ref.block_id]
        if block.generation != ref.generation or block.state != BLOCK_LIVE:
            raise StaleBlockError(
                f"block {ref.block_id} gen {ref.generation} was freed "
                f"(now gen {block.generation}, state {block.state})"
            )
        return block

    def check_writable(self, ref: BlockRef) -> KvBlock:
        """Resolve *ref* for a write: shared blocks are immutable."""
        block = self.get(ref)
        if block.ref_count > 1:
            raise SharedBlockWriteError(
                f"block {ref.block_id} is shared by {block.ref_count} "
                "holders; copy-on-write first"
            )
        return block

    def block_va(self, ref: BlockRef) -> int:
        """Virtual address of the block inside the placed arena."""
        if self.arena is None:
            raise ValueError("pool has no placed arena (bookkeeping mode)")
        self.get(ref)
        return self.arena.va + ref.block_id * self.block_bytes

    def _sample(self) -> None:
        used = self.used
        self.occupancy_samples.append(used)
        if used > self.peak_occupancy:
            self.peak_occupancy = used

    # -- alloc / free ------------------------------------------------------

    def alloc(self, now_ns: float = 0.0) -> KvBlock:
        """Take one block off the free list (journaled)."""
        if not self._free:
            raise KvPoolExhausted(
                f"all {self.num_blocks} KV blocks in use and none evictable"
            )
        txn = None
        if self.journal is not None:
            txn = self.journal.begin("kvalloc")
        self._checkpoint("kvalloc:begin")
        block_id = self._free.popleft()
        if txn is not None and self.journal is not None:
            self.journal.step(txn, "taken", block_id=block_id)
        self._checkpoint("kvalloc:taken")
        block = self.blocks[block_id]
        block.state = BLOCK_LIVE
        block.ref_count = 1
        block.tokens = 0
        block.last_use_ns = now_ns
        if txn is not None and self.journal is not None:
            self.journal.step(txn, "activated", block_id=block_id)
            self.journal.commit(txn)
        self.allocs += 1
        self._sample()
        return block

    def share(self, ref: BlockRef) -> KvBlock:
        """Add one holder (copy-on-write fork or prefix-tree insert)."""
        block = self.get(ref)
        # single atomic increment on a live block: a crash before it is
        # a crash before share() ran; there is no intermediate state
        block.ref_count += 1  # lint: waive[JD001]
        return block

    def free(self, ref: BlockRef, now_ns: float = 0.0) -> bool:
        """Drop one holder; reclaim at refcount zero (journaled).

        Returns True when the block actually returned to the free list.
        """
        block = self.get(ref)
        txn = None
        if self.journal is not None:
            txn = self.journal.begin(
                "kvfree", block_id=ref.block_id, generation=ref.generation
            )
        self._checkpoint("kvfree:begin")
        block.ref_count -= 1
        block.last_use_ns = now_ns
        if txn is not None and self.journal is not None:
            self.journal.step(txn, "deref", remaining=block.ref_count)
        self._checkpoint("kvfree:deref")
        reclaimed = False
        if block.ref_count == 0:
            self._reclaim(block)
            reclaimed = True
            if txn is not None and self.journal is not None:
                self.journal.step(txn, "reclaimed")
        if txn is not None and self.journal is not None:
            self.journal.commit(txn)
        self.frees += 1
        self._sample()
        return reclaimed

    def _reclaim(self, block: KvBlock) -> None:
        block.state = BLOCK_FREE
        block.generation += 1  # invalidate every outstanding ref
        block.tokens = 0
        self._free.append(block.block_id)

    # -- health ------------------------------------------------------------

    def audit(self) -> List[str]:
        """Internal-consistency violations (empty list = clean)."""
        violations: List[str] = []
        free_ids = list(self._free)
        if len(set(free_ids)) != len(free_ids):
            violations.append("free list holds duplicate block ids")
        for block_id in free_ids:
            block = self.blocks[block_id]
            if block.state != BLOCK_FREE or block.ref_count != 0:
                violations.append(
                    f"block {block_id} on free list but state={block.state} "
                    f"ref_count={block.ref_count}"
                )
        free_set = set(free_ids)
        for block in self.blocks:
            if block.block_id not in free_set:
                if block.state != BLOCK_LIVE or block.ref_count <= 0:
                    violations.append(
                        f"block {block.block_id} off the free list but "
                        f"state={block.state} ref_count={block.ref_count}"
                    )
        if self.used + len(self._free) != self.num_blocks:
            violations.append("used + free != num_blocks")
        if self.peak_occupancy > self.num_blocks:
            violations.append(
                f"peak occupancy {self.peak_occupancy} exceeds pool size "
                f"{self.num_blocks}"
            )
        return violations

    def refcounts(self) -> Dict[int, int]:
        """Live refcounts by block id (for audit reconciliation)."""
        return {
            b.block_id: b.ref_count for b in self.blocks if b.state == BLOCK_LIVE
        }

    def verify(self) -> List:
        """Run the MV010/MV011 KV placement rules on the placed arena."""
        if self.arena is None or self.system is None:
            return []
        from repro.analysis.mapverify import verify_kv_blocks

        return verify_kv_blocks(
            self.arena.mapping,
            self.system.org,
            self.system.pim,
            self.block_bytes,
            n_blocks=min(self.num_blocks, 2),
        )


def recover_pool(pool: BlockPool) -> RecoveryReport:
    """Replay the pool's journal after a (simulated) crash.

    Interrupted allocations roll back (the caller never received the
    ref, so a live-but-unowned block would be a leaked refcount);
    interrupted frees roll forward (the holder already dropped its
    ref).  Idempotent, like :func:`repro.core.journal.recover`.
    """
    journal = pool.journal
    if journal is None:
        raise ValueError("pool has no journal attached")
    report = RecoveryReport()
    for txn in reversed(journal.uncommitted()):
        detail: Dict[str, int] = {}
        if txn.op == "kvalloc":
            taken = txn.find_step("taken")
            if taken is not None:
                block = pool.blocks[taken["block_id"]]
                if txn.find_step("activated") is not None:
                    # fully activated but the ref never escaped: undo
                    block.ref_count = 0
                pool._reclaim(block)
                # appendleft keeps the pre-crash allocation order
                pool._free.remove(block.block_id)
                pool._free.appendleft(block.block_id)
                detail["returned_block"] = block.block_id
            resolution = "rolled-back" if detail else "no-op"
        elif txn.op == "kvfree":
            block = pool.blocks[txn.intent["block_id"]]
            deref = txn.find_step("deref")
            if deref is None:
                # crash before the deref: redo it
                block.ref_count -= 1
                detail["deref_block"] = block.block_id
                remaining = block.ref_count
            else:
                remaining = deref["remaining"]
            if remaining == 0 and txn.find_step("reclaimed") is None:
                if block.state == BLOCK_LIVE:
                    pool._reclaim(block)
                    detail["reclaimed_block"] = block.block_id
            resolution = "rolled-forward" if detail else "no-op"
        else:
            raise ValueError(f"KV journal holds unknown op {txn.op!r}")
        journal.commit(txn)
        report.actions.append(
            RecoveryAction(
                txn_id=txn.txn_id, op=txn.op, resolution=resolution, detail=detail
            )
        )
    pool._sample()
    return report
