"""Command-line interface for the FACIL reproduction.

Subcommands::

    repro-facil platforms                         # Table II catalog
    repro-facil mapping  --rows 4096 --cols 4096  # selector decision
    repro-facil query    --policy facil --prefill 24 --decode 64
    repro-facil sweep                             # Fig. 13 TTFT series
    repro-facil dataset  --dataset alpaca-like    # Figs. 15/16 trace
    repro-facil chaos    --flip-rate 2.0 --seed 7 # reliability campaign
    repro-facil serve    --duration-ms 60000      # serving runtime + SLO report
    repro-facil fleet    --devices 4 --kills 40   # fleet run with device losses
    repro-facil trace    --trace-out trace.json   # traced run + metrics snapshot
    repro-facil dse      --workers 4              # design-space sweep + Pareto report
    repro-facil analyze  --format json            # static analysis gate

``chaos``, ``serve``, and ``fleet`` write machine-readable JSON reports
under ``benchmarks/results/`` and exit nonzero when any query went
unserved (for ``fleet``: when any request was lost or any post-recovery
audit found damage).

All commands take ``--platform`` (default ``jetson-agx-orin``).  Install
exposes the ``repro-facil`` script; the module also runs directly as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.selector import MatrixConfig, build_selected_mapping, select_mapping
from repro.engine.metrics import geomean
from repro.engine.policies import POLICIES, InferenceEngine
from repro.engine.runner import dataset_eval, ttft_speedup_sweep
from repro.llm.datasets import ALPACA_LIKE, HUMANEVAL_AUTOCOMPLETE_LIKE
from repro.llm.model_config import model_by_name
from repro.platforms.specs import ALL_PLATFORMS, PlatformSpec

_DATASETS = {
    ALPACA_LIKE.name: ALPACA_LIKE,
    HUMANEVAL_AUTOCOMPLETE_LIKE.name: HUMANEVAL_AUTOCOMPLETE_LIKE,
}


# -- argparse numeric validators ------------------------------------------
# Bad counts and rates should die at the parser with a flag-specific
# message, not hundreds of frames deep in the event loop.

def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _nonneg_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer (got {value})"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive (got {value})")
    return value


def _nonneg_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative (got {value})"
        )
    return value


def _unit_interval(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1] (got {value})")
    return value


def _open_unit_interval(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError(f"must be in (0, 1) (got {value})")
    return value


def _platform_by_name(name: str) -> PlatformSpec:
    for platform in ALL_PLATFORMS:
        if platform.name == name:
            return platform
    known = ", ".join(p.name for p in ALL_PLATFORMS)
    raise SystemExit(f"unknown platform {name!r}; known: {known}")


def _cmd_platforms(args: argparse.Namespace) -> None:
    print(f"{'platform':22s} {'processor':28s} {'TFLOPS':>7s} {'BW GB/s':>8s} "
          f"{'mem':>6s}  model")
    for p in ALL_PLATFORMS:
        org = p.dram.org
        print(
            f"{p.name:22s} {p.soc.name:28s} {p.soc.peak_tflops_fp16:>7.1f} "
            f"{p.peak_bw_gbps:>8.1f} {org.capacity_bytes >> 30:>4d}GB  "
            f"{p.model_name}"
        )


def _cmd_mapping(args: argparse.Namespace) -> None:
    platform = _platform_by_name(args.platform)
    matrix = MatrixConfig(rows=args.rows, cols=args.cols, dtype_bytes=args.dtype_bytes)
    selection = select_mapping(matrix, platform.dram.org, platform.pim)
    mapping = build_selected_mapping(matrix, platform.dram.org, platform.pim)
    print(f"matrix          : {matrix.rows} x {matrix.cols} "
          f"({matrix.dtype_bytes} B elements)")
    print(f"platform        : {platform.name} "
          f"({platform.dram.org.total_banks} PIM PUs)")
    print(f"selected MapID  : {selection.map_id}")
    print(f"partitioned     : {selection.needs_partition} "
          f"({selection.partitions_per_row} PUs per row)")
    print(f"leading dim     : {selection.padded_row_bytes // matrix.dtype_bytes} "
          "elements")
    print(f"bit layout      : {mapping.describe()}  (MSB..LSB)")


def _cmd_query(args: argparse.Namespace) -> None:
    platform = _platform_by_name(args.platform)
    engine = InferenceEngine(platform)
    print(f"{platform.name} / {engine.model.name}, prefill={args.prefill}, "
          f"decode={args.decode}\n")
    policies = [args.policy] if args.policy else list(POLICIES)
    print(f"{'policy':16s} {'TTFT':>10s} {'TTLT':>10s}  breakdown")
    for policy in policies:
        q = engine.run_query(policy, args.prefill, args.decode)
        parts = ", ".join(
            f"{k}={v / 1e6:.1f}ms" for k, v in q.breakdown.items()
        )
        print(f"{policy:16s} {q.ttft_ms:>8.1f}ms {q.ttlt_ms:>8.1f}ms  {parts}")


def _cmd_sweep(args: argparse.Namespace) -> None:
    platform = _platform_by_name(args.platform)
    engine = InferenceEngine(platform)
    lengths = tuple(args.prefill_lengths)
    points = ttft_speedup_sweep(engine, lengths, decode_len=args.decode)
    print(f"TTFT speedup of FACIL over hybrid-static on {platform.name}:")
    for point in points:
        print(f"  prefill {point.prefill:>4d}: {point.ttft_speedup:.2f}x "
              f"(facil {point.facil.ttft_ms:.1f}ms, "
              f"baseline {point.baseline.ttft_ms:.1f}ms)")
    print(f"  geomean: {geomean([p.ttft_speedup for p in points]):.2f}x")


def _cmd_dataset(args: argparse.Namespace) -> None:
    platform = _platform_by_name(args.platform)
    engine = InferenceEngine(platform)
    spec = _DATASETS.get(args.dataset)
    if spec is None:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; known: {sorted(_DATASETS)}"
        )
    result = dataset_eval(engine, spec, n_queries=args.queries, seed=args.seed)
    print(f"{spec.name} x {result.n_queries} queries on {platform.name}:")
    print(f"{'policy':16s} {'mean TTFT':>10s} {'mean TTLT':>10s}")
    for policy in POLICIES:
        print(f"{policy:16s} {result.mean_ttft_ns(policy)/1e6:>8.1f}ms "
              f"{result.mean_ttlt_ns(policy)/1e6:>8.1f}ms")
    print(
        f"\nFACIL vs hybrid-static : "
        f"{result.ttft_speedup_over('hybrid-static'):.2f}x TTFT, "
        f"{result.ttlt_speedup_over('hybrid-static'):.2f}x TTLT"
    )
    print(
        f"FACIL vs hybrid-dynamic: "
        f"{result.ttft_speedup_over('hybrid-dynamic'):.2f}x TTFT"
    )


def _results_path(name: str) -> "Path":
    from pathlib import Path

    results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    results.mkdir(parents=True, exist_ok=True)
    return results / name


def _cmd_chaos(args: argparse.Namespace) -> None:
    # Lazy import: the reliability layer is optional machinery the other
    # subcommands never need.
    import json

    from repro.reliability import CampaignSpec, ResilientEngine, run_campaign

    platform = _platform_by_name(args.platform)
    engine = ResilientEngine(InferenceEngine(platform))
    spec = CampaignSpec(
        seed=args.seed,
        n_queries=args.queries,
        policy=args.policy,
        prefill_len=args.prefill,
        decode_len=args.decode,
        flip_rate=args.flip_rate,
        double_flip_rate=args.double_flip_rate,
        pte_corrupt_rate=args.pte_corrupt_rate,
        mapping_corrupt_rate=args.mapping_corrupt_rate,
        stale_tlb_rate=args.stale_tlb_rate,
        alloc_fail_rate=args.alloc_fail_rate,
        pu_fail_at=args.pu_fail_at,
    )
    report = run_campaign(spec, engine=engine)
    print(f"platform        : {platform.name} / {engine.engine.model.name}")
    print(report.render())
    if args.metrics_out:
        report.metrics.write_json(args.metrics_out)
        print(f"metrics written to {args.metrics_out} "
              f"({len(report.metrics)} families)")
    payload = {"campaign": report.to_dict()}
    if (
        args.crash_injections
        or args.kv_crash_injections
        or args.migration_crash_injections
    ):
        from repro.serving.crashes import run_crash_campaign

        crash = run_crash_campaign(
            n_injections=args.crash_injections,
            seed=args.seed,
            kv_injections=args.kv_crash_injections,
            migration_injections=args.migration_crash_injections,
        )
        print()
        print(crash.render())
        payload["crash"] = crash.to_dict()
    out = args.out if args.out else _results_path(f"chaos_seed{args.seed}.json")
    with open(out, "w") as handle:
        handle.write(json.dumps(payload, indent=2) + "\n")
    print(f"\nreport written to {out}")
    if report.silent:
        raise SystemExit(f"{report.silent} silent corruption(s) escaped")
    if report.aborted:
        raise SystemExit(f"{report.aborted} query(ies) went unserved")
    if "crash" in payload:
        # Exit nonzero on ANY post-recovery audit finding — a campaign
        # whose aggregate counters look clean can still carry individual
        # failures (e.g. an armed crash that never fired), and silence
        # here would let a broken sweep pass CI.
        crash_failures = payload["crash"]["failures"]
        if not payload["crash"]["ok"]:
            raise SystemExit("crash-recovery campaign failed its audit")
        if crash_failures:
            raise SystemExit(
                f"crash-recovery campaign logged {len(crash_failures)} "
                f"finding(s): {crash_failures[0]}"
            )


def _build_workload_spec(args: argparse.Namespace):
    """Resolve --workload into a repro.workloads spec (None for chat)."""
    if args.workload == "chat":
        return None
    if args.kv_blocks:
        raise SystemExit(
            "--workload loops manage their own placement state; "
            "drop --kv-blocks"
        )
    if args.adaptive != "off":
        raise SystemExit("--workload requires --adaptive off")
    from repro.workloads import (
        CoResidencySpec,
        ExpertPlacementSpec,
        SpeculativeSpec,
    )

    try:
        if args.workload == "speculative":
            return SpeculativeSpec(
                draft_model=args.draft_model,
                gamma=args.gamma,
                acceptance_rate=args.acceptance_rate,
            )
        if args.workload == "moe":
            return ExpertPlacementSpec(
                n_experts=args.experts,
                experts_per_token=args.experts_per_token,
                resident_experts=args.resident_experts,
            )
        return CoResidencySpec(
            secondary_model=args.secondary_model,
            secondary_share=args.secondary_share,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _cmd_serve(args: argparse.Namespace) -> None:
    # Lazy import: the serving layer pulls in the reliability stack.
    from repro.serving import (
        ServingConfig,
        ServingRuntime,
        TenantSpec,
        poisson_workload,
        sustainable_qps,
    )

    platform = _platform_by_name(args.platform)
    engine = InferenceEngine(platform)
    spec = _DATASETS.get(args.dataset)
    if spec is None:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; known: {sorted(_DATASETS)}"
        )
    if args.adaptive != "off" and args.kv_blocks:
        raise SystemExit(
            "--adaptive requires the legacy scheduler (drop --kv-blocks)"
        )
    workload_spec = _build_workload_spec(args)
    probe = TenantSpec(
        name="probe", dataset=spec, policy=args.policy,
        deadline_ms=args.deadline_ms,
    )
    capacity_qps = sustainable_qps(engine, probe, seed=args.seed)
    qps = args.qps if args.qps is not None else args.load * capacity_qps
    tenants = []
    if args.workload == "coresident":
        # split the offered rate between the two co-resident models
        share = workload_spec.secondary_share
        tenants.append(TenantSpec(
            name=spec.name, dataset=spec, policy=args.policy,
            qps=qps * (1.0 - share), deadline_ms=args.deadline_ms,
            mean_turns=args.mean_turns, think_time_ms=args.think_time_ms,
        ))
        tenants.append(TenantSpec(
            name=workload_spec.secondary_tenant, dataset=spec,
            policy=args.policy, qps=qps * share,
            deadline_ms=args.deadline_ms, mean_turns=args.mean_turns,
            think_time_ms=args.think_time_ms,
        ))
    else:
        tenants.append(TenantSpec(
            name=spec.name, dataset=spec, policy=args.policy, qps=qps,
            deadline_ms=args.deadline_ms, mean_turns=args.mean_turns,
            think_time_ms=args.think_time_ms,
        ))
    requests = poisson_workload(tenants, duration_ms=args.duration_ms, seed=args.seed)
    # Brown-out watermarks scale with the platform: saturation means a
    # few mean decode phases queued, whatever those cost here.
    import random as _random

    from repro.engine.policies import decode_on_pim

    probe_rng = _random.Random(args.seed)
    on_pim = decode_on_pim(args.policy)
    decode_works = [
        engine.decode_total_ns(t.prefill_tokens, t.decode_tokens, on_pim)
        for t in (spec.sample_one(probe_rng) for _ in range(50))
    ]
    mean_decode_ns = sum(decode_works) / len(decode_works)
    config = ServingConfig(
        seed=args.seed,
        queue_capacity=args.capacity,
        shed_policy=args.shed,
        max_retries=args.max_retries,
        jitter=args.jitter,
        pim_fault_rate=args.pim_fault_rate,
        mapping_fault_rate=args.mapping_fault_rate,
        brownout_high_ns=4.0 * mean_decode_ns,
        brownout_low_ns=1.0 * mean_decode_ns,
        kv_blocks=args.kv_blocks,
        block_tokens=args.block_tokens,
        prefix_sharing=args.prefix_sharing,
        adaptive=args.adaptive,
        adaptive_pinned_map_id=args.adaptive_pin,
    )
    telemetry = None
    if args.trace_out or args.metrics_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(sample_every=args.trace_sample)
    replay = None
    if args.replay_check:
        if telemetry is not None:
            raise SystemExit(
                "--replay-check runs the workload twice; drop "
                "--trace-out/--metrics-out"
            )
        from repro.analysis.replay import replay_diff, state_hash

        def _run_once(recorder):
            return ServingRuntime(
                engine, config, barriers=recorder, workload=workload_spec
            ).run(list(requests))

        replay = replay_diff(
            _run_once,
            every=args.replay_barrier,
            final_hash=lambda r: state_hash(r.to_json()),
        )
        report = replay.result
    else:
        report = ServingRuntime(
            engine, config, telemetry=telemetry, workload=workload_spec
        ).run(requests)
    print(f"platform        : {platform.name} / {engine.model.name}")
    print(f"sustainable     : {capacity_qps:.2f} qps; offered {qps:.2f} qps "
          f"({qps / capacity_qps:.2f}x)")
    print(report.render())
    out = args.out if args.out else _results_path(f"serve_seed{args.seed}.json")
    with open(out, "w") as handle:
        handle.write(report.to_json() + "\n")
    print(f"\nreport written to {out}")
    if telemetry is not None:
        _write_telemetry(telemetry, args.trace_out, args.metrics_out)
    if replay is not None:
        print(replay.render())
        if not replay.ok:
            raise SystemExit(
                "replay-diff found nondeterminism: two runs at seed "
                f"{args.seed} diverged"
            )
    if report.unserved:
        raise SystemExit(
            f"{report.unserved} admitted query(ies) went unserved "
            f"({report.timed_out} timed-out, {report.aborted} aborted)"
        )


def _write_telemetry(telemetry, trace_out, metrics_out) -> None:
    telemetry.write(trace_out, metrics_out)
    stats = telemetry.tracer.stats()
    if trace_out:
        print(f"trace written to {trace_out} ({stats['spans']} spans, "
              f"{stats['traces_sampled']}/{stats['traces_seen']} "
              f"queries sampled)")
    if metrics_out:
        print(f"metrics written to {metrics_out} "
              f"({len(telemetry.metrics)} families)")
    for finding in telemetry.findings:
        print(f"advisor {finding.rule_id} [{finding.level}] {finding.message}")


def _cmd_trace(args: argparse.Namespace) -> None:
    # Lazy imports: the serving and telemetry planes are only needed here.
    from repro.serving import (
        ServingConfig,
        ServingRuntime,
        TenantSpec,
        poisson_workload,
        sustainable_qps,
    )
    from repro.telemetry import Telemetry

    platform = _platform_by_name(args.platform)
    engine = InferenceEngine(platform)
    spec = _DATASETS.get(args.dataset)
    if spec is None:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; known: {sorted(_DATASETS)}"
        )
    tenant = TenantSpec(
        name=spec.name, dataset=spec, policy=args.policy,
        deadline_ms=args.deadline_ms,
    )
    qps = args.load * sustainable_qps(engine, tenant, seed=args.seed)
    tenant = TenantSpec(
        name=spec.name, dataset=spec, policy=args.policy, qps=qps,
        deadline_ms=args.deadline_ms,
    )
    requests = poisson_workload(
        [tenant], duration_ms=args.duration_ms, seed=args.seed
    )
    config = ServingConfig(
        seed=args.seed,
        queue_capacity=args.capacity,
        shed_policy="degrade",
        kv_blocks=args.kv_blocks,
        block_tokens=args.block_tokens,
    )
    telemetry = Telemetry(sample_every=args.sample_every)
    report = ServingRuntime(engine, config, telemetry=telemetry).run(requests)
    print(f"platform        : {platform.name} / {engine.model.name}")
    print(f"traced run      : {len(requests)} requests over "
          f"{args.duration_ms:.0f} ms at {qps:.2f} qps")
    by_layer = telemetry.tracer.spans_by_layer()
    print("spans by layer  : "
          + (", ".join(f"{k}={v}" for k, v in by_layer.items()) or "none"))
    print(f"goodput         : {report.goodput_qps:.2f} qps "
          f"({report.served} served)")
    cal = telemetry.calibration
    if cal is not None:
        print(f"probe           : {cal.dram_ns_per_byte * 1e3:.3f} ps/B, "
              f"bus util {cal.bus_utilization:.3f}, "
              f"row-hit {cal.row_hit_rate:.3f}")
        print(f"advisor         : agreement {cal.advisor_agreement:.3f} over "
              f"{len(cal.probed_tensors)} probed tensor(s)")
    _write_telemetry(telemetry, args.trace_out, args.metrics_out)
    if args.advisor_sweep:
        from repro.telemetry.advisor import agreement_sweep

        sweep = agreement_sweep(metrics=telemetry.metrics)
        print(f"advisor sweep   : {sweep.agreements}/{sweep.checks} agree "
              f"(rate {sweep.agreement_rate:.3f}), "
              f"{len(sweep.skipped)} shape(s) skipped")
        for finding in sweep.findings:
            print(f"advisor {finding.rule_id} [{finding.level}] "
                  f"{finding.message}")
        if args.metrics_out:
            # refresh the snapshot so sweep counters are included
            telemetry.metrics.write_json(args.metrics_out)


def _cmd_fleet(args: argparse.Namespace) -> None:
    # Lazy import: the fleet layer pulls in serving + kvcache + adaptive.
    import json
    import random as _random

    from repro.fleet import (
        BURSTY_OVERLOAD,
        DIURNAL,
        FleetChaosSpec,
        FleetConfig,
        FleetRuntime,
        SteadyShape,
        run_fleet_chaos,
        shaped_workload,
    )
    from repro.serving.workload import TenantSpec

    recovery_ms = args.recovery_ms
    if recovery_ms is None:
        recovery_ms = 10.0 if args.campaign else 50.0
    if args.campaign:
        spec = FleetChaosSpec(
            n_devices=args.devices,
            kills=args.kills if args.kills else 300,
            seed=args.seed,
            kill_gap_ms=args.kill_gap_ms,
            recovery_ms=recovery_ms,
            qps=args.qps if args.qps is not None else 200.0,
            deadline_ms=args.deadline_ms,
            mean_turns=args.mean_turns,
            queue_capacity=args.capacity,
            shed_policy=args.shed,
        )
        report = run_fleet_chaos(spec)
        d = report.to_dict()
        print(f"fleet chaos campaign: seed={d['seed']} "
              f"devices={d['n_devices']} kills={d['kills_applied']}"
              f"/{d['kills_requested']}")
        print(f"crashes by site : " + ", ".join(
            f"{site}={n}" for site, n in sorted(d["crashes_by_site"].items())
        ))
        print(f"offered         : {d['offered']} ({d['served']} served, "
              f"{d['shed']} shed, {d['unserved']} unserved)")
        print(f"failover reqs   : {d['failover_requests']}")
        print(f"audit findings  : {len(d['audit_findings'])}")
        print(f"ok              : {d['ok']}")
        out = (
            args.out if args.out
            else _results_path(f"fleet_chaos_seed{args.seed}.json")
        )
        with open(out, "w") as handle:
            handle.write(json.dumps(d, indent=2) + "\n")
        print(f"\nreport written to {out}")
        if not report.ok:
            raise SystemExit(
                f"fleet chaos campaign failed: {report.failures[0]}"
            )
        return

    shapes = {
        "steady": SteadyShape(),
        "diurnal": DIURNAL,
        "bursty": BURSTY_OVERLOAD,
    }
    shape = shapes[args.shape]
    spec = _DATASETS.get(args.dataset)
    if spec is None:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; known: {sorted(_DATASETS)}"
        )
    config = FleetConfig(
        n_devices=args.devices,
        standby_devices=args.standby,
        seed=args.seed,
        queue_capacity=args.capacity,
        shed_policy=args.shed,
        pim_fault_rate=args.pim_fault_rate,
        mapping_fault_rate=args.mapping_fault_rate,
        kv_blocks=args.kv_blocks,
        block_tokens=args.block_tokens,
        recovery_ms=recovery_ms,
        autoscale=args.autoscale,
    )
    tenant = TenantSpec(
        name=spec.name, dataset=spec, policy=args.policy,
        qps=args.qps if args.qps is not None else 100.0,
        deadline_ms=args.deadline_ms, mean_turns=args.mean_turns,
    )
    requests = shaped_workload(
        [tenant], args.duration_ms, shape=shape, seed=args.seed
    )
    kills = []
    if args.kills:
        # Round-robin jittered schedule on the chaos RNG stream.  Unlike
        # the campaign there is no kill-count oracle here, so a kill that
        # lands on a still-quarantined device — or on a STANDBY/DRAINING
        # member parked out of rotation (--standby/--autoscale) — is
        # simply skipped by the runtime instead of retargeted.
        kill_rng = _random.Random(args.seed * 9973 + 65537)
        gap_ns = args.kill_gap_ms * 1e6
        t = gap_ns
        for index in range(args.kills):
            t += gap_ns * (kill_rng.random() - 0.5)
            kills.append((t, index % args.devices))
            t += gap_ns
        kills.sort()
    telemetry = None
    if args.metrics_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    runtime = FleetRuntime(config, telemetry=telemetry)
    report = runtime.run(requests, kills=kills)
    print(report.render())
    out = args.out if args.out else _results_path(f"fleet_seed{args.seed}.json")
    with open(out, "w") as handle:
        handle.write(report.to_json() + "\n")
    print(f"\nreport written to {out}")
    if telemetry is not None:
        telemetry.metrics.write_json(args.metrics_out)
        print(f"metrics written to {args.metrics_out} "
              f"({len(telemetry.metrics)} families)")
    if not report.none_lost:
        raise SystemExit("a request was silently lost or double-counted")
    if report.audit_findings:
        raise SystemExit(
            f"{len(report.audit_findings)} post-recovery audit finding(s): "
            f"{report.audit_findings[0]}"
        )


def _cmd_dse(args: argparse.Namespace) -> None:
    # Lazy import: the DSE layer pulls in serving + kvcache.
    import json

    from repro.dse import (
        SweepSpec,
        default_sweep,
        load_reuse,
        pareto_report,
        parse_axis_overrides,
        run_sweep,
    )
    from repro.dse.evaluate import evaluate_point

    knobs = {
        "duration_ms": args.duration_ms,
        "qps": args.qps,
        "deadline_ms": args.deadline_ms,
        "queue_capacity": args.capacity,
        "block_tokens": args.block_tokens,
    }
    try:
        if args.axes:
            spec = SweepSpec(
                seed=args.seed,
                axes=tuple(parse_axis_overrides(args.axes)),
                **knobs,
            )
        else:
            spec = default_sweep(seed=args.seed, **knobs)
    except ValueError as exc:
        raise SystemExit(str(exc))

    # Self-contained repro prefix: every sweep-level flag spelled out so
    # the printed per-point command rebuilds the identical spec
    # regardless of this CLI's defaults changing later.  Worker count,
    # output paths, and resume mode deliberately excluded — they never
    # affect results.
    prefix = [
        "repro-facil", "dse",
        "--seed", str(args.seed),
        "--duration-ms", str(args.duration_ms),
        "--qps", str(args.qps),
        "--deadline-ms", str(args.deadline_ms),
        "--capacity", str(args.capacity),
        "--block-tokens", str(args.block_tokens),
    ]
    for axis in args.axes or []:
        prefix += ["--axes", axis]
    prefix_str = " ".join(prefix)

    if args.only:
        points = spec.points()
        matches = [p for p in points if p.config_hash == args.only]
        if not matches:
            raise SystemExit(
                f"no point with config_hash {args.only!r} in this sweep "
                f"({len(points)} points); re-run with the same --axes and "
                f"sweep knobs as the original sweep"
            )
        point = matches[0]
        seed = args.point_seed if args.point_seed is not None else point.seed
        metrics = evaluate_point(point.config, seed)
        print(f"point           : #{point.index} of {len(points)}")
        print("coords          : "
              + ", ".join(f"{k}={v}" for k, v in point.coords))
        print(f"config_hash     : {point.config_hash}")
        print(f"seed            : {seed}")
        print("metrics         : " + json.dumps(metrics, sort_keys=True))
        return

    out = args.out if args.out else _results_path(f"dse_seed{args.seed}.json")
    reuse = None
    if args.resume:
        reuse = load_reuse(str(out))
    result = run_sweep(spec, workers=args.workers, reuse=reuse)
    report = pareto_report(result, repro_prefix=prefix_str)
    print(f"sweep           : {len(result.points)} points over "
          f"{len(spec.axes)} axes (spec hash {result.spec_hash})")
    if args.resume:
        print(f"evaluated       : {result.evaluated} fresh, "
              f"{result.reused} reused from {out}")
    else:
        print(f"evaluated       : {result.evaluated} fresh")
    print(f"workers         : {args.workers}")
    print()
    print(report.render(top=args.top))
    with open(out, "w") as handle:
        handle.write(report.to_json() + "\n")
    print(f"\nreport written to {out}")


def _cmd_analyze(args: argparse.Namespace) -> None:
    # Lazy import: the analysis layer is tooling the runtime commands
    # never need.
    from pathlib import Path

    from repro.analysis import KNOWN_PASSES, run_all

    passes = tuple(args.passes) if args.passes else KNOWN_PASSES
    try:
        report = run_all(
            repo_root=Path.cwd(),
            trace_paths=args.trace or (),
            span_paths=args.spans or (),
            passes=passes,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.waive:
        report.waive(args.waive)
    if args.format in ("json", "sarif"):
        print(report.render_json())
    else:
        print(report.render_text())
    if not report.ok:
        raise SystemExit(1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-facil",
        description="FACIL (HPCA 2025) reproduction: SoC-PIM cooperative "
        "on-device LLM inference with flexible DRAM address mapping.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list the Table II platform catalog")

    mapping = sub.add_parser("mapping", help="show the selector's decision")
    mapping.add_argument("--rows", type=_positive_int, required=True)
    mapping.add_argument("--cols", type=_positive_int, required=True)
    mapping.add_argument("--dtype-bytes", type=_positive_int, default=2)

    query = sub.add_parser("query", help="price one query under the policies")
    query.add_argument("--prefill", type=_positive_int, default=24)
    query.add_argument("--decode", type=_positive_int, default=64)
    query.add_argument("--policy", choices=POLICIES, default=None)

    sweep = sub.add_parser("sweep", help="Fig. 13 TTFT speedup series")
    sweep.add_argument(
        "--prefill-lengths", type=_positive_int, nargs="+", default=[8, 16, 32, 64, 128]
    )
    sweep.add_argument("--decode", type=_positive_int, default=64)

    dataset = sub.add_parser("dataset", help="Figs. 15/16 dataset trace")
    dataset.add_argument(
        "--dataset", default=ALPACA_LIKE.name, help=f"one of {sorted(_DATASETS)}"
    )
    dataset.add_argument("--queries", type=_positive_int, default=100)
    dataset.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign with reliability report"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--queries", type=_positive_int, default=20)
    chaos.add_argument("--policy", choices=POLICIES, default="facil")
    chaos.add_argument("--prefill", type=_positive_int, default=64)
    chaos.add_argument("--decode", type=_positive_int, default=16)
    chaos.add_argument("--flip-rate", type=_nonneg_float, default=1.0,
                       help="expected transient single-bit flips per query")
    chaos.add_argument("--double-flip-rate", type=_nonneg_float, default=0.0,
                       help="P(uncorrectable double flip) per query")
    chaos.add_argument("--pte-corrupt-rate", type=_nonneg_float, default=0.0,
                       help="P(MapID bit flip in a live PTE) per query")
    chaos.add_argument("--mapping-corrupt-rate", type=_nonneg_float, default=0.0,
                       help="P(scrambled mapping-table entry) per query")
    chaos.add_argument("--stale-tlb-rate", type=_nonneg_float, default=0.0,
                       help="P(swallowed TLB shootdown) per query")
    chaos.add_argument("--alloc-fail-rate", type=_nonneg_float, default=0.0,
                       help="P(injected allocation failure) per query")
    chaos.add_argument("--pu-fail-at", type=_nonneg_int, default=None,
                       help="query index at which one PIM unit fails for good")
    chaos.add_argument("--crash-injections", type=_nonneg_int, default=0,
                       help="also run N crash injections through the MapID "
                       "journal and merge the audit into the report")
    chaos.add_argument("--kv-crash-injections", type=_nonneg_int, default=0,
                       help="with --crash-injections: also sweep N crash "
                       "injections through the KV block pool's journal")
    chaos.add_argument("--migration-crash-injections", type=_nonneg_int, default=0,
                       help="also sweep N crash injections through two-phase "
                       "MIGRATE transactions on the adaptive arena and audit "
                       "the never-torn invariant")
    chaos.add_argument("--out", default=None, metavar="PATH",
                       help="JSON report path (default: benchmarks/results/)")
    chaos.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="also write the campaign's telemetry metrics "
                       "snapshot (JSON) to this path")

    serve = sub.add_parser(
        "serve", help="serving runtime: multi-tenant stream with SLO report"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--dataset", default=ALPACA_LIKE.name,
                       help=f"one of {sorted(_DATASETS)}")
    serve.add_argument("--policy", choices=POLICIES, default="facil")
    serve.add_argument("--duration-ms", type=_positive_float, default=60_000.0)
    serve.add_argument("--qps", type=_positive_float, default=None,
                       help="arrival rate; default: --load x sustainable rate")
    serve.add_argument("--load", type=_positive_float, default=0.5,
                       help="arrival rate as a fraction of sustainable "
                       "(ignored with --qps)")
    serve.add_argument("--deadline-ms", type=_positive_float, default=10_000.0,
                       help="per-request TTFT budget")
    serve.add_argument("--capacity", type=_positive_int, default=8,
                       help="admission queue bound")
    serve.add_argument("--shed", choices=("reject", "degrade", "drop-oldest"),
                       default="reject", help="load-shedding policy")
    serve.add_argument("--max-retries", type=_nonneg_int, default=3)
    serve.add_argument("--jitter", type=float, default=0.1,
                       help="backoff jitter amplitude in [0, 1)")
    serve.add_argument("--pim-fault-rate", type=_nonneg_float, default=0.0,
                       help="P(transient fault) per PIM phase attempt")
    serve.add_argument("--mapping-fault-rate", type=_nonneg_float, default=0.0,
                       help="P(transient fault) per flexible-mapping prefill")
    serve.add_argument("--kv-blocks", type=_nonneg_int, default=0,
                       help="KV block pool size; > 0 switches to the paged-KV "
                       "continuous-batching scheduler")
    serve.add_argument("--block-tokens", type=_positive_int, default=16,
                       help="tokens per KV block")
    serve.add_argument("--adaptive", choices=("off", "static", "active"),
                       default="off",
                       help="online adaptive remapping: 'static' watches the "
                       "advisor without migrating, 'active' migrates the hot "
                       "arena behind a canary (legacy scheduler only)")
    serve.add_argument("--adaptive-pin", type=int, default=None,
                       metavar="MAPID",
                       help="force the advisor recommendation to this MapID "
                       "(bad-advisor drill: the canary must roll it back)")
    serve.add_argument("--prefix-sharing",
                       action=argparse.BooleanOptionalAction, default=True,
                       help="share full prefix blocks across turns of a "
                       "conversation (--no-prefix-sharing to disable)")
    serve.add_argument("--mean-turns", type=_positive_float, default=1.0,
                       help="mean turns per conversation (> 1 emits "
                       "multi-turn traffic)")
    serve.add_argument("--think-time-ms", type=_positive_float, default=2000.0,
                       help="mean think time between conversation turns")
    serve.add_argument("--workload",
                       choices=("chat", "speculative", "moe", "coresident"),
                       default="chat",
                       help="serving workload shape; non-chat shapes run "
                       "the repro.workloads loops (legacy scheduler only)")
    serve.add_argument("--draft-model", default="phi-1.5",
                       help="speculative: draft model name")
    serve.add_argument("--gamma", type=_positive_int, default=4,
                       help="speculative: draft tokens per round")
    serve.add_argument("--acceptance-rate", type=_unit_interval, default=0.8,
                       help="speculative: per-token acceptance probability")
    serve.add_argument("--experts", type=_positive_int, default=8,
                       help="moe: total expert count")
    serve.add_argument("--experts-per-token", type=_positive_int, default=2,
                       help="moe: experts routed per decode token")
    serve.add_argument("--resident-experts", type=_positive_int, default=4,
                       help="moe: DRAM-resident expert budget (LRU)")
    serve.add_argument("--secondary-model", default="phi-1.5",
                       help="coresident: the second co-resident model")
    serve.add_argument("--secondary-share", type=_open_unit_interval,
                       default=0.5,
                       help="coresident: fraction of traffic to the "
                       "secondary model")
    serve.add_argument("--out", default=None, metavar="PATH",
                       help="JSON report path (default: benchmarks/results/)")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome-trace JSON of the run's spans")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a metrics snapshot (JSON) of the run")
    serve.add_argument("--trace-sample", type=_positive_int, default=8,
                       help="head-sampling period: trace every Nth query")
    serve.add_argument("--replay-check", action="store_true",
                       help="replay-diff oracle: run the workload twice at "
                       "the same seed with state-hash barriers and exit "
                       "nonzero on the first diverging barrier")
    serve.add_argument("--replay-barrier", type=_positive_int, default=16,
                       help="barrier cadence in completed requests "
                       "(with --replay-check)")

    trace = sub.add_parser(
        "trace",
        help="short traced serving run: Chrome trace + metrics snapshot",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--dataset", default=ALPACA_LIKE.name,
                       help=f"one of {sorted(_DATASETS)}")
    trace.add_argument("--policy", choices=POLICIES, default="facil")
    trace.add_argument("--duration-ms", type=_positive_float, default=10_000.0)
    trace.add_argument("--load", type=_positive_float, default=0.7,
                       help="arrival rate as a fraction of sustainable")
    trace.add_argument("--deadline-ms", type=_positive_float, default=10_000.0)
    trace.add_argument("--capacity", type=_positive_int, default=16)
    trace.add_argument("--kv-blocks", type=_nonneg_int, default=256,
                       help="KV block pool size (0: legacy serving loop)")
    trace.add_argument("--block-tokens", type=_positive_int, default=16)
    trace.add_argument("--sample-every", type=_positive_int, default=1,
                       help="head-sampling period: trace every Nth query")
    trace.add_argument("--trace-out", default="trace.json", metavar="PATH")
    trace.add_argument("--metrics-out", default="metrics.json",
                       metavar="PATH")
    trace.add_argument("--advisor-sweep", action="store_true",
                       help="also run the advisor/selector agreement sweep "
                       "over every platform and report disagreements")

    fleet = sub.add_parser(
        "fleet",
        help="fleet run over heterogeneous devices, with device losses",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--devices", type=_positive_int, default=4,
                       help="fleet size (heterogeneous Table II catalog)")
    fleet.add_argument("--standby", type=_nonneg_int, default=0,
                       help="tail of the catalog parked for autoscale-up")
    fleet.add_argument("--campaign", action="store_true",
                       help="run the kill-K chaos campaign (audit oracles) "
                       "instead of a workload-shaped fleet run")
    fleet.add_argument("--kills", type=_nonneg_int, default=0,
                       help="seeded device losses to schedule "
                       "(--campaign default: 300)")
    fleet.add_argument("--kill-gap-ms", type=_positive_float, default=20.0,
                       help="mean gap between consecutive kills")
    fleet.add_argument("--recovery-ms", type=_positive_float, default=None,
                       help="quarantine dwell before the timed revive "
                       "(default 50; campaign 10)")
    fleet.add_argument("--dataset", default=ALPACA_LIKE.name,
                       help=f"one of {sorted(_DATASETS)}")
    fleet.add_argument("--policy", choices=POLICIES, default="facil")
    fleet.add_argument("--shape", choices=("steady", "diurnal", "bursty"),
                       default="diurnal",
                       help="arrival-rate shape over the horizon")
    fleet.add_argument("--duration-ms", type=_positive_float, default=5_000.0)
    fleet.add_argument("--qps", type=_positive_float, default=None,
                       help="peak arrival rate (default 100; campaign 200)")
    fleet.add_argument("--deadline-ms", type=_positive_float, default=400.0,
                       help="per-request TTFT budget")
    fleet.add_argument("--mean-turns", type=_positive_float, default=3.0,
                       help="mean turns per conversation")
    fleet.add_argument("--capacity", type=_positive_int, default=8,
                       help="per-device admission queue bound")
    fleet.add_argument("--shed", choices=("reject", "degrade", "drop-oldest"),
                       default="reject", help="per-device shedding policy")
    fleet.add_argument("--pim-fault-rate", type=_nonneg_float, default=0.0,
                       help="P(transient fault) per PIM phase attempt")
    fleet.add_argument("--mapping-fault-rate", type=_nonneg_float,
                       default=0.0,
                       help="P(transient fault) per flexible-mapping prefill")
    fleet.add_argument("--kv-blocks", type=_positive_int, default=64,
                       help="per-device KV block pool size")
    fleet.add_argument("--block-tokens", type=_positive_int, default=16,
                       help="tokens per KV block")
    fleet.add_argument("--autoscale", action="store_true",
                       help="enable the health-gated autoscaler (needs "
                       "--standby > 0 to have headroom)")
    fleet.add_argument("--out", default=None, metavar="PATH",
                       help="JSON report path (default: benchmarks/results/)")
    fleet.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write per-device telemetry lanes (JSON)")

    dse = sub.add_parser(
        "dse",
        help="design-space exploration: parallel sweep + Pareto frontier",
    )
    dse.add_argument("--seed", type=int, default=0,
                     help="sweep seed; every point derives its own "
                     "substream from it")
    dse.add_argument("--workers", type=_positive_int, default=1,
                     help="worker processes; the report is byte-identical "
                     "for any value")
    dse.add_argument("--axes", action="append", metavar="NAME=V1,V2",
                     help="override one axis of the default grid, e.g. "
                     "--axes mapping=facil,soc-only (repeatable; axes: "
                     "platform, mapping, shed, kv_blocks, workload)")
    dse.add_argument("--duration-ms", type=_positive_float, default=8000.0,
                     help="simulated horizon per point")
    dse.add_argument("--qps", type=_positive_float, default=2.0,
                     help="offered arrival rate per point")
    dse.add_argument("--deadline-ms", type=_positive_float, default=10_000.0,
                     help="per-request TTFT budget")
    dse.add_argument("--capacity", type=_positive_int, default=8,
                     help="admission queue bound")
    dse.add_argument("--block-tokens", type=_positive_int, default=16,
                     help="tokens per KV block (kv_blocks > 0 points)")
    dse.add_argument("--top", type=_positive_int, default=None,
                     help="show only the top-N ranked frontier entries")
    dse.add_argument("--out", default=None, metavar="PATH",
                     help="sweep report JSON path "
                     "(default: benchmarks/results/dse_seed<seed>.json)")
    dse.add_argument("--resume", action="store_true",
                     help="reuse completed points (matched by "
                     "config_hash + seed) from the --out file if present")
    dse.add_argument("--only", default=None, metavar="CONFIG_HASH",
                     help="evaluate a single point of the sweep standalone "
                     "and print its metrics (the repro path)")
    dse.add_argument("--point-seed", type=int, default=None,
                     help="with --only: the point's substream seed as "
                     "printed by the sweep report (default: derived from "
                     "--seed and the point's index)")

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: mapping verifier, trace linter, repo lint",
    )
    analyze.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="text report or SARIF 2.1.0 JSON (json and sarif are "
        "synonyms)",
    )
    analyze.add_argument(
        "--pass", dest="passes", action="append",
        choices=("mapverify", "tracelint", "repolint", "gate", "sanitize"),
        help="run only the given pass(es); default: all",
    )
    analyze.add_argument(
        "--trace", action="append", metavar="PATH",
        help="also lint this request-trace file (repeatable)",
    )
    analyze.add_argument(
        "--spans", action="append", metavar="PATH",
        help="also lint this telemetry span file — Chrome-trace JSON or "
        "JSONL from the tracer (repeatable)",
    )
    analyze.add_argument(
        "--waive", action="append", metavar="RULE",
        help="drop findings of this rule ID (repeatable)",
    )

    for sub_parser in (mapping, query, sweep, dataset, chaos, serve, trace):
        sub_parser.add_argument("--platform", default="jetson-agx-orin")
    return parser


_COMMANDS = {
    "platforms": _cmd_platforms,
    "mapping": _cmd_mapping,
    "query": _cmd_query,
    "sweep": _cmd_sweep,
    "dataset": _cmd_dataset,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "fleet": _cmd_fleet,
    "dse": _cmd_dse,
    "analyze": _cmd_analyze,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
