"""FACIL reproduction: flexible DRAM address mapping for SoC-PIM
cooperative on-device LLM inference (HPCA 2025).

Public API highlights:

* :class:`repro.core.pimalloc.PimSystem` — one-line setup of DRAM +
  controller + OS + allocator.
* :func:`repro.core.selector.select_mapping` — the FACIL mapping selector.
* :mod:`repro.pim` — AiM-style near-bank PIM (functional + timing).
* :mod:`repro.engine` — SoC-only / hybrid / FACIL inference policies.
"""

__version__ = "1.0.0"
