"""The adaptive controller's hot weight arena: real pages, real journal.

The serving runtime prices phases analytically — it holds no tensors —
so adaptive remapping needs a *bridge* between the priced world and the
functional one.  The arena is that bridge: a small functional, journaled
:class:`~repro.core.pimalloc.PimSystem` holding one multi-huge-page
weight tensor with CRC ground truth.  Every migration the controller
decides runs for real against this system through
:meth:`~repro.core.pimalloc.PimAllocator.migrate_pages` (a two-phase
MIGRATE journal transaction), so canary, promotion, rollback, and
crash-in-flight recovery all exercise the same PTE/refcount/byte
machinery the chaos campaign audits.

The performance bridge runs the other way: each serving request has a
*hot shape* (its prefill length padded to a power of two), which has an
ideal FACIL MapID on the arena geometry; the gap between a request's
ideal MapID and the MapIDs its arena pages actually carry prices a
PU-crossing penalty on the request's PIM phases (see
:meth:`AdaptiveArena.penalty`).  The penalty is two-sided — a page
mapped *below* the ideal splits accumulation groups across PUs (the
paper's crossings_per_row, ~``2^(ideal-page) - 1``), one mapped *above*
it wastes interleave the SoC needed (one crossing-equivalent per excess
PU bit) — so the optimum tracks the workload, and drifting traffic
gives the controller real ground to act on.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.mapverify import verify_pim_mapping
from repro.core.bitfield import ilog2
from repro.core.pimalloc import PimSystem, PimTensor
from repro.core.relayout import relayout_cost_ns
from repro.core.selector import MatrixConfig
from repro.dram.config import LPDDR5_6400_TIMINGS, TINY_ORG, DramConfig
from repro.pim.config import aim_config_for

__all__ = ["ADAPTIVE_ARENA_ORG", "AdaptiveArena"]

#: Arena geometry: the chaos campaign's tiny organization with twice the
#: rows — 16 MiB, eight huge pages — so a four-page arena tensor always
#: leaves room for a migration's staging copy.
ADAPTIVE_ARENA_ORG = replace(TINY_ORG, rows_per_bank=8192)

#: arena tensor shape: 4096 x 1024 x 2 B = 8 MiB = four huge pages; the
#: static selector places it at MapID 3 on the arena geometry
_ARENA_ROWS = 4096
_ARENA_COLS = 1024


class AdaptiveArena:
    """One migratable weight arena over a functional journaled system."""

    def __init__(self, seed: int = 0, name: str = "adaptive/arena") -> None:
        self.name = name
        self.org = ADAPTIVE_ARENA_ORG
        self.pim = aim_config_for(self.org)
        self.dram = DramConfig(self.org, LPDDR5_6400_TIMINGS)
        self.system = PimSystem.build(self.org, self.pim, functional=True, journal=True)
        self.tensor: PimTensor = self.system.pimalloc(
            MatrixConfig(rows=_ARENA_ROWS, cols=_ARENA_COLS, dtype_bytes=2)
        )
        rng = np.random.default_rng(seed)
        self.data = rng.integers(
            0, 1 << 16, size=(_ARENA_ROWS, _ARENA_COLS), dtype=np.uint16
        )
        self.tensor.store(self.data)
        self.crc = zlib.crc32(self.data.tobytes())
        # per-page ground truth, so an audit after a bounded migration
        # only reads the pages that could have moved (the cols are chunk
        # aligned, so the padded layout is exactly the array's bytes)
        if self.tensor.lda != _ARENA_COLS:
            raise RuntimeError("arena layout must be unpadded")
        rows_per_page = self.huge_page_bytes // (_ARENA_COLS * 2)
        self.page_crcs = [
            zlib.crc32(
                self.data[p * rows_per_page:(p + 1) * rows_per_page].tobytes()
            )
            for p in range(self.n_pages)
        ]
        #: FACIL MapID (the mapping-spec parameter, not a table slot)
        #: carried by each huge page; the controller is the only mutator
        #: on the serving path, so this mirror of the PTEs stays exact
        self.page_k: List[int] = [self.tensor.selection.map_id] * self.n_pages
        #: largest FACIL MapID a hot shape can demand on this geometry
        #: (cols capped at the page's worth of chunk rows)
        self.max_map_id = ilog2(
            self.huge_page_bytes // self.org.total_banks // self.pim.chunk_row_bytes
        )
        #: full-arena relayout cost (read + write at peak bandwidth) —
        #: the cost side of the controller's cost/benefit model
        self.full_migration_cost_ns = relayout_cost_ns(
            self.tensor.nbytes_padded, self.dram
        ).total_ns

    # -- geometry -------------------------------------------------------

    @property
    def huge_page_bytes(self) -> int:
        return self.system.huge_page_bytes

    @property
    def n_pages(self) -> int:
        return self.system.space.areas[self.tensor.va].n_pages

    @property
    def nbytes(self) -> int:
        return self.tensor.nbytes_padded

    def ideal_map_id(self, prefill_tokens: int) -> int:
        """The FACIL MapID a request's hot shape wants on this geometry:
        prefill length padded to a power of two becomes the GEMV row
        (accumulation-group) size, and the ideal MapID is the smallest
        one keeping that row's partial sums inside one PU — exactly the
        static selector's rule, in closed form."""
        row_bytes = max(prefill_tokens, 1) * self.pim.dtype_bytes
        chunk_row = self.pim.chunk_row_bytes
        k = 0
        while (chunk_row << k) < row_bytes and k < self.max_map_id:
            k += 1
        return k

    def hot_matrix(self, k: int) -> MatrixConfig:
        """A small matrix whose rows span ``2^k`` chunk rows — the shape
        fed to the advisor to represent one request with ideal MapID *k*."""
        cols = (self.pim.chunk_row_bytes << k) // self.pim.dtype_bytes
        return MatrixConfig(rows=4, cols=cols, dtype_bytes=self.pim.dtype_bytes)

    # -- the penalty model ---------------------------------------------

    @staticmethod
    def penalty(k_req: int, k_page: int) -> float:
        """Crossing-equivalents for serving a request with ideal MapID
        *k_req* from a page mapped at *k_page* (zero iff they match)."""
        if k_page < k_req:
            return float((1 << (k_req - k_page)) - 1)
        return float(k_page - k_req)

    def mean_penalty(self, k_req: int, page_ks: Optional[List[int]] = None) -> float:
        ks = self.page_k if page_ks is None else page_ks
        return sum(self.penalty(k_req, k) for k in ks) / len(ks)

    # -- migration ------------------------------------------------------

    def migrate(self, map_id: int, page_start: int = 0,
                page_count: Optional[int] = None) -> Dict:
        """Migrate a page range to FACIL MapID *map_id* (journaled
        two-phase MIGRATE; see ``PimAllocator.migrate_pages``) and keep
        the ``page_k`` mirror exact."""
        result = self.system.allocator.migrate_pages(
            self.tensor, map_id, page_start=page_start, page_count=page_count
        )
        count = result["pages"]
        for index in range(page_start, page_start + count):
            self.page_k[index] = map_id
        self.system.journal.truncate_committed()
        return result

    # -- replay barriers ------------------------------------------------

    def barrier_state(self, full: bool = False) -> Dict:
        """State components for a replay-diff barrier (see
        :mod:`repro.analysis.replay`): the per-page MapID mirror, the
        PTE ground truth, and the journal cursor.  *full* adds the
        whole-arena CRC — an O(arena) read, so only the final barrier
        asks for it."""
        journal = self.system.journal
        state: Dict = {
            "arena_page_k": tuple(self.page_k),
            "arena_ptes": tuple(
                self.system.space.area_page_map_ids(self.tensor.va)
            ),
            "arena_journal": None if journal is None else journal.cursor(),
        }
        if full:
            raw = self.system.allocator.read_virtual(self.tensor.va, self.nbytes)
            state["arena_crc"] = f"{zlib.crc32(raw.tobytes()):08x}"
        return state

    # -- audit ----------------------------------------------------------

    def verify(self, pages: Optional[Sequence[int]] = None) -> List[str]:
        """The AD003 audit: every distinct live mapping passes the static
        verifier, table refcounts reconcile with the PTEs (one reference
        per distinct MapID in use, plus the conventional pin), no stray
        areas, and the arena bytes still CRC-match their ground truth.

        *pages* bounds the CRC read to the given huge pages (e.g. the
        range a migration touched); the default checks every page.  The
        structural checks always cover the whole arena."""
        problems: List[str] = []
        table = self.system.controller.table
        page_ids = self.system.space.area_page_map_ids(self.tensor.va)
        for slot in sorted(set(page_ids)):
            findings = verify_pim_mapping(table[slot], self.org, self.pim)
            if findings:
                problems.append(
                    f"mapping slot {slot}: {len(findings)} verifier finding(s): "
                    f"{findings[0].rule_id} {findings[0].message}"
                )
        expected = {0: 1}
        for slot in sorted(set(page_ids)):
            expected[slot] = expected.get(slot, 0) + 1
        actual = dict(table.refcounts())
        if actual != expected:
            problems.append(f"refcounts {actual} != expected {expected}")
        areas = set(self.system.space.areas)
        if areas != {self.tensor.va}:
            problems.append(f"stray mapped areas: {sorted(areas)}")
        page_bytes = self.huge_page_bytes
        for page in (range(self.n_pages) if pages is None else pages):
            raw = self.system.allocator.read_virtual(
                self.tensor.va + page * page_bytes, page_bytes
            )
            if zlib.crc32(raw.tobytes()) != self.page_crcs[page]:
                problems.append(
                    f"arena page {page} bytes fail CRC against ground truth"
                )
        return problems
