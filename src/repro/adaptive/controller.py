"""The guarded online remapping controller (WATCHING → CANARY → COOLDOWN).

The controller is deliberately boring about *how* it decides and
paranoid about *when* it acts:

* **Recommendation** comes from the
  :class:`~repro.telemetry.advisor.MappingAdvisor`'s shadow counters,
  diffed over a sliding window so stale history cannot pin a stale
  MapID.  The windowed score adds a small interleave regularizer
  (``k * samples``) to the advisor's raw PU-crossing counts: crossings
  alone fall monotonically in the MapID, and without the regularizer
  the advisor would always drift to the largest candidate even when the
  traffic never needs it.
* **Cost/benefit** prices the projected PIM-phase savings of moving the
  whole arena to the recommended MapID (the same penalty model the
  serving loop charges) against the full-arena
  :func:`~repro.core.relayout.relayout_cost_ns`; only a benefit
  clearing ``hysteresis`` times the cost triggers at all.
* **Canary**: a trigger never migrates the whole arena.  It migrates
  ``canary_fraction`` of the pages, snapshots the pre-migration page
  MapIDs, and watches ``canary_window`` requests.
  The health metric is the observed **PIM-phase slowdown** (penalized
  vs base PIM ns actually charged to the serving timeline) compared
  against the *counterfactual* slowdown of the same canary-window
  requests priced under the pre-migration page MapIDs — scale-free and
  composition-matched, so workload drift across the canary boundary
  can neither fake nor mask a breach — falling back to absolute
  service TTFT when a window carries no PIM work.  Staying within
  ``slo_margin`` of the counterfactual promotes (migrate
  the rest); anything worse — or a PIM circuit-breaker trip mid-canary,
  or a canary window with no served requests — rolls the canary pages
  back to the old MapID.  The forced-bad-advisor knob
  (``pinned_map_id``) models a wrong advisor asserting benefit: it
  bypasses the cost/benefit gate, and the canary is what catches it.
* **Flap damping**: every decision (promote or rollback) starts a
  cooldown during which nothing triggers, and a global
  ``max_migrations`` budget bounds the run.  Triggers are additionally
  gated on a healthy PIM breaker and no active brown-out.

Every migration is a journaled two-phase MIGRATE transaction on the
arena's real pages, and every committed one is audited by rule AD003
(static verifier + CRC/refcount reconciliation).  All decisions are
deterministic functions of the workload — the controller draws nothing
from the run's RNG, so a seeded serving run reproduces byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.adaptive.arena import AdaptiveArena
from repro.analysis.findings import LEVEL_ERROR, Finding
from repro.telemetry.advisor import MappingAdvisor, observe_matrix

__all__ = ["AdaptiveConfig", "AdaptiveController", "MigrationEvent"]

WATCHING = "watching"
CANARY = "canary"
COOLDOWN = "cooldown"


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning of one adaptive controller (see the module docstring)."""

    mode: str = "active"  # "static" observes but never migrates
    window_requests: int = 32
    canary_window: int = 16
    cooldown_requests: int = 64
    hysteresis: float = 2.0
    canary_fraction: float = 0.25
    max_migrations: int = 8
    #: PIM-phase slowdown per mean crossing-equivalent (the penalty
    #: model's scale; also used to project savings)
    penalty_coeff: float = 0.05
    #: canary verdict: observed PIM slowdown (or fallback TTFT) must
    #: stay within this fraction above the counterfactual baseline
    slo_margin: float = 0.10
    #: interleave regularizer weight per (MapID bit x sample) in the
    #: windowed advisor score
    interleave_weight: float = 1e-4
    #: forced-bad-advisor knob: recommendation pinned to this MapID and
    #: the cost/benefit gate bypassed — the canary must catch it
    pinned_map_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("static", "active"):
            raise ValueError(f"mode must be 'static' or 'active', got {self.mode!r}")
        if self.window_requests <= 0 or self.canary_window <= 0:
            raise ValueError("window_requests and canary_window must be positive")
        if self.cooldown_requests < 0:
            raise ValueError("cooldown_requests must be >= 0")
        if self.hysteresis <= 0:
            raise ValueError("hysteresis must be positive")
        if not 0.0 < self.canary_fraction < 1.0:
            raise ValueError("canary_fraction must be in (0, 1)")
        if self.max_migrations < 0:
            raise ValueError("max_migrations must be >= 0")
        if self.penalty_coeff < 0 or self.slo_margin < 0:
            raise ValueError("penalty_coeff and slo_margin must be >= 0")


@dataclass(frozen=True)
class MigrationEvent:
    """One controller decision, for the report and the ledger."""

    t_ns: float
    kind: str  # "canary" | "promote" | "rollback"
    from_map_id: int
    to_map_id: int
    pages: int
    cost_ns: float
    baseline_ttft_ns: float = 0.0
    observed_ttft_ns: float = 0.0
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t_ms": self.t_ns / 1e6,
            "kind": self.kind,
            "from_map_id": self.from_map_id,
            "to_map_id": self.to_map_id,
            "pages": self.pages,
            "cost_ms": self.cost_ns / 1e6,
            "baseline_ttft_ms": self.baseline_ttft_ns / 1e6,
            "observed_ttft_ms": self.observed_ttft_ns / 1e6,
            "reason": self.reason,
        }


@dataclass
class _Window:
    """Accumulators for one decision (or canary) window."""

    count: int = 0
    ttft_sum_ns: float = 0.0
    served: int = 0
    #: base (unpenalized) PIM-phase ns by the requests' ideal MapID —
    #: the demand profile the benefit projection prices
    pim_ns_by_k: Dict[int, float] = field(default_factory=dict)
    pim_healthy: bool = True
    #: realized (penalized) vs base PIM-phase ns of served requests —
    #: their ratio is the window's observed PIM slowdown, a scale-free
    #: health measure that survives workload drift across the canary
    #: boundary (absolute TTFT rises with longer prefills even under a
    #: perfect mapping; the slowdown ratio cancels that)
    pim_obs_sum_ns: float = 0.0
    pim_base_sum_ns: float = 0.0
    #: the same requests priced under the *pre-migration* page MapIDs —
    #: the canary verdict's counterfactual baseline.  Comparing the
    #: canary window against itself (rather than against the decision
    #: window) keeps the workload composition identical on both sides,
    #: so a drift from high-penalty to low-penalty traffic right at the
    #: trigger cannot inflate the baseline and mask a bad canary
    pim_cf_sum_ns: float = 0.0

    def add(self, k_req: int, served: bool, ttft_ns: float,
            pim_base_ns: float, pim_ok: bool,
            pim_obs_ns: Optional[float] = None,
            pim_cf_ns: Optional[float] = None) -> None:
        self.count += 1
        if served:
            self.served += 1
            self.ttft_sum_ns += ttft_ns
            if pim_base_ns > 0:
                self.pim_base_sum_ns += pim_base_ns
                self.pim_obs_sum_ns += (
                    pim_obs_ns if pim_obs_ns is not None else pim_base_ns
                )
                self.pim_cf_sum_ns += (
                    pim_cf_ns if pim_cf_ns is not None else pim_base_ns
                )
        if pim_base_ns > 0:
            self.pim_ns_by_k[k_req] = self.pim_ns_by_k.get(k_req, 0.0) + pim_base_ns
        if not pim_ok:
            self.pim_healthy = False

    @property
    def mean_ttft_ns(self) -> float:
        return self.ttft_sum_ns / self.served if self.served else 0.0

    @property
    def mean_slowdown(self) -> float:
        return (
            self.pim_obs_sum_ns / self.pim_base_sum_ns
            if self.pim_base_sum_ns > 0 else 0.0
        )

    @property
    def counterfactual_slowdown(self) -> float:
        return (
            self.pim_cf_sum_ns / self.pim_base_sum_ns
            if self.pim_base_sum_ns > 0 else 0.0
        )


class AdaptiveController:
    """Watch the advisor, migrate the arena — guarded every step."""

    def __init__(
        self,
        config: AdaptiveConfig,
        arena: Optional[AdaptiveArena] = None,
        telemetry: Optional[Any] = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.arena = arena if arena is not None else AdaptiveArena(seed=seed)
        self.telemetry = telemetry
        metrics = telemetry.metrics if telemetry is not None else None
        self.advisor = MappingAdvisor(
            self.arena.org,
            self.arena.pim,
            huge_page_bytes=self.arena.huge_page_bytes,
            metrics=metrics,
            min_samples=1,
        )
        self.state = WATCHING
        self.events: List[MigrationEvent] = []
        self.findings: List[Finding] = []
        self.migrations_started = 0
        self.promotions = 0
        self.rollbacks = 0
        self._window = _Window()
        self._snapshot = self._advisor_snapshot()
        self._cooldown_left = 0
        self._canary_left = 0
        self._canary_pages = 0
        self._canary_from_k = 0
        self._canary_to_k = 0
        self._canary_before_page_k: List[int] = []
        self._baseline_ttft_ns = 0.0
        self._last_recommendation: Optional[int] = None
        #: MapID whose canary was rolled back: never re-canaried until a
        #: *different* recommendation clears it (flap damping beyond the
        #: cooldown — a wrong advisor pinned to one answer gets exactly
        #: one canary, not one per window)
        self._rejected_map_id: Optional[int] = None

    # -- serving-loop interface ----------------------------------------

    def ideal_map_id(self, prefill_tokens: int) -> int:
        return self.arena.ideal_map_id(prefill_tokens)

    def pim_multiplier(self, k_req: int) -> float:
        """PIM-phase slowdown for a request with ideal MapID *k_req*
        under the arena's current page MapIDs (1.0 = no penalty)."""
        return 1.0 + self.config.penalty_coeff * self.arena.mean_penalty(k_req)

    def tick(
        self,
        req_id: int,
        now_ns: float,
        k_req: int,
        served: bool,
        ttft_ns: float,
        pim_base_ns: float,
        pim_obs_ns: Optional[float] = None,
        pim_ok: bool = True,
        brownout: bool = False,
    ) -> float:
        """One serving round observed; returns the migration time (ns)
        to charge to the PIM timeline (0.0 almost always).

        *pim_base_ns* is the round's unpenalized PIM-phase time,
        *pim_obs_ns* the time actually charged (with the mapping-penalty
        multiplier); their window ratio is the canary health metric."""
        observe_matrix(
            self.advisor, self.arena.name, self.arena.hot_matrix(k_req), max_rows=4
        )
        pim_cf_ns: Optional[float] = None
        if self.state == CANARY and pim_base_ns > 0 and self._canary_before_page_k:
            # price this request under the pre-migration page MapIDs:
            # the verdict's counterfactual baseline (same requests on
            # both sides, so composition drift cannot mask a breach)
            mean_pen = sum(
                self.arena.penalty(k_req, k) for k in self._canary_before_page_k
            ) / len(self._canary_before_page_k)
            pim_cf_ns = pim_base_ns * (
                1.0 + self.config.penalty_coeff * mean_pen
            )
        self._window.add(k_req, served, ttft_ns, pim_base_ns, pim_ok,
                         pim_obs_ns=pim_obs_ns, pim_cf_ns=pim_cf_ns)

        if self.state == COOLDOWN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self._reset_window()
                self.state = WATCHING
            return 0.0
        if self.state == CANARY:
            self._canary_left -= 1
            if self._canary_left <= 0:
                return self._canary_verdict(req_id, now_ns)
            return 0.0
        # WATCHING
        if self.config.mode != "active":
            if self._window.count >= self.config.window_requests:
                self._last_recommendation = self._windowed_recommendation()
                self._reset_window()
            return 0.0
        if self._window.count < self.config.window_requests:
            return 0.0
        return self._consider_trigger(req_id, now_ns, pim_ok, brownout)

    # -- windowed recommendation and benefit ---------------------------

    def _advisor_snapshot(self) -> Dict[str, Any]:
        rec = self.advisor.recommend(self.arena.name)
        return {
            "samples": rec.samples,
            "crossings": {c.map_id: c.pu_crossings for c in rec.counters},
        }

    def _windowed_recommendation(self) -> Optional[int]:
        """Smallest MapID minimizing this window's advisor score:
        windowed PU crossings plus the interleave regularizer."""
        now = self._advisor_snapshot()
        samples = now["samples"] - self._snapshot["samples"]
        if samples <= 0:
            return None
        old = self._snapshot["crossings"]
        best_k: Optional[int] = None
        best_score = float("inf")
        for k in sorted(now["crossings"]):
            if k > self.arena.max_map_id:
                continue
            crossings = now["crossings"][k] - old.get(k, 0)
            score = crossings + self.config.interleave_weight * k * samples
            if score < best_score - 1e-12:
                best_score = score
                best_k = k
        return best_k

    def _projected_saving_ns(self, to_k: int) -> float:
        """PIM-phase ns the *observed window's* demand would have saved
        with every arena page at *to_k* — the benefit side of the model
        (one window's worth; steady drift repeats it every window)."""
        saving = 0.0
        for k_req, pim_ns in self._window.pim_ns_by_k.items():
            cur = self.arena.mean_penalty(k_req)
            new = self.arena.penalty(k_req, to_k)
            saving += pim_ns * self.config.penalty_coeff * (cur - new)
        return saving

    def _reset_window(self) -> None:
        self._window = _Window()
        self._snapshot = self._advisor_snapshot()

    # -- trigger / canary / verdict ------------------------------------

    def _consider_trigger(
        self, req_id: int, now_ns: float, pim_ok: bool, brownout: bool
    ) -> float:
        cfg = self.config
        rec = self._windowed_recommendation()
        self._last_recommendation = rec
        if cfg.pinned_map_id is not None:
            rec = cfg.pinned_map_id
        if rec is not None and rec != self._rejected_map_id:
            self._rejected_map_id = None  # fresh answer clears the block
        if (
            rec is None
            or rec > self.arena.max_map_id
            or rec == self._rejected_map_id
            or all(k == rec for k in self.arena.page_k)
            or self.migrations_started >= cfg.max_migrations
            or not pim_ok
            or brownout
            or not self._window.pim_healthy
        ):
            self._reset_window()
            return 0.0
        if cfg.pinned_map_id is None:
            saving = self._projected_saving_ns(rec)
            cost = self.arena.full_migration_cost_ns
            if saving <= cfg.hysteresis * cost:
                self._reset_window()
                return 0.0
            reason = f"saving {saving:.0f} ns > {cfg.hysteresis} x cost {cost:.0f} ns"
        else:
            reason = f"advisor pinned to MapID {rec}"

        pages = max(1, int(round(cfg.canary_fraction * self.arena.n_pages)))
        pages = min(pages, self.arena.n_pages - 1)  # never canary everything
        from_k = self.arena.page_k[0]
        cost_ns = self.arena.full_migration_cost_ns * pages / self.arena.n_pages
        self._canary_before_page_k = list(self.arena.page_k)
        self.arena.migrate(rec, page_start=0, page_count=pages)
        self._audit(f"canary to MapID {rec}", range(pages))
        self.migrations_started += 1
        self._baseline_ttft_ns = self._window.mean_ttft_ns
        self._canary_pages = pages
        self._canary_from_k = from_k
        self._canary_to_k = rec
        self._canary_left = cfg.canary_window
        self.state = CANARY
        self._record_event(
            req_id, now_ns, "canary", from_k, rec, pages, cost_ns, reason=reason
        )
        self._window = _Window()  # canary window accumulates fresh
        return cost_ns

    def _canary_verdict(self, req_id: int, now_ns: float) -> float:
        cfg = self.config
        observed = self._window.mean_ttft_ns
        baseline = self._baseline_ttft_ns
        observed_slow = self._window.mean_slowdown
        baseline_slow = self._window.counterfactual_slowdown
        healthy = self._window.pim_healthy and self._window.served > 0
        # prefer the counterfactual slowdown ratio: the canary window's
        # own requests priced under the pre-migration page MapIDs.  It
        # is scale-free AND composition-matched, so workload drift at
        # the trigger boundary can neither fake nor mask a breach.
        # Fall back to absolute TTFT when the window carried no PIM work
        # to normalize against.
        if baseline_slow > 0.0 and observed_slow > 0.0:
            within_slo = observed_slow <= baseline_slow * (1.0 + cfg.slo_margin)
            ok_reason = (
                f"canary PIM slowdown {observed_slow:.3f}x within baseline "
                f"{baseline_slow:.3f}x + {cfg.slo_margin:.0%}"
            )
            breach_reason = (
                f"canary PIM slowdown {observed_slow:.3f}x breached baseline "
                f"{baseline_slow:.3f}x + {cfg.slo_margin:.0%}"
            )
        else:
            within_slo = (
                baseline <= 0.0 or observed <= baseline * (1.0 + cfg.slo_margin)
            )
            ok_reason = "canary TTFT within SLO margin"
            breach_reason = (
                f"canary TTFT {observed / 1e6:.2f} ms breached baseline "
                f"{baseline / 1e6:.2f} ms + {cfg.slo_margin:.0%}"
            )
        pages = self.arena.n_pages
        if healthy and within_slo:
            remaining = pages - self._canary_pages
            cost_ns = self.arena.full_migration_cost_ns * remaining / pages
            if remaining:
                self.arena.migrate(
                    self._canary_to_k,
                    page_start=self._canary_pages,
                    page_count=remaining,
                )
            self._audit(
                f"promotion to MapID {self._canary_to_k}",
                range(self._canary_pages, self.arena.n_pages),
            )
            self.promotions += 1
            self._record_event(
                req_id, now_ns, "promote", self._canary_from_k,
                self._canary_to_k, remaining, cost_ns,
                baseline_ttft_ns=baseline, observed_ttft_ns=observed,
                reason=ok_reason,
            )
        else:
            cost_ns = self.arena.full_migration_cost_ns * self._canary_pages / pages
            self.arena.migrate(
                self._canary_from_k, page_start=0, page_count=self._canary_pages
            )
            self._audit(
                f"rollback to MapID {self._canary_from_k}",
                range(self._canary_pages),
            )
            self.rollbacks += 1
            self._rejected_map_id = self._canary_to_k
            reason = (
                "no served requests in canary window" if self._window.served == 0
                else "PIM breaker tripped during canary" if not self._window.pim_healthy
                else breach_reason
            )
            self._record_event(
                req_id, now_ns, "rollback", self._canary_to_k,
                self._canary_from_k, self._canary_pages, cost_ns,
                baseline_ttft_ns=baseline, observed_ttft_ns=observed,
                reason=reason,
            )
        self.state = COOLDOWN
        self._cooldown_left = cfg.cooldown_requests
        self._reset_window()
        return cost_ns

    def abort_canary(self, req_id: int, now_ns: float, reason: str = "") -> float:
        """Roll back an in-flight canary unconditionally (no verdict).

        The administrative counterpart of a breached canary: a device
        being drained or quarantined must not park its arena half-way
        between MapIDs, so the migrated prefix returns to the
        pre-canary MapID, the audit (AD003) runs over those pages, and
        the controller cools down exactly as after a rollback.  The
        aborted target MapID is *not* flap-damped — the canary was
        innocent; the same recommendation may retry once the device is
        back.  Returns the rollback migration cost (ns); 0.0 when no
        canary was in flight (the call is idempotent).
        """
        if self.state != CANARY:
            return 0.0
        pages = self.arena.n_pages
        cost_ns = self.arena.full_migration_cost_ns * self._canary_pages / pages
        self.arena.migrate(
            self._canary_from_k, page_start=0, page_count=self._canary_pages
        )
        self._audit(
            f"aborted canary back to MapID {self._canary_from_k}",
            range(self._canary_pages),
        )
        self.rollbacks += 1
        self._record_event(
            req_id, now_ns, "rollback", self._canary_to_k,
            self._canary_from_k, self._canary_pages, cost_ns,
            baseline_ttft_ns=self._baseline_ttft_ns,
            observed_ttft_ns=self._window.mean_ttft_ns,
            reason=reason or "canary aborted",
        )
        self.state = COOLDOWN
        self._cooldown_left = self.config.cooldown_requests
        self._reset_window()
        return cost_ns

    # -- audit, telemetry, report --------------------------------------

    def _audit(self, context: str, pages=None) -> None:
        """Rule AD003: a committed migration must leave a verifiably
        sound live mapping.  *pages* bounds the CRC read to the huge
        pages the migration touched (structural checks stay global)."""
        problems = self.arena.verify(pages=pages)
        if not problems:
            return
        finding = Finding(
            rule_id="AD003",
            level=LEVEL_ERROR,
            message=f"post-migration audit failed after {context}",
            location=self.arena.name,
            detail="; ".join(problems),
        )
        self.findings.append(finding)
        if self.telemetry is not None:
            self.telemetry.findings.append(finding)

    def _record_event(
        self,
        req_id: int,
        now_ns: float,
        kind: str,
        from_k: int,
        to_k: int,
        pages: int,
        cost_ns: float,
        baseline_ttft_ns: float = 0.0,
        observed_ttft_ns: float = 0.0,
        reason: str = "",
    ) -> None:
        event = MigrationEvent(
            t_ns=now_ns, kind=kind, from_map_id=from_k, to_map_id=to_k,
            pages=pages, cost_ns=cost_ns, baseline_ttft_ns=baseline_ttft_ns,
            observed_ttft_ns=observed_ttft_ns, reason=reason,
        )
        self.events.append(event)
        tel = self.telemetry
        if tel is None:
            return
        tel.metrics.counter(
            "adaptive_migrations_total", "adaptive migration steps",
            labelnames=("kind",),
        ).inc(kind=kind)
        tel.metrics.counter(
            "adaptive_migrated_pages_total", "huge pages migrated"
        ).inc(pages)
        tel.metrics.gauge(
            "adaptive_arena_map_id", "dominant arena MapID"
        ).set(float(max(set(self.arena.page_k), key=self.arena.page_k.count)))
        span = tel.tracer.begin(
            req_id, f"adaptive.{kind}", "controller", now_ns,
            from_map_id=from_k, to_map_id=to_k, pages=pages, reason=reason,
        )
        if span is not None:
            span.close(now_ns + cost_ns)

    def report(self) -> Dict[str, Any]:
        return {
            "mode": self.config.mode,
            "state": self.state,
            "migrations_started": self.migrations_started,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "budget": self.config.max_migrations,
            "page_map_ids": list(self.arena.page_k),
            "last_recommendation": self._last_recommendation,
            "audit_findings": len(self.findings),
            "events": [e.to_dict() for e in self.events],
        }
