"""Online adaptive remapping: the MappingAdvisor graduated to actuation.

PR 5 left the DReAM-spirit :class:`~repro.telemetry.advisor.MappingAdvisor`
in shadow mode: it watched access streams and reported disagreements with
the static selector, but nothing acted on them.  This package closes the
loop (ROADMAP item 3) under serving traffic, with every safeguard the
robustness bar demands:

* :class:`~repro.adaptive.arena.AdaptiveArena` — a real, functional,
  journaled :class:`~repro.core.pimalloc.PimSystem` holding the hot
  weight arena whose pages the controller migrates.  Migrations are
  two-phase MIGRATE journal transactions
  (:meth:`~repro.core.pimalloc.PimAllocator.migrate_pages`), so a crash
  at any of the ``migrate:*`` sites recovers to entirely-old or
  entirely-new — never torn.
* :class:`~repro.adaptive.controller.AdaptiveController` — the
  sliding-window cost/benefit state machine (WATCHING → CANARY →
  COOLDOWN).  It diffs the advisor's shadow counters per decision
  window, prices a full-arena migration with
  :func:`~repro.core.relayout.relayout_cost_ns`, and only acts when the
  projected PU-crossing savings clear a hysteresis multiple of that
  cost.  Every migration starts as a **canary** on a bounded page
  subset; observed TTFT against the pre-migration baseline decides
  promotion or automatic rollback.  A cooldown and a global migration
  budget prevent flapping.

Rule ``AD003`` audits actuation: after every committed migration the new
mapping must pass the static verifier (MV001–MV011) and the arena's
CRC/refcount audit.  Unlike AD001/AD002 this rule guards a mapping that
is actually **live** — a failure means serving traffic is translating
through a bad mapping, not that advice was questionable.
"""

from __future__ import annotations

from typing import Dict

from repro.adaptive.arena import ADAPTIVE_ARENA_ORG, AdaptiveArena
from repro.adaptive.controller import (
    AdaptiveConfig,
    AdaptiveController,
    MigrationEvent,
)
from repro.analysis.findings import register_rules

__all__ = [
    "ADAPTIVE_ARENA_ORG",
    "ADAPTIVE_RULES",
    "AdaptiveArena",
    "AdaptiveConfig",
    "AdaptiveController",
    "MigrationEvent",
]

ADAPTIVE_RULES: Dict[str, str] = {
    "AD003": "a committed adaptive migration must leave a live mapping "
             "that passes the static verifier (MV001-MV011) and the "
             "arena CRC/refcount audit",
}
register_rules(ADAPTIVE_RULES)
